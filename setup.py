"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools
predates wheel-less PEP 660 editable installs.
"""

from setuptools import setup

setup()
