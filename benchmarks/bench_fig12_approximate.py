"""Fig 12: the approximate algorithm — time (and penalty in
extra_info) versus sample size, against the exact reference.

The paper's setup: a top-10 query with 8 keywords.  The benchmark
scales the sample-size axis to the shared dataset's candidate-space
size while keeping the paper's geometric spacing.
"""

import pytest

from conftest import run_benchmark

SAMPLE_SIZES = (25, 50, 100, 200)
STRATEGIES = ("bs", "advanced", "kcr")


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("sample_size", SAMPLE_SIZES)
def test_fig12_approximate(benchmark, harness, sample_size, strategy):
    case = harness.case(
        "fig12", k0=10, n_keywords=8, alpha=0.5, lam=0.5, max_extra_keywords=4
    )
    run_benchmark(
        benchmark,
        harness,
        case,
        "approximate",
        group=f"fig12 T={sample_size}",
        sample_size=sample_size,
        strategy=strategy,
    )


@pytest.mark.parametrize("method", ("advanced", "kcr"))
def test_fig12_exact_reference(benchmark, harness, method):
    case = harness.case(
        "fig12", k0=10, n_keywords=8, alpha=0.5, lam=0.5, max_extra_keywords=4
    )
    run_benchmark(benchmark, harness, case, method, group="fig12 exact")


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig12_approximate.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig12.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig12", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig12", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
