"""Fig 6: vary the spatial/textual preference alpha in {0.1 .. 0.9}.

Small alpha weakens the R-tree's spatial pruning (more I/O); the paper
observes medium alpha is cheapest in time.
"""

import pytest

from conftest import run_benchmark

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig06(benchmark, harness, alpha, method):
    case = harness.case("fig6", k0=10, n_keywords=4, alpha=alpha, lam=0.5)
    run_benchmark(benchmark, harness, case, method, group=f"fig6 alpha={alpha}")


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig06_vary_alpha.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig06.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig06", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig06", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
