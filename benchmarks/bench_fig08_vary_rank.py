"""Fig 8: vary the missing object's initial rank in {31, 51, 101, 151, 201}.

The initial query stays a top-10 query; only the why-not target moves
deeper.  BS is highly sensitive (every candidate search must dig to
the missing object's rank); the optimized algorithms barely move.
"""

import pytest

from conftest import run_benchmark

RANKS = (31, 51, 101, 151, 201)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("rank", RANKS)
def test_fig08(benchmark, harness, rank, method):
    case = harness.case(
        "fig8", k0=10, n_keywords=4, alpha=0.5, lam=0.5, rank_target=rank
    )
    run_benchmark(benchmark, harness, case, method, group=f"fig8 rank={rank}")


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig08_vary_rank.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig08.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig08", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig08", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
