"""Ablation benchmarks: design choices the paper fixes.

Buffer fraction, node capacity, and the index-baseline comparison —
each benchmarked through the same single-query harness as the figure
benches.
"""

import pytest

from repro import InvertedFileIndex, TopKSearcher, WhyNotEngine

from conftest import run_benchmark


@pytest.mark.parametrize("fraction", (0.05, 0.25, 1.0))
def test_ablation_buffer(benchmark, harness, fraction):
    case = harness.case("ablation-buffer", k0=10, n_keywords=4)
    base_engine = harness.engine()
    engine = WhyNotEngine(base_engine.dataset, buffer_fraction=fraction)
    _ = engine.kcr_tree
    benchmark.group = f"ablation buffer={fraction}"
    answer = benchmark.pedantic(
        lambda: (engine.reset_buffers(), engine.answer(case.question, method="kcr"))[1],
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["page_reads"] = answer.io.page_reads


@pytest.mark.parametrize("capacity", (25, 100, 200))
def test_ablation_capacity(benchmark, harness, capacity):
    case = harness.case("ablation-capacity", k0=10, n_keywords=4)
    base_engine = harness.engine()
    engine = WhyNotEngine(base_engine.dataset, capacity=capacity)
    _ = engine.kcr_tree
    benchmark.group = f"ablation capacity={capacity}"
    answer = benchmark.pedantic(
        lambda: (engine.reset_buffers(), engine.answer(case.question, method="kcr"))[1],
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["page_reads"] = answer.io.page_reads


@pytest.mark.parametrize("index_kind", ("setr", "kcr", "inverted"))
def test_ablation_rank_determination(benchmark, harness, index_kind):
    """The substrate comparison: one rank determination per index."""
    case = harness.case("ablation-baseline", k0=10, n_keywords=4)
    engine = harness.engine()
    dataset = engine.dataset
    missing = [dataset.get(m) for m in case.question.missing]
    if index_kind == "inverted":
        index = InvertedFileIndex(dataset)
        rank_fn = index.rank_of_missing
        reset = index.reset_buffer
    else:
        tree = engine.setr_tree if index_kind == "setr" else engine.kcr_tree
        rank_fn = TopKSearcher(tree).rank_of_missing
        reset = tree.reset_buffer
    benchmark.group = "ablation rank-determination"

    def unit():
        reset()
        return rank_fn(case.question.query, missing)

    result = benchmark.pedantic(unit, rounds=3, iterations=1)
    assert result.rank == case.initial_rank
