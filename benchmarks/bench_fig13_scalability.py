"""Fig 13: scalability over GN-like datasets of increasing cardinality.

The paper samples subsets of GN; cost should grow near-linearly with
dataset size for all algorithms.
"""

import pytest

from conftest import run_benchmark

SIZES = (1_000, 2_000, 4_000, 8_000)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("size", SIZES)
def test_fig13(benchmark, harness, size, method):
    case = harness.case(
        f"fig13-{size}",
        kind="gn",
        size=size,
        k0=10,
        n_keywords=3,
        alpha=0.5,
        lam=0.5,
        max_extra_keywords=3,
    )
    run_benchmark(
        benchmark,
        harness,
        case,
        method,
        group=f"fig13 n={size}",
        kind="gn",
        size=size,
    )


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig13_scalability.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig13.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig13", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig13", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
