"""Fig 7: vary the penalty preference lambda in {0.1 .. 0.9}.

BS ignores lambda (it prunes nothing); the optimized algorithms start
from incumbent penalty = lambda, so smaller lambda prunes harder and
their cost grows with lambda.
"""

import pytest

from conftest import run_benchmark

LAMBDAS = (0.1, 0.3, 0.5, 0.7, 0.9)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("lam", LAMBDAS)
def test_fig07(benchmark, harness, lam, method):
    case = harness.case("fig7", k0=10, n_keywords=4, alpha=0.5, lam=lam)
    run_benchmark(benchmark, harness, case, method, group=f"fig7 lambda={lam}")


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig07_vary_lambda.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig07.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig07", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig07", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
