"""Benchmarks for the extension algorithms.

Alpha refinement, location refinement, the integrated framework, and
index mutations (insert / delete / update) — none are paper figures,
but regressions here would silently degrade the extended API.
"""

import pytest

from repro import Dataset, SpatialObject, WhyNotEngine, make_euro_like

from conftest import BENCH_SEED, run_benchmark


@pytest.mark.parametrize("method", ("alpha", "location", "integrated"))
def test_extension_methods(benchmark, harness, method):
    case = harness.case("extensions", k0=10, n_keywords=4)
    run_benchmark(
        benchmark, harness, case, method, group="extensions why-not"
    )


class TestMutations:
    @pytest.fixture(scope="class")
    def engine(self):
        full, _ = make_euro_like(2000, seed=BENCH_SEED)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        engine = WhyNotEngine(dataset)
        _ = engine.setr_tree, engine.kcr_tree
        return engine

    def test_engine_insert(self, benchmark, engine):
        benchmark.group = "extensions mutations"
        counter = iter(range(10**6, 10**6 + 10_000))

        def unit():
            oid = next(counter)
            engine.insert(
                SpatialObject(oid=oid, loc=(0.5, 0.5), doc=frozenset({1, 2}))
            )

        benchmark.pedantic(unit, rounds=50, iterations=1)

    def test_engine_update_keywords(self, benchmark, engine):
        benchmark.group = "extensions mutations"
        oids = iter(o.oid for o in list(engine.dataset.objects)[:500])

        def unit():
            engine.update_keywords(next(oids), {3, 4, 5})

        benchmark.pedantic(unit, rounds=50, iterations=1)

    def test_engine_remove(self, benchmark, engine):
        benchmark.group = "extensions mutations"
        oids = iter(
            o.oid for o in list(engine.dataset.objects)[500:1000]
        )

        def unit():
            engine.remove(next(oids))

        benchmark.pedantic(unit, rounds=50, iterations=1)
