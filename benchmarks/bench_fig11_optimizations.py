"""Fig 11: pruning abilities of the individual optimizations.

BS against each single optimization (Opt1 early stop, Opt2 enumeration
order, Opt3 keyword-set filtering) and the full AdvancedBS.
"""

import pytest

from conftest import run_benchmark

CONFIGS = {
    "BS": {"early_stop": False, "ordering": False, "filtering": False},
    "BS+Opt1": {"early_stop": True, "ordering": False, "filtering": False},
    "BS+Opt2": {"early_stop": False, "ordering": True, "filtering": False},
    "BS+Opt3": {"early_stop": False, "ordering": False, "filtering": True},
    "AdvancedBS": {"early_stop": True, "ordering": True, "filtering": True},
}


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_fig11(benchmark, harness, config):
    case = harness.case("fig11", k0=10, n_keywords=4, alpha=0.5, lam=0.5)
    run_benchmark(
        benchmark,
        harness,
        case,
        "advanced",
        group="fig11 optimizations",
        **CONFIGS[config],
    )


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig11_optimizations.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig11.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig11", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig11", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
