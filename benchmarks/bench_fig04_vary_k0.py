"""Fig 4: vary k0 — query time (and page reads in extra_info).

The paper varies k0 in {3, 10, 30, 100} with the missing object at
rank 5*k0+1.  The benchmark dataset (1,500 objects) hosts all four
points; BS is skipped where its candidate space exceeds the cap.
"""

import pytest

from conftest import run_benchmark

K0_VALUES = (3, 10, 30, 100)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k0", K0_VALUES)
def test_fig04(benchmark, harness, k0, method):
    case = harness.case("fig4", k0=k0, n_keywords=4, alpha=0.5, lam=0.5)
    run_benchmark(benchmark, harness, case, method, group=f"fig4 k0={k0}")


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig04_vary_k0.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig04.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig04", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig04", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
