"""Fig 9: vary the number of missing objects in {1, 2, 3, 4}.

Missing objects are drawn from ranks 11-51 of a top-10, 4-keyword
query (the paper's protocol); the candidate space is the union of all
missing documents, so cost grows sharply with |M|.
"""

import pytest

from conftest import run_benchmark

MISSING_COUNTS = (1, 2, 3, 4)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("n_missing", MISSING_COUNTS)
def test_fig09(benchmark, harness, n_missing, method):
    case = harness.case(
        "fig9",
        k0=10,
        n_keywords=4,
        alpha=0.5,
        lam=0.5,
        n_missing=n_missing,
        missing_rank_range=(11, 51),
        max_extra_keywords=3,
    )
    run_benchmark(
        benchmark, harness, case, method, group=f"fig9 missing={n_missing}"
    )


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig09_vary_missing.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig09.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig09", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig09", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
