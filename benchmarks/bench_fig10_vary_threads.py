"""Fig 10: parallel processing with 1-8 (simulated) threads.

Elapsed time is the list-scheduling makespan over measured
per-candidate costs with a shared incumbent penalty — the substitution
for Java threads documented in DESIGN.md.
"""

import pytest

from conftest import run_benchmark

THREADS = (1, 2, 4, 8)


@pytest.mark.parametrize("method", ("parallel-advanced", "parallel-kcr"))
@pytest.mark.parametrize("n_threads", THREADS)
def test_fig10(benchmark, harness, n_threads, method):
    case = harness.case("fig10", k0=10, n_keywords=4, alpha=0.5, lam=0.5)
    run_benchmark(
        benchmark,
        harness,
        case,
        method,
        group=f"fig10 threads={n_threads}",
        n_threads=n_threads,
    )


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig10_vary_threads.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig10.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig10", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig10", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
