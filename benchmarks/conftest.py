"""Shared benchmark fixtures.

The benchmark suite mirrors the experiment harness at a reduced,
fixed scale so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes: one EURO-like dataset of 1,500 objects (GN-like subsets for
the scalability benches), one query per data point, and the same
Table III parameter semantics as the full harness.  For
publication-shaped numbers run the CLI harness instead
(``repro-whynot experiment all --scale default``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro import WhyNotEngine, make_euro_like, make_gn_like
from repro.experiments.workload import WorkloadCase, WorkloadGenerator

BENCH_SEED = 2016
BS_CANDIDATE_CAP = 5_000  # skip BS beyond this candidate-space size


class BenchHarness:
    """Workload cache + single-run executor for benchmark functions."""

    def __init__(self) -> None:
        self._engines: Dict[Tuple[str, int], WhyNotEngine] = {}
        self._cases: Dict[tuple, WorkloadCase] = {}

    def engine(self, kind: str = "euro", size: int = 1500) -> WhyNotEngine:
        key = (kind, size)
        if key not in self._engines:
            maker = make_euro_like if kind == "euro" else make_gn_like
            dataset, _ = maker(size, seed=BENCH_SEED)
            engine = WhyNotEngine(dataset)
            # Force both indexes to build outside the timed region.
            _ = engine.setr_tree
            _ = engine.kcr_tree
            self._engines[key] = engine
        return self._engines[key]

    def case(
        self,
        tag: str,
        *,
        kind: str = "euro",
        size: int = 1500,
        **params,
    ) -> WorkloadCase:
        key = (tag, kind, size, tuple(sorted(params.items())))
        if key not in self._cases:
            engine = self.engine(kind, size)
            generator = WorkloadGenerator(
                engine.dataset, seed=BENCH_SEED + hash(key) % 10_000
            )
            params.setdefault("max_extra_keywords", 4)
            self._cases[key] = generator.generate(1, **params)[0]
        return self._cases[key]

    def run(
        self,
        case: WorkloadCase,
        method: str,
        *,
        kind: str = "euro",
        size: int = 1500,
        **options,
    ):
        """One cold-buffer why-not query — the benchmarked unit."""
        engine = self.engine(kind, size)
        engine.reset_buffers()
        return engine.answer(case.question, method=method, **options)


@pytest.fixture(scope="session")
def harness() -> BenchHarness:
    return BenchHarness()


def run_benchmark(benchmark, harness, case, method, group, **run_kwargs):
    """Standard single-shot benchmark wrapper.

    Records the paper's second metric (page reads) and the penalty in
    ``extra_info`` so the printed table carries the same columns the
    figures plot.
    """
    if method == "basic" and case.candidate_space > BS_CANDIDATE_CAP:
        pytest.skip(
            f"BS skipped: candidate space {case.candidate_space} exceeds "
            f"the benchmark cap {BS_CANDIDATE_CAP} (see DESIGN.md)"
        )
    benchmark.group = group
    answer = benchmark.pedantic(
        lambda: harness.run(case, method, **run_kwargs),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["page_reads"] = answer.io.page_reads
    benchmark.extra_info["penalty"] = round(answer.refined.penalty, 6)
    benchmark.extra_info["initial_rank"] = answer.initial_rank
    return answer
