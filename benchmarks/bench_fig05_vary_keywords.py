"""Fig 5: vary the number of initial query keywords in {2, 4, 6, 8}.

The candidate space grows exponentially with the keyword count, which
is exactly the effect the figure demonstrates: BS's time explodes
(and is skipped past the cap) while AdvancedBS and KcRBased stay flat.
"""

import pytest

from conftest import run_benchmark

KEYWORD_COUNTS = (2, 4, 6, 8)
METHODS = ("basic", "advanced", "kcr")


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("n_keywords", KEYWORD_COUNTS)
def test_fig05(benchmark, harness, n_keywords, method):
    case = harness.case(
        "fig5", k0=10, n_keywords=n_keywords, alpha=0.5, lam=0.5
    )
    run_benchmark(
        benchmark, harness, case, method, group=f"fig5 keywords={n_keywords}"
    )


# ----------------------------------------------------------------------
# standalone JSON emitter (python benchmarks/bench_fig05_vary_keywords.py [out.json])
# ----------------------------------------------------------------------

def emit(path="BENCH_fig05.json", scale=1.0):
    from repro.experiments.benchflows import emit_figure

    return emit_figure("fig05", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("fig05", argv))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
