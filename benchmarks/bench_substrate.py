"""Substrate micro-benchmarks: index construction, top-k search, rank
determination, and the MaxDom/MinDom bound estimators.

Not paper figures — these track the building blocks whose costs the
figures aggregate, so a regression here localises a regression there.

Two entry points share the same units:

* ``pytest benchmarks/bench_substrate.py --benchmark-only`` — the
  interactive pytest-benchmark tables below, and
* ``python benchmarks/bench_substrate.py [output.json]`` — delegates
  to the ``substrate`` figure emitter in
  :mod:`repro.experiments.benchflows`, which writes
  ``BENCH_substrate.json`` with seeded p50/p99 latencies, buffer-pool
  I/O counters, and the static analyzer's own runtime over
  ``src/repro`` — all under the CI bench gate.
"""

import sys

import pytest

from repro import KcRTree, SetRTree, SpatialKeywordQuery, TopKSearcher, make_euro_like
from repro.core.bounds import NodeTextStats, max_dom, min_dom

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def dataset():
    return make_euro_like(2000, seed=BENCH_SEED)[0]


@pytest.fixture(scope="module")
def setr(dataset):
    return SetRTree(dataset, capacity=100)


@pytest.fixture(scope="module")
def kcr(dataset):
    return KcRTree(dataset, capacity=100)


def _query(dataset, k=10):
    obj = dataset.objects[17]
    return SpatialKeywordQuery(
        loc=obj.loc, doc=frozenset(list(obj.doc)[:3]), k=k, alpha=0.5
    )


class TestIndexConstruction:
    def test_build_setr_tree(self, benchmark, dataset):
        benchmark.group = "substrate build"
        benchmark.pedantic(
            lambda: SetRTree(dataset, capacity=100), rounds=3, iterations=1
        )

    def test_build_kcr_tree(self, benchmark, dataset):
        benchmark.group = "substrate build"
        benchmark.pedantic(
            lambda: KcRTree(dataset, capacity=100), rounds=3, iterations=1
        )


class TestSearch:
    def test_top_k_setr(self, benchmark, dataset, setr):
        benchmark.group = "substrate search"
        searcher = TopKSearcher(setr)
        query = _query(dataset)
        benchmark(lambda: searcher.top_k(query))

    def test_top_k_kcr(self, benchmark, dataset, kcr):
        benchmark.group = "substrate search"
        searcher = TopKSearcher(kcr)
        query = _query(dataset)
        benchmark(lambda: searcher.top_k(query))

    def test_rank_determination(self, benchmark, dataset, setr):
        benchmark.group = "substrate search"
        searcher = TopKSearcher(setr)
        query = _query(dataset)
        missing = [dataset.objects[900]]
        benchmark(lambda: searcher.rank_of_missing(query, missing))


class TestInsertion:
    def test_incremental_insert_setr(self, benchmark, dataset):
        """Per-object dynamic insertion cost (capacity 100 tree)."""
        from repro import Dataset, SetRTree, SpatialObject

        objects = list(dataset.objects)
        base = Dataset(objects[:1500], diagonal=dataset.diagonal)
        tree = SetRTree(base, capacity=100)
        remaining = iter(objects[1500:])
        benchmark.group = "substrate insert"

        def unit():
            obj = next(remaining)
            base.add(obj)
            tree.insert(obj)

        benchmark.pedantic(unit, rounds=100, iterations=1)


class TestBounds:
    def test_max_dom_root_scale(self, benchmark, kcr):
        benchmark.group = "substrate bounds"
        cnt, kcm = kcr.fetch_kcm(kcr.root_summary_record)
        stats = NodeTextStats(cnt, kcm)
        keywords = frozenset(list(kcm)[:4])
        benchmark(lambda: max_dom(stats, keywords, 0.3))

    def test_min_dom_root_scale(self, benchmark, kcr):
        benchmark.group = "substrate bounds"
        cnt, kcm = kcr.fetch_kcm(kcr.root_summary_record)
        stats = NodeTextStats(cnt, kcm)
        keywords = frozenset(list(kcm)[:4])
        benchmark(lambda: min_dom(stats, keywords, 0.7))


# ----------------------------------------------------------------------
# standalone JSON emitter
# ----------------------------------------------------------------------

def emit(path="BENCH_substrate.json", scale=1.0):
    """Delegates to the registered ``substrate`` figure emitter, which
    adds the analyzer self-runtime units to the micro-units above."""
    from repro.experiments.benchflows import emit_figure

    return emit_figure("substrate", path, scale=scale)


def main(argv=None):
    from repro.experiments.benchflows import emitter_main

    print(emitter_main("substrate", argv))
    return 0


if __name__ == "__main__":
    sys.exit(main())
