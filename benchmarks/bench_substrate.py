"""Substrate micro-benchmarks: index construction, top-k search, rank
determination, and the MaxDom/MinDom bound estimators.

Not paper figures — these track the building blocks whose costs the
figures aggregate, so a regression here localises a regression there.

Two entry points share the same units:

* ``pytest benchmarks/bench_substrate.py --benchmark-only`` — the
  interactive pytest-benchmark tables below, and
* ``python benchmarks/bench_substrate.py [output.json]`` — a
  dependency-free emitter that writes ``BENCH_substrate.json`` with
  seeded p50/p99 latencies plus buffer-pool I/O counters, for CI
  artifacts and offline diffing.
"""

import dataclasses
import json
import statistics
import sys
import time

import pytest

from repro import KcRTree, SetRTree, SpatialKeywordQuery, TopKSearcher, make_euro_like
from repro.core.bounds import NodeTextStats, max_dom, min_dom

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def dataset():
    return make_euro_like(2000, seed=BENCH_SEED)[0]


@pytest.fixture(scope="module")
def setr(dataset):
    return SetRTree(dataset, capacity=100)


@pytest.fixture(scope="module")
def kcr(dataset):
    return KcRTree(dataset, capacity=100)


def _query(dataset, k=10):
    obj = dataset.objects[17]
    return SpatialKeywordQuery(
        loc=obj.loc, doc=frozenset(list(obj.doc)[:3]), k=k, alpha=0.5
    )


class TestIndexConstruction:
    def test_build_setr_tree(self, benchmark, dataset):
        benchmark.group = "substrate build"
        benchmark.pedantic(
            lambda: SetRTree(dataset, capacity=100), rounds=3, iterations=1
        )

    def test_build_kcr_tree(self, benchmark, dataset):
        benchmark.group = "substrate build"
        benchmark.pedantic(
            lambda: KcRTree(dataset, capacity=100), rounds=3, iterations=1
        )


class TestSearch:
    def test_top_k_setr(self, benchmark, dataset, setr):
        benchmark.group = "substrate search"
        searcher = TopKSearcher(setr)
        query = _query(dataset)
        benchmark(lambda: searcher.top_k(query))

    def test_top_k_kcr(self, benchmark, dataset, kcr):
        benchmark.group = "substrate search"
        searcher = TopKSearcher(kcr)
        query = _query(dataset)
        benchmark(lambda: searcher.top_k(query))

    def test_rank_determination(self, benchmark, dataset, setr):
        benchmark.group = "substrate search"
        searcher = TopKSearcher(setr)
        query = _query(dataset)
        missing = [dataset.objects[900]]
        benchmark(lambda: searcher.rank_of_missing(query, missing))


class TestInsertion:
    def test_incremental_insert_setr(self, benchmark, dataset):
        """Per-object dynamic insertion cost (capacity 100 tree)."""
        from repro import Dataset, SetRTree, SpatialObject

        objects = list(dataset.objects)
        base = Dataset(objects[:1500], diagonal=dataset.diagonal)
        tree = SetRTree(base, capacity=100)
        remaining = iter(objects[1500:])
        benchmark.group = "substrate insert"

        def unit():
            obj = next(remaining)
            base.add(obj)
            tree.insert(obj)

        benchmark.pedantic(unit, rounds=100, iterations=1)


class TestBounds:
    def test_max_dom_root_scale(self, benchmark, kcr):
        benchmark.group = "substrate bounds"
        cnt, kcm = kcr.fetch_kcm(kcr.root_summary_record)
        stats = NodeTextStats(cnt, kcm)
        keywords = frozenset(list(kcm)[:4])
        benchmark(lambda: max_dom(stats, keywords, 0.3))

    def test_min_dom_root_scale(self, benchmark, kcr):
        benchmark.group = "substrate bounds"
        cnt, kcm = kcr.fetch_kcm(kcr.root_summary_record)
        stats = NodeTextStats(cnt, kcm)
        keywords = frozenset(list(kcm)[:4])
        benchmark(lambda: min_dom(stats, keywords, 0.7))


# ----------------------------------------------------------------------
# standalone JSON emitter
# ----------------------------------------------------------------------

DATASET_SIZE = 2000


def _latency_stats(durations):
    """p50/p99 in milliseconds from raw per-round durations."""
    if len(durations) >= 2:
        cuts = statistics.quantiles(durations, n=100)
        p50, p99 = cuts[49], cuts[98]
    else:
        p50 = p99 = durations[0]
    return {
        "rounds": len(durations),
        "p50_ms": round(p50 * 1e3, 4),
        "p99_ms": round(p99 * 1e3, 4),
        "mean_ms": round(statistics.fmean(durations) * 1e3, 4),
    }


def _measure(unit, rounds, setup=None, io_tree=None):
    """Time ``unit`` over ``rounds``; attach the buffer-pool I/O delta
    of the whole batch when ``io_tree`` is given."""
    before = io_tree.stats.snapshot() if io_tree is not None else None
    durations = []
    for _ in range(rounds):
        if setup is not None:
            setup()
        start = time.perf_counter()
        unit()
        durations.append(time.perf_counter() - start)
    record = _latency_stats(durations)
    if before is not None:
        delta = io_tree.stats.snapshot() - before
        record["io"] = dataclasses.asdict(delta)
    return record


def emit(path="BENCH_substrate.json"):
    """Run every substrate unit deterministically and write the JSON."""
    dataset = make_euro_like(DATASET_SIZE, seed=BENCH_SEED)[0]
    units = {}

    units["build_setr_tree"] = _measure(
        lambda: SetRTree(dataset, capacity=100), rounds=3
    )
    units["build_kcr_tree"] = _measure(
        lambda: KcRTree(dataset, capacity=100), rounds=3
    )

    setr = SetRTree(dataset, capacity=100)
    kcr = KcRTree(dataset, capacity=100)
    query = _query(dataset)
    missing = [dataset.objects[900]]

    searcher = TopKSearcher(setr)
    units["top_k_setr"] = _measure(
        lambda: searcher.top_k(query),
        rounds=30,
        setup=setr.reset_buffer,
        io_tree=setr,
    )
    kcr_searcher = TopKSearcher(kcr)
    units["top_k_kcr"] = _measure(
        lambda: kcr_searcher.top_k(query),
        rounds=30,
        setup=kcr.reset_buffer,
        io_tree=kcr,
    )
    units["rank_determination"] = _measure(
        lambda: searcher.rank_of_missing(query, missing),
        rounds=30,
        setup=setr.reset_buffer,
        io_tree=setr,
    )

    cnt, kcm = kcr.fetch_kcm(kcr.root_summary_record)
    stats = NodeTextStats(cnt, kcm)
    keywords = frozenset(list(kcm)[:4])
    units["max_dom_root_scale"] = _measure(
        lambda: max_dom(stats, keywords, 0.3), rounds=200
    )
    units["min_dom_root_scale"] = _measure(
        lambda: min_dom(stats, keywords, 0.7), rounds=200
    )

    payload = {
        "benchmark": "substrate",
        "seed": BENCH_SEED,
        "dataset": {"kind": "euro-like", "size": DATASET_SIZE},
        "units": units,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "BENCH_substrate.json"
    payload = emit(out)
    print(f"wrote {out}: {len(payload['units'])} unit(s), seed {BENCH_SEED}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
