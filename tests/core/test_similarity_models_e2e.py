"""End-to-end why-not answering under the footnote-1 similarity models.

BS and AdvancedBS must agree with a brute-force enumeration under Dice
and Cosine, validating that the Theorem-1-style bounds used by the
SetR-tree stay admissible for the alternative models.
"""

import pytest

from repro import (
    PenaltyModel,
    Scorer,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
    make_micro_example,
)
from repro.core.candidates import CandidateEnumerator
from repro.model.similarity import get_model


def _brute_force(dataset, question, model):
    scorer = Scorer(dataset, model=model)
    query = question.query
    missing = [dataset.get(m) for m in question.missing]
    initial_rank = scorer.rank_of_set(missing, query)
    missing_doc = frozenset().union(*(m.doc for m in missing))
    pm = PenaltyModel(
        k0=query.k,
        initial_rank=initial_rank,
        doc_universe_size=len(query.doc | missing_doc),
        lam=question.lam,
    )
    best = pm.basic_penalty
    for candidate in CandidateEnumerator(query.doc, missing_doc).iter_naive():
        rank = scorer.rank_of_set(
            missing, query.with_keywords(candidate.keywords)
        )
        best = min(best, pm.penalty(candidate.delta_doc, rank))
    return best


@pytest.mark.parametrize("similarity", ["dice", "cosine"])
class TestAlternativeModelsExact:
    def test_micro_example(self, similarity):
        dataset, vocab = make_micro_example()
        engine = WhyNotEngine(dataset, capacity=4, similarity=similarity)
        t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
        query = SpatialKeywordQuery(
            loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1, alpha=0.5
        )
        question = WhyNotQuestion(query, (0,), lam=0.5)
        model = get_model(similarity)
        scorer = Scorer(dataset, model=model)
        if scorer.rank(dataset.get(0), query) <= 1:
            pytest.skip(f"m is not missing under {similarity}")
        expected = _brute_force(dataset, question, model)
        for method in ("basic", "advanced"):
            answer = engine.answer(question, method=method)
            assert answer.refined.penalty == pytest.approx(expected), method

    def test_euro_sample(self, similarity, euro_small):
        dataset, _ = euro_small
        model = get_model(similarity)
        scorer = Scorer(dataset, model=model)
        engine = WhyNotEngine(dataset, similarity=similarity)
        import numpy as np

        rng = np.random.default_rng(17)
        for _ in range(80):
            seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
            doc = frozenset(list(seed_obj.doc)[:2])
            if len(doc) < 2:
                continue
            query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=3)
            candidates = [
                o
                for o in dataset.objects[::37]
                if scorer.rank(o, query) > 10 and len(o.doc - doc) <= 4
            ]
            if not candidates:
                continue
            missing = candidates[0]
            question = WhyNotQuestion(query, (missing.oid,), lam=0.5)
            expected = _brute_force(dataset, question, model)
            answer = engine.answer(question, method="advanced")
            assert answer.refined.penalty == pytest.approx(expected)
            return
        pytest.skip("no suitable case drawn")
