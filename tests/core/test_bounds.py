"""Unit tests for MaxDom / MinDom (Algorithm 2 and its dual)."""

import itertools

import pytest

from repro.core.bounds import (
    DominationThresholds,
    NodeTextStats,
    max_dom,
    min_dom,
)
from repro.model.geometry import Rect


class TestNodeTextStats:
    def test_excess(self):
        stats = NodeTextStats(8, {1: 8, 2: 3, 3: 7, 4: 2, 5: 1})
        assert stats.excess(0) == 21
        assert stats.excess(2) == 6 + 1 + 5  # (8-2)+(3-2)+(7-2)
        assert stats.excess(100) == 0

    def test_rel_counts(self):
        stats = NodeTextStats(8, {1: 8, 3: 7})
        assert sorted(stats.rel_counts(frozenset({1, 3, 9}))) == [7, 8]


class TestAlgorithm2PaperExample:
    """Example 5 of the paper: kcm={(t1,8),(t2,3),(t3,7),(t4,2),(t5,1)},
    cnt=8, S={t3,t4}, L=0.395 -> MaxDom = 6."""

    def test_example5(self):
        stats = NodeTextStats(8, {1: 8, 2: 3, 3: 7, 4: 2, 5: 1})
        assert max_dom(stats, frozenset({3, 4}), 0.395) == 6


class TestMaxDomEdgeCases:
    def test_vacuous_threshold_returns_cnt(self):
        stats = NodeTextStats(5, {1: 5})
        assert max_dom(stats, frozenset({1}), -0.1) == 5
        assert max_dom(stats, frozenset({1}), 0.0) == 5

    def test_impossible_threshold_returns_zero(self):
        stats = NodeTextStats(5, {1: 5})
        assert max_dom(stats, frozenset({1}), 1.0001) == 0

    def test_no_relevant_keywords(self):
        stats = NodeTextStats(5, {1: 5})
        assert max_dom(stats, frozenset({99}), 0.2) == 0

    def test_empty_keywords(self):
        stats = NodeTextStats(5, {1: 5})
        assert max_dom(stats, frozenset(), 0.2) == 0

    def test_all_objects_fully_relevant(self):
        # every object's doc == S -> TSim = 1 for all
        stats = NodeTextStats(4, {1: 4, 2: 4})
        assert max_dom(stats, frozenset({1, 2}), 0.9) == 4


def _enumerate_worlds(cnt, kcm):
    """All keyword->object assignments consistent with a count map."""
    terms = sorted(kcm)
    choices = [
        itertools.combinations(range(cnt), kcm[t]) for t in terms
    ]
    for combo in itertools.product(*choices):
        docs = [set() for _ in range(cnt)]
        for term, owners in zip(terms, combo):
            for owner in owners:
                docs[owner].add(term)
        yield [frozenset(d) for d in docs]


def _jaccard(a, b):
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


class TestBoundsSoundnessExhaustive:
    """For small nodes, enumerate every world consistent with the count
    map and verify MinDom <= true dominators <= MaxDom in each."""

    @pytest.mark.parametrize(
        "cnt,kcm,keywords",
        [
            (3, {1: 2, 2: 1}, frozenset({1})),
            (3, {1: 3, 2: 2, 3: 1}, frozenset({1, 3})),
            (4, {1: 2, 2: 2}, frozenset({1, 2})),
            (4, {1: 4, 2: 1, 3: 2}, frozenset({2, 3})),
        ],
    )
    @pytest.mark.parametrize("lower", [0.05, 0.24, 0.5, 0.74])
    def test_bounds_bracket_truth(self, cnt, kcm, keywords, lower):
        stats = NodeTextStats(cnt, kcm)
        upper = lower  # one threshold world: L == U (point rectangle)
        dmax = max_dom(stats, keywords, lower)
        dmin = min_dom(stats, keywords, upper)
        worst_hi, worst_lo = 0, cnt
        for docs in _enumerate_worlds(cnt, kcm):
            # dominators under the Theorem 2 equivalence at L == U:
            # object dominates iff TSim > L.
            dominators = sum(1 for d in docs if _jaccard(d, keywords) > lower)
            worst_hi = max(worst_hi, dominators)
            worst_lo = min(worst_lo, dominators)
        assert dmax >= worst_hi
        assert dmin <= worst_lo


class TestMinDomEdgeCases:
    def test_negative_upper_all_dominate(self):
        stats = NodeTextStats(5, {1: 5})
        assert min_dom(stats, frozenset({1}), -0.01) == 5

    def test_upper_at_one_no_guarantee(self):
        stats = NodeTextStats(5, {1: 5})
        assert min_dom(stats, frozenset({1}), 1.0) == 0

    def test_empty_keywords_no_guarantee(self):
        stats = NodeTextStats(5, {1: 5})
        assert min_dom(stats, frozenset(), 0.5) == 0

    def test_forced_relevance_guarantees_domination(self):
        # Every object contains both keywords of S and nothing else:
        # TSim = 1 for all, so any U < 1 guarantees all dominate.
        stats = NodeTextStats(3, {1: 3, 2: 3})
        assert min_dom(stats, frozenset({1, 2}), 0.8) == 3

    def test_min_never_exceeds_max(self):
        stats = NodeTextStats(6, {1: 4, 2: 3, 3: 1})
        for threshold in (0.1, 0.3, 0.6, 0.9):
            keywords = frozenset({1, 3})
            assert min_dom(stats, keywords, threshold) <= max_dom(
                stats, keywords, threshold
            )


class TestThresholds:
    def test_lower_below_upper(self):
        rect = Rect(0.2, 0.2, 0.6, 0.6)
        t = DominationThresholds(rect, (0.0, 0.0), 1.414, 0.5, 0.3, 0.4)
        assert t.lower <= t.upper

    def test_point_rect_thresholds_equal(self):
        rect = Rect.from_point((0.5, 0.5))
        t = DominationThresholds(rect, (0.0, 0.0), 1.414, 0.5, 0.3, 0.4)
        assert t.lower == pytest.approx(t.upper)

    def test_alpha_ratio_scaling(self):
        rect = Rect(0.4, 0.4, 0.8, 0.8)
        near = DominationThresholds(rect, (0.0, 0.0), 1.414, 0.1, 0.3, 0.4)
        far = DominationThresholds(rect, (0.0, 0.0), 1.414, 0.9, 0.3, 0.4)
        # higher alpha weights distance more strongly in the threshold
        assert abs(far.lower - 0.4) > abs(near.lower - 0.4)
