"""Tests for the parallel candidate processing (Fig 10)."""

import pytest

from repro import (
    InvalidParameterError,
    ParallelAdvanced,
    ParallelKcR,
)
from repro.core.parallel import makespan


class TestMakespan:
    def test_single_worker_is_sum(self):
        times = [0.5, 1.0, 0.25]
        assert makespan(times, 1) == pytest.approx(1.75)

    def test_many_workers_is_max(self):
        times = [0.5, 1.0, 0.25]
        assert makespan(times, 10) == pytest.approx(1.0)

    def test_greedy_assignment(self):
        # units 3,3,2,2,2 on 2 workers: greedy gives 3+2 / 3+2+... ->
        # loads [3,3] -> [5,3] -> [5,5] -> [5,7]? step through:
        # 3->w0, 3->w1, 2->w0(3==3 tie min picks w0:5), 2->w1(5), 2->w0/1(7)
        assert makespan([3, 3, 2, 2, 2], 2) == pytest.approx(7.0)

    def test_monotone_in_workers(self):
        times = [0.1, 0.9, 0.4, 0.4, 0.2, 0.7]
        spans = [makespan(times, t) for t in (1, 2, 4, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(spans, spans[1:]))

    def test_zero_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            makespan([1.0], 0)


class TestParallelAdvanced:
    def test_validation(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ParallelAdvanced(euro_engine.setr_tree, 0)
        with pytest.raises(InvalidParameterError):
            ParallelAdvanced(euro_engine.setr_tree, 2, mode="warp")

    def test_simulated_answer_is_exact(self, euro_engine, euro_cases):
        question = euro_cases[0]
        exact = euro_engine.answer(question, method="kcr")
        for n_threads in (1, 4):
            answer = euro_engine.answer(
                question, method="parallel-advanced", n_threads=n_threads
            )
            assert answer.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_more_threads_not_slower_simulated(self, euro_engine, euro_cases):
        """The simulated makespan is monotone non-increasing in T for
        the same measured unit times; across separate runs we allow a
        generous tolerance for timing noise."""
        question = euro_cases[1]
        t1 = euro_engine.answer(
            question, method="parallel-advanced", n_threads=1
        ).elapsed_seconds
        t8 = euro_engine.answer(
            question, method="parallel-advanced", n_threads=8
        ).elapsed_seconds
        assert t8 <= t1 * 1.5

    def test_real_threads_mode_exact(self, euro_engine, euro_cases):
        question = euro_cases[0]
        exact = euro_engine.answer(question, method="kcr")
        answer = euro_engine.answer(
            question, method="parallel-advanced", n_threads=4, mode="threads"
        )
        assert answer.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_name(self, euro_engine):
        assert ParallelAdvanced(euro_engine.setr_tree, 4).name == "AdvancedBS-P4"


class TestParallelKcR:
    def test_validation(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ParallelKcR(euro_engine.kcr_tree, 0)

    @pytest.mark.parametrize("n_threads", [1, 2, 8])
    def test_partitioned_answer_is_exact(self, euro_engine, euro_cases, n_threads):
        question = euro_cases[2]
        exact = euro_engine.answer(question, method="kcr")
        answer = euro_engine.answer(
            question, method="parallel-kcr", n_threads=n_threads
        )
        assert answer.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_name(self, euro_engine):
        assert ParallelKcR(euro_engine.kcr_tree, 2).name == "KcRBased-P2"
