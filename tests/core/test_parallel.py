"""Tests for the parallel candidate processing (Fig 10)."""

import pytest

from repro import (
    InvalidParameterError,
    ParallelAdvanced,
    ParallelKcR,
)
from repro.core.parallel import makespan


class TestMakespan:
    def test_single_worker_is_sum(self):
        times = [0.5, 1.0, 0.25]
        assert makespan(times, 1) == pytest.approx(1.75)

    def test_many_workers_is_max(self):
        times = [0.5, 1.0, 0.25]
        assert makespan(times, 10) == pytest.approx(1.0)

    def test_greedy_assignment(self):
        # units 3,3,2,2,2 on 2 workers: greedy gives 3+2 / 3+2+... ->
        # loads [3,3] -> [5,3] -> [5,5] -> [5,7]? step through:
        # 3->w0, 3->w1, 2->w0(3==3 tie min picks w0:5), 2->w1(5), 2->w0/1(7)
        assert makespan([3, 3, 2, 2, 2], 2) == pytest.approx(7.0)

    def test_monotone_in_workers(self):
        times = [0.1, 0.9, 0.4, 0.4, 0.2, 0.7]
        spans = [makespan(times, t) for t in (1, 2, 4, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(spans, spans[1:]))

    def test_zero_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            makespan([1.0], 0)


class TestParallelAdvanced:
    def test_validation(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ParallelAdvanced(euro_engine.setr_tree, 0)
        with pytest.raises(InvalidParameterError):
            ParallelAdvanced(euro_engine.setr_tree, 2, mode="warp")

    def test_simulated_answer_is_exact(self, euro_engine, euro_cases):
        question = euro_cases[0]
        exact = euro_engine.answer(question, method="kcr")
        for n_threads in (1, 4):
            answer = euro_engine.answer(
                question, method="parallel-advanced", n_threads=n_threads
            )
            assert answer.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_more_threads_not_slower_simulated(self, euro_engine, euro_cases):
        """The simulated makespan is monotone non-increasing in T for
        the same measured unit times; across separate runs we allow a
        generous tolerance for timing noise."""
        question = euro_cases[1]
        t1 = euro_engine.answer(
            question, method="parallel-advanced", n_threads=1
        ).elapsed_seconds
        t8 = euro_engine.answer(
            question, method="parallel-advanced", n_threads=8
        ).elapsed_seconds
        assert t8 <= t1 * 1.5

    def test_real_threads_mode_exact(self, euro_engine, euro_cases):
        question = euro_cases[0]
        exact = euro_engine.answer(question, method="kcr")
        answer = euro_engine.answer(
            question, method="parallel-advanced", n_threads=4, mode="threads"
        )
        assert answer.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_name(self, euro_engine):
        assert ParallelAdvanced(euro_engine.setr_tree, 4).name == "AdvancedBS-P4"

    def test_filtering_toggle_stays_exact(self, euro_engine, euro_cases):
        """Opt3 dominator sharing is a pure pruning optimisation: the
        answer must be identical with it on or off, in both modes."""
        question = euro_cases[2]
        exact = euro_engine.answer(question, method="kcr")
        for mode in ("simulate", "threads"):
            for filtering in (True, False):
                answer = euro_engine.answer(
                    question,
                    method="parallel-advanced",
                    n_threads=4,
                    mode=mode,
                    filtering=filtering,
                )
                assert answer.refined.penalty == pytest.approx(
                    exact.refined.penalty
                ), (mode, filtering)

    def test_cache_prune_skips_bad_candidate_without_io(self, euro_engine, euro_cases):
        """A candidate whose cached dominators already exceed the stop
        limit is pruned through the shared cache, with zero page I/O."""
        from repro.core.context import QuestionContext
        from repro.core.dominator_cache import DominatorCache
        from repro.core.result import SearchCounters

        tree = euro_engine.setr_tree
        algo = ParallelAdvanced(tree, 4, model=euro_engine.model)
        context = QuestionContext.prepare(
            euro_cases[0], tree, euro_engine.model
        )
        cache = DominatorCache(
            context.dataset, context.query, context.missing, euro_engine.model
        )
        # Worker A evaluated a poor candidate and shared its dominators.
        for candidate in context.enumerator.iter_paper_order():
            result = context.searcher.rank_of_missing(
                context.query, context.missing, keywords=candidate.keywords
            )
            if result.rank is not None and result.rank > 40:
                break
        else:
            pytest.skip("no deep-rank candidate in this workload")
        cache.record_dominators(result.dominators)
        stop_limit = context.penalty_model.max_useful_rank(
            0.2, candidate.delta_doc
        )
        assert stop_limit is not None and len(cache) >= stop_limit

        # Worker B hits the same candidate: pruned from the cache alone.
        counters = SearchCounters()
        before = tree.stats.snapshot()
        outcome = algo._evaluate_candidate(
            context, candidate, 0.2, counters, cache=cache
        )
        io_delta = tree.stats.snapshot() - before
        assert outcome is None
        assert counters.pruned_by_cache == 1
        assert io_delta.page_reads == 0


class TestParallelKcR:
    def test_validation(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ParallelKcR(euro_engine.kcr_tree, 0)

    @pytest.mark.parametrize("n_threads", [1, 2, 8])
    def test_partitioned_answer_is_exact(self, euro_engine, euro_cases, n_threads):
        question = euro_cases[2]
        exact = euro_engine.answer(question, method="kcr")
        answer = euro_engine.answer(
            question, method="parallel-kcr", n_threads=n_threads
        )
        assert answer.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_name(self, euro_engine):
        assert ParallelKcR(euro_engine.kcr_tree, 2).name == "KcRBased-P2"
