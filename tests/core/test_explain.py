"""Tests for the why-not explanation API."""

import pytest

from repro import (
    Scorer,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
    explain,
    make_micro_example,
)


@pytest.fixture(scope="module")
def answered(micro):
    dataset, vocab = micro
    engine = WhyNotEngine(dataset, capacity=4)
    t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
    query = SpatialKeywordQuery(
        loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1, alpha=0.5
    )
    question = WhyNotQuestion(query, (0,), lam=0.5)
    answer = engine.answer(question, method="kcr")
    return dataset, vocab, question, answer


class TestProfiles:
    def test_missing_profile_matches_scorer(self, answered):
        dataset, vocab, question, answer = answered
        explanation = explain(dataset, question, answer, vocabulary=vocab)
        profile = explanation.missing_profiles[0]
        scorer = Scorer(dataset)
        assert profile.oid == 0
        assert profile.rank == 3
        assert profile.score == pytest.approx(
            scorer.st(dataset.get(0), question.query)
        )

    def test_blockers_are_the_dominators(self, answered):
        dataset, vocab, question, answer = answered
        explanation = explain(dataset, question, answer)
        profile = explanation.missing_profiles[0]
        assert {b.oid for b in profile.blockers} == {2, 3}
        # sorted best-first
        scores = [b.score for b in profile.blockers]
        assert scores == sorted(scores, reverse=True)

    def test_blocker_edges(self, answered):
        dataset, vocab, question, answer = answered
        explanation = explain(dataset, question, answer)
        by_oid = {b.oid: b for b in explanation.missing_profiles[0].blockers}
        # o2 (oid 2) is much closer but textually weaker than m
        assert by_oid[2].wins_spatially and not by_oid[2].wins_textually
        # o3 (oid 3) is slightly closer AND a perfect keyword match
        assert by_oid[3].wins_textually
        assert "keyword" in by_oid[3].edge

    def test_edit_script(self, answered):
        dataset, vocab, question, answer = answered
        explanation = explain(dataset, question, answer, vocabulary=vocab)
        t3 = vocab.id_of("t3")
        assert explanation.added_keywords == frozenset({t3})
        assert explanation.removed_keywords == frozenset()


class TestRendering:
    def test_render_mentions_everything(self, answered):
        dataset, vocab, question, answer = answered
        text = explain(dataset, question, answer, vocabulary=vocab).render()
        assert "Missing object #0 ranked 3" in text
        assert "add keyword(s): t3" in text
        assert "enlarge k from 1 to 2" in text
        assert "penalty 0.4167" in text

    def test_render_without_vocabulary(self, answered):
        dataset, vocab, question, answer = answered
        text = explain(dataset, question, answer).render()
        assert "Missing object #0" in text

    def test_render_limits_blockers(self, answered):
        dataset, vocab, question, answer = answered
        text = explain(dataset, question, answer).render(max_blockers=1)
        assert text.count("- object #") == 1

    def test_alpha_refinement_rendering(self, answered):
        dataset, vocab, question, _ = answered
        engine = WhyNotEngine(dataset, capacity=4)
        alpha_answer = engine.answer(question, method="alpha")
        text = explain(dataset, question, alpha_answer, vocabulary=vocab).render()
        if alpha_answer.refined.alpha is not None:
            assert "alpha=" in text
        else:
            assert "enlarge k" in text
