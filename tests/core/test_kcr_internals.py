"""White-box tests for the bound-and-prune machinery (Algorithm 3)."""

import pytest

from repro import KcRAlgorithm, KcRTree, make_micro_example
from repro.core.candidates import Candidate
from repro.core.kcr_algorithm import _CandidateState


class TestCandidateState:
    def _state(self, n_missing=2):
        candidate = Candidate(
            keywords=frozenset({1, 2}),
            added=frozenset({2}),
            removed=frozenset(),
        )
        return _CandidateState(candidate, n_missing)

    def test_initial_bounds(self):
        state = self._state()
        assert state.rank_upper() == 1
        assert state.rank_lower() == 1
        assert state.alive

    def test_rank_bounds_take_worst_missing(self):
        state = self._state(n_missing=3)
        state.dmax = [5, 2, 9]
        state.dmin = [1, 4, 0]
        assert state.rank_upper() == 10  # max dmax + 1
        assert state.rank_lower() == 5  # max dmin + 1 (tighter than paper's min)

    def test_rank_lower_never_exceeds_upper_when_consistent(self):
        state = self._state(n_missing=2)
        state.dmax = [7, 3]
        state.dmin = [2, 3]
        assert state.rank_lower() <= state.rank_upper()


class TestAlgorithmPlumbing:
    def test_stats_cache_still_charges_io(self, micro):
        """The NodeTextStats cache is a CPU shortcut, not an I/O
        shortcut: every kcm access must still go through the buffer."""
        dataset, vocab = micro
        tree = KcRTree(dataset, capacity=2)
        algorithm = KcRAlgorithm(tree)
        record = tree.root_summary_record
        tree.reset_buffer()
        before = tree.stats.snapshot()
        algorithm._node_stats(record)
        first = tree.stats.snapshot() - before
        assert first.page_reads > 0
        before = tree.stats.snapshot()
        algorithm._node_stats(record)  # cached stats, buffered page
        second = tree.stats.snapshot() - before
        assert second.buffer_hits == 1
        assert second.page_reads == 0
        tree.reset_buffer()
        before = tree.stats.snapshot()
        algorithm._node_stats(record)  # cached stats, cold buffer
        third = tree.stats.snapshot() - before
        assert third.page_reads > 0  # the fetch is still charged

    def test_counters_report_pruning(self, euro_engine, euro_cases):
        answer = euro_engine.answer(euro_cases[0], method="kcr")
        counters = answer.counters
        assert counters.candidates_enumerated >= counters.candidates_evaluated
        assert counters.nodes_expanded > 0

    def test_geo_offsets_ordering(self, micro):
        """geo_lower <= geo_upper componentwise (MinDist <= MaxDist)."""
        dataset, _ = micro
        tree = KcRTree(dataset, capacity=2)
        algorithm = KcRAlgorithm(tree)
        rect = tree.root_rect
        lower, upper = algorithm._geo_offsets(
            rect, (0.0, 0.0), 0.5, [0.2, 0.7]
        )
        for lo, hi in zip(lower, upper):
            assert lo <= hi + 1e-12
