"""Unit tests for the WhyNotEngine facade."""

import pytest

from repro import (
    InvalidParameterError,
    KcRAlgorithm,
    WhyNotEngine,
    make_micro_example,
)
from repro.model.similarity import DICE


class TestConstruction:
    def test_lazy_index_build(self):
        dataset, _ = make_micro_example()
        engine = WhyNotEngine(dataset, capacity=4)
        assert engine._setr is None and engine._kcr is None
        _ = engine.setr_tree
        assert engine._setr is not None and engine._kcr is None

    def test_buffer_fraction_resizes(self, euro_small):
        dataset, _ = euro_small
        engine = WhyNotEngine(dataset, buffer_fraction=0.1)
        tree = engine.setr_tree
        assert tree.buffer.capacity_pages <= max(
            32, int(tree.pager.total_pages * 0.1)
        )

    def test_buffer_fraction_none_keeps_default(self):
        dataset, _ = make_micro_example()
        engine = WhyNotEngine(dataset, capacity=4, buffer_fraction=None)
        assert engine.setr_tree.buffer.capacity_pages == (4 * 1024 * 1024) // 4096

    def test_unknown_similarity_rejected(self):
        dataset, _ = make_micro_example()
        with pytest.raises(ValueError):
            WhyNotEngine(dataset, similarity="bm25")


class TestDispatch:
    def test_unknown_method(self, euro_engine, euro_cases):
        with pytest.raises(InvalidParameterError):
            euro_engine.answer(euro_cases[0], method="quantum")

    def test_method_names_propagate(self, euro_engine, euro_cases):
        question = euro_cases[0]
        assert euro_engine.answer(question, method="basic").algorithm == "BS"
        assert (
            euro_engine.answer(question, method="advanced").algorithm
            == "AdvancedBS"
        )
        assert euro_engine.answer(question, method="kcr").algorithm == "KcRBased"

    def test_reset_buffers_touches_built_trees(self, euro_engine, euro_cases):
        _ = euro_engine.answer(euro_cases[0], method="kcr")
        euro_engine.reset_buffers()
        assert euro_engine.kcr_tree.buffer.used_pages == 0


class TestAlternativeSimilarity:
    def test_dice_engine_answers(self):
        """Footnote 1: the BS/AdvancedBS path supports other models."""
        dataset, vocab = make_micro_example()
        engine = WhyNotEngine(dataset, capacity=4, similarity="dice")
        from repro import SpatialKeywordQuery, WhyNotQuestion

        t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
        query = SpatialKeywordQuery(
            loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1, alpha=0.5
        )
        question = WhyNotQuestion(query, (0,), lam=0.5)
        basic = engine.answer(question, method="basic")
        advanced = engine.answer(question, method="advanced")
        assert basic.refined.penalty == pytest.approx(advanced.refined.penalty)

    def test_kcr_rejects_non_jaccard(self):
        dataset, _ = make_micro_example()
        from repro import KcRTree

        tree = KcRTree(dataset, capacity=4)
        with pytest.raises(ValueError):
            KcRAlgorithm(tree, DICE)
