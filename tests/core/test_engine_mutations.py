"""Tests for engine-level dataset mutations (insert/remove/update)."""

import pytest

from repro import (
    Dataset,
    Oracle,
    SpatialKeywordQuery,
    SpatialObject,
    WhyNotEngine,
    make_euro_like,
)


@pytest.fixture()
def engine():
    full, _ = make_euro_like(300, seed=71)
    dataset = Dataset(list(full.objects), diagonal=full.diagonal)
    engine = WhyNotEngine(dataset)
    _ = engine.setr_tree, engine.kcr_tree
    return engine


class TestUpdateKeywords:
    def test_update_changes_query_results(self, engine):
        dataset = engine.dataset
        target = dataset.objects[17]
        # a rare fresh keyword: queries for it must now find the object
        fresh_term = max(dataset.doc_frequency) + 1
        engine.update_keywords(target.oid, {fresh_term})
        assert dataset.get(target.oid).doc == {fresh_term}
        query = SpatialKeywordQuery(
            loc=target.loc, doc=frozenset({fresh_term}), k=1, alpha=0.3
        )
        top = engine.top_k(query)
        assert top[0][1] == target.oid

    def test_update_preserves_location_and_id(self, engine):
        dataset = engine.dataset
        target = dataset.objects[5]
        engine.update_keywords(target.oid, {1, 2, 3})
        updated = dataset.get(target.oid)
        assert updated.loc == target.loc
        assert updated.doc == {1, 2, 3}
        assert len(dataset) == 300  # no net growth

    def test_trees_stay_valid(self, engine):
        for oid in (3, 50, 123):
            engine.update_keywords(oid, {7, 8})
        engine.setr_tree.validate()
        engine.kcr_tree.validate()

    def test_frequencies_follow_update(self, engine):
        dataset = engine.dataset
        target = dataset.objects[9]
        old_terms = set(target.doc)
        fresh_term = max(dataset.doc_frequency) + 2
        before = {t: dataset.frequency(t) for t in old_terms}
        engine.update_keywords(target.oid, {fresh_term})
        for term in old_terms:
            assert dataset.frequency(term) == before[term] - 1
        assert dataset.frequency(fresh_term) == 1

    def test_merchant_loop_closes(self, engine):
        """Answering a why-not question about a listing and applying
        the suggested keywords must actually revive the listing."""
        from repro import WhyNotQuestion

        dataset = engine.dataset
        oracle = Oracle(dataset)
        import numpy as np

        rng = np.random.default_rng(9)
        for _ in range(50):
            seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
            doc = frozenset(list(seed_obj.doc)[:3])
            if len(doc) < 2:
                continue
            query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5)
            try:
                missing = oracle.object_at_rank(query, 16)
            except ValueError:
                continue
            if len(dataset.get(missing).doc - query.doc) > 5:
                continue
            question = WhyNotQuestion(query, (missing,), lam=0.5)
            answer = engine.answer(question, method="kcr")
            refined = answer.refined.as_query(query)
            result = {oid for _, oid in engine.top_k(refined)}
            assert missing in result
            return
        pytest.skip("no suitable why-not case found")


class TestRemoveThenInsert:
    def test_roundtrip_identity(self, engine):
        dataset = engine.dataset
        target = dataset.objects[33]
        engine.remove(target.oid)
        assert target.oid not in dataset
        engine.insert(target)
        assert dataset.get(target.oid).doc == target.doc
        engine.setr_tree.validate()
        engine.kcr_tree.validate()
