"""Tests for the α-refinement extension and the integrated framework."""

import pytest

from repro import (
    AlphaRefinementAlgorithm,
    IntegratedAlgorithm,
    InvalidParameterError,
    Oracle,
)


class TestValidation:
    def test_positive_samples_required(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            AlphaRefinementAlgorithm(euro_engine.setr_tree, n_samples=0)


class TestAlphaRefinement:
    def test_never_worse_than_basic(self, euro_engine, euro_cases):
        for question in euro_cases[:3]:
            answer = euro_engine.answer(question, method="alpha")
            assert answer.refined.penalty <= question.lam + 1e-12

    def test_keywords_untouched(self, euro_engine, euro_cases):
        question = euro_cases[0]
        answer = euro_engine.answer(question, method="alpha")
        assert answer.refined.keywords == question.query.doc
        assert answer.refined.delta_doc == 0

    def test_refined_alpha_actually_revives(
        self, euro_engine, euro_oracle, euro_cases
    ):
        for question in euro_cases[:4]:
            answer = euro_engine.answer(question, method="alpha")
            refined = answer.refined.as_query(question.query)
            rank = euro_oracle.rank_of_set(question.missing, refined)
            assert rank <= refined.k

    def test_reported_rank_matches_oracle(
        self, euro_engine, euro_oracle, euro_cases
    ):
        question = euro_cases[1]
        answer = euro_engine.answer(question, method="alpha")
        if answer.refined.alpha is None:
            pytest.skip("basic refinement won; no alpha to check")
        refined = answer.refined.as_query(question.query)
        assert answer.refined.rank == euro_oracle.rank_of_set(
            question.missing, refined
        )

    def test_more_samples_never_worse(self, euro_engine, euro_cases):
        question = euro_cases[2]
        coarse = AlphaRefinementAlgorithm(
            euro_engine.setr_tree, n_samples=8
        ).answer(question)
        fine = AlphaRefinementAlgorithm(
            euro_engine.setr_tree, n_samples=128
        ).answer(question)
        assert fine.refined.penalty <= coarse.refined.penalty + 1e-9

    def test_describe_shows_alpha(self, euro_engine, euro_cases):
        question = euro_cases[0]
        answer = euro_engine.answer(question, method="alpha")
        if answer.refined.alpha is not None:
            assert "alpha=" in answer.refined.describe()


class TestIntegrated:
    def test_beats_or_ties_both_legs(self, euro_engine, euro_cases):
        for question in euro_cases[:3]:
            keyword = euro_engine.answer(question, method="kcr")
            alpha = euro_engine.answer(question, method="alpha")
            integrated = euro_engine.answer(question, method="integrated")
            best_leg = min(keyword.refined.penalty, alpha.refined.penalty)
            assert integrated.refined.penalty <= best_leg + 1e-9

    def test_winner_labelled(self, euro_engine, euro_cases):
        answer = euro_engine.answer(euro_cases[0], method="integrated")
        assert answer.algorithm.startswith("Integrated(")

    def test_winner_revives(self, euro_engine, euro_oracle, euro_cases):
        question = euro_cases[1]
        answer = euro_engine.answer(question, method="integrated")
        refined = answer.refined.as_query(question.query)
        rank = euro_oracle.rank_of_set(question.missing, refined)
        assert rank <= refined.k
