"""End-to-end reproduction of the paper's worked examples.

Fig 1 / Table I drive the whole stack on the four-object micro
dataset.  One deliberate deviation is asserted explicitly: Table I's
row for ``q2 = (1, {t2, t3})`` claims ``Δk = 0``, but by the paper's
own Fig 1(b) numbers object ``o2`` scores 0.6167 > m's 0.5833 under
``{t2, t3}``, so ``R(m, q2) = 2`` and q2's true penalty is 0.583, not
0.33.  The optimum under the paper's definitions is therefore
``q4 = (2, {t1, t2, t3})`` with penalty 5/12 — which is what every
algorithm here returns (and what brute force confirms).
"""

import pytest

from repro import (
    Scorer,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
)


@pytest.fixture(scope="module")
def fig1(micro):
    dataset, vocab = micro
    t = {w: vocab.id_of(w) for w in ("t1", "t2", "t3")}
    query = SpatialKeywordQuery(
        loc=(0.0, 0.0), doc=frozenset({t["t1"], t["t2"]}), k=1, alpha=0.5
    )
    engine = WhyNotEngine(dataset, capacity=4, buffer_fraction=None)
    return dataset, t, query, engine


class TestInitialQuery:
    def test_top1_is_o3(self, fig1):
        _, _, query, engine = fig1
        assert [oid for _, oid in engine.top_k(query)] == [3]

    def test_m_ranks_third(self, fig1):
        dataset, _, query, _ = fig1
        assert Scorer(dataset).rank(dataset.get(0), query) == 3


class TestTableIPenalties:
    """Recompute every Table I row from first principles."""

    @pytest.fixture()
    def scorer_and_pm(self, fig1):
        dataset, t, query, _ = fig1
        from repro import PenaltyModel

        scorer = Scorer(dataset)
        pm = PenaltyModel(k0=1, initial_rank=3, doc_universe_size=3, lam=0.5)
        return dataset, t, query, scorer, pm

    def test_q1_keep_keywords(self, scorer_and_pm):
        dataset, t, query, scorer, pm = scorer_and_pm
        assert pm.penalty(0, 3) == pytest.approx(0.5)

    def test_q3(self, scorer_and_pm):
        dataset, t, query, scorer, pm = scorer_and_pm
        keywords = frozenset({t["t1"], t["t3"]})
        rank = scorer.rank(dataset.get(0), query.with_keywords(keywords))
        assert rank == 2
        assert pm.penalty(2, rank) == pytest.approx(0.5 * 0.5 + 0.5 * 2 / 3)

    def test_q4_is_optimal(self, scorer_and_pm):
        dataset, t, query, scorer, pm = scorer_and_pm
        keywords = frozenset({t["t1"], t["t2"], t["t3"]})
        rank = scorer.rank(dataset.get(0), query.with_keywords(keywords))
        assert rank == 2
        assert pm.penalty(1, rank) == pytest.approx(5 / 12)

    def test_q2_paper_row_is_inconsistent(self, scorer_and_pm):
        """Documented deviation: under {t2,t3}, o2 outranks m, so q2's
        Δk cannot be 0 as Table I prints."""
        dataset, t, query, scorer, pm = scorer_and_pm
        keywords = frozenset({t["t2"], t["t3"]})
        m, o2 = dataset.get(0), dataset.get(2)
        refined = query.with_keywords(keywords)
        assert scorer.st(o2, refined) > scorer.st(m, refined)
        assert scorer.rank(m, refined) == 2
        assert pm.penalty(2, 2) == pytest.approx(0.5 * 0.5 + 0.5 * 2 / 3)


class TestAllAlgorithmsOnFig1:
    @pytest.mark.parametrize("method", ["basic", "advanced", "kcr"])
    def test_optimal_refinement(self, fig1, method):
        dataset, t, query, engine = fig1
        question = WhyNotQuestion(query, (0,), lam=0.5)
        answer = engine.answer(question, method=method)
        assert answer.initial_rank == 3
        assert answer.refined.keywords == frozenset({t["t1"], t["t2"], t["t3"]})
        assert answer.refined.k == 2
        assert answer.refined.penalty == pytest.approx(5 / 12)

    def test_refined_query_actually_revives_m(self, fig1):
        dataset, t, query, engine = fig1
        question = WhyNotQuestion(query, (0,), lam=0.5)
        answer = engine.answer(question, method="kcr")
        refined = answer.refined.as_query(query)
        result_ids = [oid for _, oid in engine.top_k(refined)]
        assert 0 in result_ids

    def test_lambda_extremes(self, fig1):
        dataset, t, query, engine = fig1
        # λ=1: only k matters; modifying keywords is free, so the best
        # penalty is achieved with a keyword set reviving m at rank 1
        # or, failing that, the smallest Δk.
        answer = engine.answer(WhyNotQuestion(query, (0,), lam=1.0), method="kcr")
        assert answer.refined.penalty <= 1.0
        # λ=0: enlarging k is free -> the basic refinement already has
        # penalty 0 and nothing can strictly improve on it.
        answer0 = engine.answer(WhyNotQuestion(query, (0,), lam=0.0), method="kcr")
        assert answer0.refined.penalty == 0.0
        assert answer0.refined.delta_doc == 0
