"""Integration tests: BS, AdvancedBS, and KcRBased on real workloads.

The central invariant: all exact algorithms return the same (optimal)
penalty on every question, equal to the brute-force oracle optimum.
"""

import pytest

from repro import (
    AdvancedAlgorithm,
    BasicAlgorithm,
    KcRAlgorithm,
    MissingObjectError,
    Oracle,
    PenaltyModel,
    SpatialKeywordQuery,
    WhyNotQuestion,
)
from repro.core.context import QuestionContext


def _brute_force_penalty(question, dataset, oracle):
    """Reference optimum by full enumeration + numpy ranking."""
    query = question.query
    missing_docs = [dataset.get(m).doc for m in question.missing]
    missing_doc = frozenset().union(*missing_docs)
    initial_rank = oracle.rank_of_set(question.missing, query)
    pm = PenaltyModel(
        k0=query.k,
        initial_rank=initial_rank,
        doc_universe_size=len(query.doc | missing_doc),
        lam=question.lam,
    )
    from repro.core.candidates import CandidateEnumerator

    enumerator = CandidateEnumerator(query.doc, missing_doc)
    best = pm.basic_penalty
    for candidate in enumerator.iter_naive():
        rank = oracle.rank_of_set(question.missing, query, candidate.keywords)
        penalty = pm.penalty(candidate.delta_doc, rank)
        if penalty < best:
            best = penalty
    return best, initial_rank


@pytest.fixture(scope="module")
def reference(euro_small, euro_oracle, euro_cases):
    dataset, _ = euro_small
    return [
        _brute_force_penalty(question, dataset, euro_oracle)
        for question in euro_cases
    ]


class TestExactOptimality:
    @pytest.mark.parametrize("method", ["basic", "advanced", "kcr"])
    def test_penalty_matches_brute_force(
        self, euro_engine, euro_cases, reference, method
    ):
        for question, (expected_penalty, expected_rank) in zip(
            euro_cases, reference
        ):
            answer = euro_engine.answer(question, method=method)
            assert answer.initial_rank == expected_rank
            assert answer.refined.penalty == pytest.approx(expected_penalty)

    def test_refined_query_revives_missing(self, euro_engine, euro_cases):
        for question in euro_cases:
            answer = euro_engine.answer(question, method="kcr")
            refined = answer.refined.as_query(question.query)
            result = euro_engine.top_k(refined)
            result_ids = {oid for _, oid in result}
            for m in question.missing:
                assert m in result_ids, "refined query must contain the missing object"

    def test_reported_rank_is_true_rank(
        self, euro_engine, euro_oracle, euro_cases
    ):
        for question in euro_cases:
            answer = euro_engine.answer(question, method="kcr")
            true_rank = euro_oracle.rank_of_set(
                question.missing, question.query, answer.refined.keywords
            )
            assert answer.refined.rank == true_rank


class TestAdvancedAblations:
    """Every optimization subset must stay exact (Fig 11's premise)."""

    @pytest.mark.parametrize(
        "flags",
        [
            dict(early_stop=True, ordering=False, filtering=False),
            dict(early_stop=False, ordering=True, filtering=False),
            dict(early_stop=False, ordering=False, filtering=True),
            dict(early_stop=True, ordering=True, filtering=False),
            dict(early_stop=False, ordering=False, filtering=False),
        ],
    )
    def test_ablation_exact(self, euro_engine, euro_cases, reference, flags):
        question = euro_cases[0]
        expected_penalty, _ = reference[0]
        answer = euro_engine.answer(question, method="advanced", **flags)
        assert answer.refined.penalty == pytest.approx(expected_penalty)

    def test_names_reflect_flags(self, euro_engine):
        algo = AdvancedAlgorithm(euro_engine.setr_tree, ordering=False)
        assert algo.name == "BS+Opt1+Opt3"
        full = AdvancedAlgorithm(euro_engine.setr_tree)
        assert full.name == "AdvancedBS"
        bare = AdvancedAlgorithm(
            euro_engine.setr_tree, early_stop=False, ordering=False, filtering=False
        )
        assert bare.name == "BS"

    def test_optimizations_reduce_work(self, euro_engine, euro_cases):
        """AdvancedBS must evaluate (strictly) fewer candidates than BS."""
        question = euro_cases[0]
        basic = euro_engine.answer(question, method="basic")
        advanced = euro_engine.answer(question, method="advanced")
        assert (
            advanced.counters.candidates_evaluated
            < basic.counters.candidates_evaluated
        )

    def test_early_stop_aborts_some_searches(self, euro_engine, euro_cases):
        aborted = 0
        for question in euro_cases:
            answer = euro_engine.answer(
                question, method="advanced", filtering=False
            )
            aborted += answer.counters.aborted_early
        assert aborted > 0


class TestMultipleMissing:
    def _multi_question(self, euro_small, euro_oracle):
        dataset, _ = euro_small
        import numpy as np

        rng = np.random.default_rng(19)
        while True:
            obj = dataset.objects[int(rng.integers(0, len(dataset)))]
            doc = frozenset(list(obj.doc)[:3])
            if len(doc) < 2:
                continue
            query = SpatialKeywordQuery(loc=obj.loc, doc=doc, k=5)
            scores = euro_oracle.scores(query)
            import numpy as np2  # noqa: F401

            order = euro_oracle.top_k_ids(query, k=30)
            pool = [
                oid
                for oid in order[8:30]
                if len(dataset.get(oid).doc - query.doc) <= 4
            ]
            if len(pool) >= 2:
                return WhyNotQuestion(query, tuple(pool[:2]), lam=0.5)

    @pytest.mark.parametrize("method", ["basic", "advanced", "kcr"])
    def test_multi_missing_agreement(
        self, euro_small, euro_oracle, euro_engine, method
    ):
        dataset, _ = euro_small
        question = self._multi_question(euro_small, euro_oracle)
        expected, expected_rank = _brute_force_penalty(
            question, dataset, euro_oracle
        )
        answer = euro_engine.answer(question, method=method)
        assert answer.initial_rank == expected_rank
        assert answer.refined.penalty == pytest.approx(expected)

    def test_multi_missing_all_revived(self, euro_small, euro_oracle, euro_engine):
        question = self._multi_question(euro_small, euro_oracle)
        answer = euro_engine.answer(question, method="kcr")
        refined = answer.refined.as_query(question.query)
        result_ids = {oid for _, oid in euro_engine.top_k(refined)}
        for m in question.missing:
            assert m in result_ids


class TestValidation:
    def test_object_already_in_result_rejected(self, euro_engine, euro_oracle):
        dataset = euro_engine.dataset
        obj = dataset.objects[0]
        doc = frozenset(list(obj.doc)[:2]) or frozenset({0})
        query = SpatialKeywordQuery(loc=obj.loc, doc=doc, k=10)
        top1 = euro_oracle.top_k_ids(query, k=1)[0]
        with pytest.raises(MissingObjectError):
            euro_engine.answer(
                WhyNotQuestion(query, (top1,)), method="advanced"
            )

    def test_unknown_missing_object_rejected(self, euro_engine):
        query = SpatialKeywordQuery(loc=(0.5, 0.5), doc=frozenset({0}), k=5)
        from repro import DatasetError

        with pytest.raises(DatasetError):
            euro_engine.answer(
                WhyNotQuestion(query, (10**9,)), method="advanced"
            )


class TestAnswerMetadata:
    def test_answer_carries_metrics(self, euro_engine, euro_cases):
        euro_engine.reset_buffers()
        answer = euro_engine.answer(euro_cases[0], method="kcr")
        assert answer.elapsed_seconds > 0
        assert answer.io.page_reads > 0
        assert answer.algorithm == "KcRBased"

    def test_is_basic_refinement_flag(self, euro_engine, euro_cases):
        answer = euro_engine.answer(euro_cases[0], method="kcr")
        assert answer.is_basic_refinement == (answer.refined.delta_doc == 0)
