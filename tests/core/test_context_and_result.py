"""Unit tests for QuestionContext and the result types."""

import pytest

from repro import (
    MissingObjectError,
    SpatialKeywordQuery,
    Vocabulary,
    WhyNotQuestion,
    make_micro_example,
)
from repro.core.context import QuestionContext
from repro.core.result import RefinedQuery, SearchCounters, WhyNotAnswer
from repro.index.setr_tree import SetRTree
from repro.model.similarity import JACCARD
from repro.storage.stats import IOSnapshot


@pytest.fixture(scope="module")
def micro_tree(micro):
    dataset, _ = micro
    return SetRTree(dataset, capacity=4)


class TestQuestionContext:
    def _question(self, vocab, missing=(0,), k=1, lam=0.5):
        t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
        query = SpatialKeywordQuery(
            loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=k, alpha=0.5
        )
        return WhyNotQuestion(query, missing, lam=lam)

    def test_prepare_resolves_everything(self, micro, micro_tree):
        dataset, vocab = micro
        context = QuestionContext.prepare(
            self._question(vocab), micro_tree, JACCARD
        )
        assert context.initial_rank == 3
        assert context.penalty_model.k0 == 1
        assert context.penalty_model.doc_universe_size == 3
        assert [m.oid for m in context.missing] == [0]
        assert context.enumerator.universe_size == 3

    def test_object_in_result_rejected(self, micro, micro_tree):
        dataset, vocab = micro
        with pytest.raises(MissingObjectError):
            QuestionContext.prepare(
                self._question(vocab, missing=(3,)), micro_tree, JACCARD
            )

    def test_basic_refined_query(self, micro, micro_tree):
        dataset, vocab = micro
        context = QuestionContext.prepare(
            self._question(vocab, lam=0.7), micro_tree, JACCARD
        )
        basic = context.basic_refined()
        assert basic.keywords == context.query.doc
        assert basic.k == context.initial_rank
        assert basic.delta_doc == 0
        assert basic.penalty == pytest.approx(0.7)

    def test_multi_missing_universe(self, micro, micro_tree):
        dataset, vocab = micro
        # m (oid 0, rank 3) and o1 (oid 1, rank 4) are both outside top-1
        context = QuestionContext.prepare(
            self._question(vocab, missing=(0, 1)), micro_tree, JACCARD
        )
        assert context.initial_rank == 4
        union_doc = dataset.get(0).doc | dataset.get(1).doc
        assert context.enumerator.missing_doc == union_doc


class TestRefinedQuery:
    def test_as_query(self):
        initial = SpatialKeywordQuery(loc=(0.1, 0.2), doc=frozenset({1}), k=3)
        refined = RefinedQuery(
            keywords=frozenset({1, 2}), k=7, delta_doc=1, rank=7, penalty=0.3
        )
        materialised = refined.as_query(initial)
        assert materialised.doc == frozenset({1, 2})
        assert materialised.k == 7
        assert materialised.loc == initial.loc
        assert materialised.alpha == initial.alpha

    def test_as_query_with_alpha(self):
        initial = SpatialKeywordQuery(loc=(0.1, 0.2), doc=frozenset({1}), k=3)
        refined = RefinedQuery(
            keywords=frozenset({1}), k=3, delta_doc=0, rank=2, penalty=0.1,
            alpha=0.8,
        )
        assert refined.as_query(initial).alpha == 0.8

    def test_describe_with_vocabulary(self):
        vocab = Vocabulary(["hotel", "spa"])
        refined = RefinedQuery(
            keywords=frozenset({0, 1}), k=5, delta_doc=1, rank=4, penalty=0.25
        )
        text = refined.describe(vocab)
        assert "hotel" in text and "spa" in text
        assert "k=5" in text

    def test_describe_without_vocabulary(self):
        refined = RefinedQuery(
            keywords=frozenset({4, 2}), k=5, delta_doc=1, rank=4, penalty=0.25
        )
        assert "2, 4" in refined.describe()


class TestCountersAndAnswer:
    def test_counters_merge(self):
        a = SearchCounters(candidates_enumerated=3, aborted_early=1)
        b = SearchCounters(candidates_enumerated=2, pruned_by_cache=5)
        a.merge(b)
        assert a.candidates_enumerated == 5
        assert a.pruned_by_cache == 5
        assert a.aborted_early == 1

    def test_answer_basic_flag(self):
        refined = RefinedQuery(
            keywords=frozenset({1}), k=9, delta_doc=0, rank=9, penalty=0.5
        )
        answer = WhyNotAnswer(
            refined=refined,
            initial_rank=9,
            algorithm="X",
            elapsed_seconds=0.1,
            io=IOSnapshot(0, 0, 0, 0),
        )
        assert answer.is_basic_refinement
