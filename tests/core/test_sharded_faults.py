"""Per-shard failure containment: faults in one shard degrade only
that shard, answers stay exact (served by the scan fallback), and
recovery clears the quarantine.

The schedule here is deliberately brutal (30% bit-rot, 20% lost
records) so the targeted shard *will* fail; the assertions are that
the blast radius stays inside it and that every degraded answer is
still bit-identical to the fault-free baseline.
"""

from __future__ import annotations

import pytest

from repro import WhyNotEngine
from repro.storage.faults import FaultInjector, FaultSchedule

BRUTAL = FaultSchedule(bit_rot_rate=0.3, lost_record_rate=0.2)


@pytest.fixture()
def engines(euro_small):
    dataset, _ = euro_small
    baseline = WhyNotEngine(dataset)
    chaotic = WhyNotEngine(
        dataset,
        faults=FaultInjector(BRUTAL, seed=11),
        shards=4,
        fault_shards=(0,),
    )
    yield baseline, chaotic
    chaotic.close()


class TestFaultContainment:
    def test_faults_stay_in_targeted_shard(self, engines, euro_cases):
        baseline, chaotic = engines
        saw_degraded = False
        for case in euro_cases:
            for method in ("advanced", "kcr"):
                base = baseline.answer(case, method=method)
                answer = chaotic.answer(case, method=method)
                assert answer.refined == base.refined
                assert answer.initial_rank == base.initial_rank
                saw_degraded = saw_degraded or answer.degraded
        assert saw_degraded, "brutal schedule never tripped — dead test"
        quarantined = chaotic.quarantined
        assert quarantined, "no shard quarantined under 30% bit rot"
        for key in quarantined:
            assert key.startswith("shard-0:"), f"fault escaped to {key}"

    def test_degraded_answers_flag_events(self, engines, euro_cases):
        _, chaotic = engines
        answer = chaotic.answer(euro_cases[0], method="advanced")
        if answer.degraded:
            assert answer.fault_events
            for event in answer.fault_events:
                assert event.tree.startswith("shard-0:")

    def test_top_k_served_while_degraded(self, engines, euro_cases):
        baseline, chaotic = engines
        chaotic.answer(euro_cases[0], method="advanced")  # trip the faults
        for case in euro_cases:
            query = case.query
            outcome = chaotic.run_top_k(query)
            assert outcome.results == baseline.top_k(query)

    def test_recover_clears_quarantine(self, engines, euro_cases):
        baseline, chaotic = engines
        for case in euro_cases[:3]:
            chaotic.answer(case, method="advanced")
        if not chaotic.quarantined:
            pytest.skip("schedule did not trip on this workload slice")
        cleared = chaotic.recover()
        assert cleared
        assert not chaotic.quarantined
        # Post-recovery answers remain exact (the rebuilt shard may
        # re-fault under its fresh fork — containment, not absence,
        # is the contract).
        base = baseline.answer(euro_cases[0], method="kcr")
        answer = chaotic.answer(euro_cases[0], method="kcr")
        assert answer.refined == base.refined
        for key in chaotic.quarantined:
            assert key.startswith("shard-0:")

    def test_health_reports_quarantined_shards(self, engines, euro_cases):
        _, chaotic = engines
        chaotic.answer(euro_cases[0], method="advanced")
        health = chaotic.health()
        for key in health["quarantined"]:
            assert key.startswith("shard-0:")

    def test_untargeted_engine_can_fault_any_shard(self, euro_small):
        """Without ``fault_shards`` every shard forks the injector —
        the targeted run's containment is policy, not coincidence."""
        dataset, _ = euro_small
        chaotic = WhyNotEngine(
            dataset,
            faults=FaultInjector(BRUTAL, seed=11),
            shards=4,
        )
        index = chaotic.sharded_index
        forked = [s.tid for s in index.shards if s._tree_faults("setr") is not None]
        assert forked == [s.tid for s in index.shards]
        chaotic.close()
