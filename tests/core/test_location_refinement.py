"""Tests for the location-refinement extension."""

import pytest

from repro import (
    InvalidParameterError,
    LocationRefinementAlgorithm,
)


class TestValidation:
    def test_positive_fractions_required(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            LocationRefinementAlgorithm(euro_engine.setr_tree, n_fractions=0)


class TestLocationRefinement:
    def test_never_worse_than_basic(self, euro_engine, euro_cases):
        for question in euro_cases[:3]:
            answer = euro_engine.answer(question, method="location")
            assert answer.refined.penalty <= question.lam + 1e-12

    def test_keywords_and_k_semantics(self, euro_engine, euro_cases):
        question = euro_cases[0]
        answer = euro_engine.answer(question, method="location")
        assert answer.refined.keywords == question.query.doc
        assert answer.refined.delta_doc == 0

    def test_refined_location_revives(self, euro_engine, euro_oracle, euro_cases):
        for question in euro_cases[:4]:
            answer = euro_engine.answer(question, method="location")
            loc = getattr(answer, "refined_loc", None)
            if loc is None:
                # basic refinement won: k was enlarged to R(M,q)
                assert answer.refined.k == answer.initial_rank
                continue
            moved = type(question.query)(
                loc=loc,
                doc=question.query.doc,
                k=answer.refined.k,
                alpha=question.query.alpha,
            )
            rank = euro_oracle.rank_of_set(question.missing, moved)
            assert rank <= answer.refined.k

    def test_moving_all_the_way_revives_cheaply_when_textual_match(
        self, euro_engine, euro_oracle, euro_cases
    ):
        """Moving the query onto the missing object maximises its
        spatial score, so the location axis must find *some* penalty
        below 1 whenever lam < 1."""
        question = euro_cases[1]
        answer = euro_engine.answer(question, method="location")
        assert answer.refined.penalty < 1.0

    def test_counters_populated(self, euro_engine, euro_cases):
        answer = euro_engine.answer(euro_cases[2], method="location")
        assert answer.counters.candidates_enumerated > 0
