"""Unit tests for the Eqn 7 particularity weights."""

import math

import pytest

from repro import Dataset, ParticularityIndex, SpatialObject


def _dataset():
    # term 1 is very common (9/10 objects), term 7 is rare (1/10).
    objects = []
    for i in range(10):
        doc = {1} if i < 9 else {7}
        if i == 0:
            doc = {1, 7, 3}
        objects.append(SpatialObject(oid=i, loc=(i / 10.0, 0.0), doc=frozenset(doc)))
    return Dataset(objects)


class TestIdf:
    def test_rare_term_heavier_than_common(self):
        ds = _dataset()
        index = ParticularityIndex(ds, [ds.get(0)])
        assert index.idf(7) > index.idf(1)

    def test_formula(self):
        ds = _dataset()
        index = ParticularityIndex(ds, [ds.get(0)])
        n, n_t = len(ds), ds.frequency(3)
        assert index.idf(3) == pytest.approx(
            math.log((n - n_t + 0.5) / (n_t + 0.5))
        )

    def test_overly_common_term_clamped_to_zero(self):
        ds = _dataset()
        index = ParticularityIndex(ds, [ds.get(0)])
        # term 1 in 10/10... actually 10 of 10 objects: log < 0 -> clamp
        assert index.idf(1) == 0.0


class TestSignedParti:
    def test_sign_depends_on_membership(self):
        ds = _dataset()
        m = ds.get(0)  # contains 1, 7, 3
        index = ParticularityIndex(ds, [m])
        assert index.parti(m, 7) > 0
        other = ds.get(1)  # does not contain 7
        assert index.parti(other, 7) < 0
        assert index.parti(other, 7) == -index.parti(m, 7)

    def test_multi_missing_is_additive(self):
        ds = _dataset()
        m1, m2 = ds.get(0), ds.get(9)  # both contain 7
        index = ParticularityIndex(ds, [m1, m2])
        single = ParticularityIndex(ds, [m1])
        assert index.parti_missing(7) == pytest.approx(2 * single.parti_missing(7))

    def test_empty_missing_rejected(self):
        with pytest.raises(ValueError):
            ParticularityIndex(_dataset(), [])


class TestEditGain:
    def test_adding_particular_keyword_positive(self):
        ds = _dataset()
        m = ds.get(0)
        index = ParticularityIndex(ds, [m])
        assert index.edit_gain({7}, set()) > 0

    def test_removing_foreign_keyword_positive(self):
        ds = _dataset()
        m = ds.get(9)  # doc {7}; term 3 is foreign to it
        index = ParticularityIndex(ds, [m])
        assert index.edit_gain(set(), {3}) > 0

    def test_removing_particular_keyword_negative(self):
        ds = _dataset()
        m = ds.get(0)
        index = ParticularityIndex(ds, [m])
        assert index.edit_gain(set(), {7}) < 0

    def test_gain_is_additive(self):
        ds = _dataset()
        m = ds.get(0)
        index = ParticularityIndex(ds, [m])
        combined = index.edit_gain({7}, {3})
        assert combined == pytest.approx(
            index.edit_gain({7}, set()) + index.edit_gain(set(), {3})
        )
