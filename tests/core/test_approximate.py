"""Integration tests for the sampling-based approximate algorithm."""

import pytest

from repro import (
    ApproximateAlgorithm,
    InvalidParameterError,
    WhyNotQuestion,
)


class TestValidation:
    def test_sample_size_positive(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ApproximateAlgorithm(euro_engine.kcr_tree, 0)

    def test_unknown_strategy(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ApproximateAlgorithm(euro_engine.kcr_tree, 10, strategy="magic")

    def test_tree_type_enforced(self, euro_engine):
        with pytest.raises(InvalidParameterError):
            ApproximateAlgorithm(euro_engine.setr_tree, 10, strategy="kcr")
        with pytest.raises(InvalidParameterError):
            ApproximateAlgorithm(euro_engine.kcr_tree, 10, strategy="bs")


class TestQuality:
    @pytest.mark.parametrize("strategy", ["bs", "advanced", "kcr"])
    def test_never_worse_than_basic_refinement(
        self, euro_engine, euro_cases, strategy
    ):
        question = euro_cases[0]
        answer = euro_engine.answer(
            question, method="approximate", sample_size=5, strategy=strategy
        )
        assert answer.refined.penalty <= question.lam + 1e-12

    def test_penalty_never_below_exact(self, euro_engine, euro_cases):
        for question in euro_cases[:3]:
            exact = euro_engine.answer(question, method="kcr")
            approx = euro_engine.answer(
                question, method="approximate", sample_size=10, strategy="kcr"
            )
            assert approx.refined.penalty >= exact.refined.penalty - 1e-12

    def test_full_sample_matches_exact(self, euro_engine, euro_cases):
        """A sample covering the whole space must return the optimum."""
        question = euro_cases[0]
        exact = euro_engine.answer(question, method="kcr")
        approx = euro_engine.answer(
            question, method="approximate", sample_size=100_000, strategy="kcr"
        )
        assert approx.refined.penalty == pytest.approx(exact.refined.penalty)

    def test_same_sample_same_penalty_across_strategies(
        self, euro_engine, euro_cases
    ):
        """Fig 12: all strategies evaluate the same sample, so the
        returned penalties agree; only runtimes differ."""
        question = euro_cases[1]
        penalties = {
            strategy: euro_engine.answer(
                question,
                method="approximate",
                sample_size=20,
                strategy=strategy,
            ).refined.penalty
            for strategy in ("bs", "advanced", "kcr")
        }
        values = list(penalties.values())
        assert all(abs(v - values[0]) < 1e-9 for v in values), penalties

    def test_larger_sample_never_hurts(self, euro_engine, euro_cases):
        question = euro_cases[2]
        small = euro_engine.answer(
            question, method="approximate", sample_size=3, strategy="kcr"
        )
        large = euro_engine.answer(
            question, method="approximate", sample_size=50, strategy="kcr"
        )
        assert large.refined.penalty <= small.refined.penalty + 1e-12

    def test_revives_missing_objects(self, euro_engine, euro_cases):
        question = euro_cases[0]
        answer = euro_engine.answer(
            question, method="approximate", sample_size=10, strategy="advanced"
        )
        refined = answer.refined.as_query(question.query)
        result_ids = {oid for _, oid in euro_engine.top_k(refined)}
        assert all(m in result_ids for m in question.missing)

    def test_algorithm_name(self, euro_engine):
        algo = ApproximateAlgorithm(euro_engine.kcr_tree, 50, strategy="kcr")
        assert algo.name == "Approx-KCR(T=50)"
