"""Tests for reverse keyword search (the [22]-style companion API)."""

import itertools

import pytest

from repro import (
    InvalidParameterError,
    Oracle,
    ReverseKeywordSearch,
    SpatialKeywordQuery,
)


@pytest.fixture(scope="module")
def searcher(euro_engine):
    return ReverseKeywordSearch(euro_engine.setr_tree)


class TestValidation:
    def test_empty_pool_rejected(self, searcher, euro_small):
        dataset, _ = euro_small
        target = dataset.objects[0]
        with pytest.raises(InvalidParameterError):
            searcher.search(target.oid, target.loc, 5, pool=())

    def test_bad_max_size(self, searcher, euro_small):
        dataset, _ = euro_small
        target = dataset.objects[0]
        with pytest.raises(InvalidParameterError):
            searcher.search(target.oid, target.loc, 5, max_size=0)


class TestCorrectness:
    def test_matches_agree_with_oracle(self, searcher, euro_small, euro_oracle):
        dataset, _ = euro_small
        target = dataset.objects[25]
        k = 10
        report = searcher.search(target.oid, target.loc, k, max_size=3)
        for match in report.matches:
            query = SpatialKeywordQuery(loc=target.loc, doc=match.keywords, k=k)
            assert euro_oracle.rank(target.oid, query) == match.rank
            assert match.rank <= k

    def test_exhaustive_against_oracle(self, searcher, euro_small, euro_oracle):
        """Every subset the oracle says qualifies must be returned and
        vice versa (checked on a small pool)."""
        dataset, _ = euro_small
        target = dataset.objects[42]
        pool = sorted(target.doc)[:3]
        if not pool:
            pytest.skip("target has no keywords")
        k = 15
        report = searcher.search(target.oid, target.loc, k, pool=pool)
        returned = {m.keywords for m in report.matches}
        expected = set()
        for size in range(1, len(pool) + 1):
            for subset in itertools.combinations(pool, size):
                query = SpatialKeywordQuery(
                    loc=target.loc, doc=frozenset(subset), k=k
                )
                if euro_oracle.rank(target.oid, query) <= k:
                    expected.add(frozenset(subset))
        assert returned == expected

    def test_own_location_full_doc_usually_qualifies(
        self, searcher, euro_small, euro_oracle
    ):
        """Querying from the target's own location with its full
        document maximises both score components; with a generous k it
        must qualify."""
        dataset, _ = euro_small
        target = dataset.objects[7]
        k = 50
        report = searcher.search(target.oid, target.loc, k)
        assert report.matches, "no keyword set ranks the target in a top-50"
        best = report.best()
        assert best is not None
        assert best.rank <= k

    def test_sorted_best_first(self, searcher, euro_small):
        dataset, _ = euro_small
        target = dataset.objects[55]
        report = searcher.search(target.oid, target.loc, 20, max_size=3)
        ranks = [m.rank for m in report.matches]
        assert ranks == sorted(ranks)

    def test_counters(self, searcher, euro_small):
        dataset, _ = euro_small
        target = dataset.objects[90]
        pool = sorted(target.doc)[:3]
        report = searcher.search(target.oid, target.loc, 5, pool=pool)
        assert report.candidates_examined == 2 ** len(pool) - 1
        assert report.aborted_early + len(report.matches) <= report.candidates_examined

    def test_best_prefers_small_sets_on_rank_ties(self, searcher, euro_small):
        dataset, _ = euro_small
        target = dataset.objects[11]
        report = searcher.search(target.oid, target.loc, 30)
        best = report.best()
        if best is None:
            pytest.skip("nothing qualifies")
        for match in report.matches:
            if match.rank == best.rank:
                assert len(best.keywords) <= len(match.keywords)
