"""Unit tests for the Opt3 dominator cache."""

import pytest

from repro import Dataset, Scorer, SpatialKeywordQuery, SpatialObject
from repro.core.dominator_cache import DominatorCache
from repro.model.similarity import JACCARD


def _setup():
    objects = [
        SpatialObject(oid=0, loc=(0.5, 0.0), doc=frozenset({1, 2, 3})),  # missing
        SpatialObject(oid=1, loc=(0.1, 0.0), doc=frozenset({1, 3})),
        SpatialObject(oid=2, loc=(0.6, 0.0), doc=frozenset({1, 2})),
        SpatialObject(oid=3, loc=(0.8, 0.0), doc=frozenset({1})),
        SpatialObject(oid=4, loc=(0.3, 0.0), doc=frozenset({2, 3})),
    ]
    dataset = Dataset(objects, diagonal=1.0)
    query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1, 2}), k=1)
    missing = [dataset.get(0)]
    cache = DominatorCache(dataset, query, missing, JACCARD)
    return dataset, query, missing, cache


class TestCacheAccumulation:
    def test_add_deduplicates(self):
        _, _, _, cache = _setup()
        cache.add([1, 2])
        cache.add([2, 3])
        assert len(cache) == 3

    def test_empty_cache_counts_zero(self):
        _, _, _, cache = _setup()
        assert cache.count_dominating(frozenset({1, 2}), limit=10) == 0


class TestCounting:
    def test_count_matches_scorer(self):
        dataset, query, missing, cache = _setup()
        cache.add([1, 2, 3, 4])
        scorer = Scorer(dataset)
        for keywords in (frozenset({1, 2}), frozenset({2, 3}), frozenset({1})):
            threshold = scorer.st_with_keywords(missing[0], query, keywords)
            expected = sum(
                1
                for oid in (1, 2, 3, 4)
                if scorer.st_with_keywords(dataset.get(oid), query, keywords)
                > threshold
            )
            assert cache.count_dominating(keywords, limit=100) == expected

    def test_limit_short_circuits(self):
        dataset, query, missing, cache = _setup()
        cache.add([1, 2, 3, 4])
        keywords = frozenset({1, 2})
        full = cache.count_dominating(keywords, limit=100)
        if full >= 1:
            assert cache.count_dominating(keywords, limit=1) == 1

    def test_multi_missing_uses_worst(self):
        dataset, query, _, _ = _setup()
        missing = [dataset.get(0), dataset.get(4)]
        cache = DominatorCache(dataset, query, missing, JACCARD)
        cache.add([1, 2, 3])
        scorer = Scorer(dataset)
        keywords = frozenset({1, 2})
        threshold = min(
            scorer.st_with_keywords(m, query, keywords) for m in missing
        )
        expected = sum(
            1
            for oid in (1, 2, 3)
            if scorer.st_with_keywords(dataset.get(oid), query, keywords) > threshold
        )
        assert cache.count_dominating(keywords, limit=100) == expected
