"""Unit tests for candidate keyword-set enumeration."""

import itertools

import pytest

from repro import (
    CandidateEnumerator,
    Dataset,
    ParticularityIndex,
    SpatialObject,
)


def _enumerator(doc0={1, 2}, missing_doc={2, 3, 4}, with_parti=False):
    particularity = None
    if with_parti:
        objects = [
            SpatialObject(oid=0, loc=(0.0, 0.0), doc=frozenset(missing_doc)),
            SpatialObject(oid=1, loc=(0.1, 0.0), doc=frozenset({2})),
            SpatialObject(oid=2, loc=(0.2, 0.0), doc=frozenset({2, 9})),
            SpatialObject(oid=3, loc=(0.3, 0.0), doc=frozenset({9})),
        ]
        dataset = Dataset(objects)
        particularity = ParticularityIndex(dataset, [dataset.get(0)])
    return CandidateEnumerator(
        frozenset(doc0), frozenset(missing_doc), particularity=particularity
    )


class TestSpace:
    def test_addable_removable(self):
        e = _enumerator()
        assert e.addable == (3, 4)  # missing_doc - doc0
        assert e.removable == (1, 2)
        assert e.edit_universe == 4
        assert e.universe_size == 4  # |{1,2} ∪ {2,3,4}|

    def test_total_candidates_counts_exclusions(self):
        # identity and the delete-all/add-nothing (empty set) excluded
        e = _enumerator()
        assert e.total_candidates() == 2**4 - 2
        e2 = _enumerator(doc0={1, 2}, missing_doc={1, 2})
        assert e2.addable == ()
        assert e2.total_candidates() == 2**2 - 2

    def test_naive_enumeration_complete_and_distinct(self):
        e = _enumerator()
        candidates = list(e.iter_naive())
        assert len(candidates) == e.total_candidates()
        keys = {(c.added, c.removed) for c in candidates}
        assert len(keys) == len(candidates)

    def test_no_empty_and_no_identity(self):
        e = _enumerator(doc0={1}, missing_doc={1})
        for candidate in e.iter_naive():
            assert candidate.keywords
            assert candidate.delta_doc > 0

    def test_keywords_are_consistent_with_edits(self):
        e = _enumerator()
        for candidate in e.iter_naive():
            expected = (frozenset({1, 2}) - candidate.removed) | candidate.added
            assert candidate.keywords == expected
            assert candidate.added <= frozenset({3, 4})
            assert candidate.removed <= frozenset({1, 2})


class TestPaperOrder:
    def test_distance_non_decreasing(self):
        e = _enumerator(with_parti=True)
        distances = [c.delta_doc for c in e.iter_paper_order()]
        assert distances == sorted(distances)

    def test_ties_sorted_by_gain_descending(self):
        e = _enumerator(with_parti=True)
        for distance in (1, 2):
            gains = [c.gain for c in e.at_distance(distance)]
            assert gains == sorted(gains, reverse=True)

    def test_at_distance_partition(self):
        e = _enumerator()
        total = sum(len(e.at_distance(d)) for d in range(1, e.edit_universe + 1))
        assert total == e.total_candidates()

    def test_paper_order_covers_space(self):
        e = _enumerator(with_parti=True)
        paper = {c.keywords for c in e.iter_paper_order()}
        naive = {c.keywords for c in e.iter_naive()}
        assert paper == naive


class TestTopByGain:
    def test_requires_particularity(self):
        with pytest.raises(ValueError):
            _enumerator().top_by_gain(5)

    def test_sample_size_positive(self):
        with pytest.raises(ValueError):
            _enumerator(with_parti=True).top_by_gain(0)

    def test_returns_requested_count(self):
        e = _enumerator(with_parti=True)
        sample = e.top_by_gain(5)
        assert len(sample) == 5
        assert len({c.keywords for c in sample}) == 5

    def test_matches_exhaustive_top_t(self):
        """The lattice walk must return exactly the T highest-gain
        candidates that full enumeration would."""
        e = _enumerator(with_parti=True)
        exhaustive = sorted(
            (c for c in e.iter_paper_order()), key=lambda c: -c.gain
        )
        for t in (1, 3, 7, e.total_candidates()):
            sample = e.top_by_gain(t)
            got = sorted(round(c.gain, 9) for c in sample)
            want = sorted(round(c.gain, 9) for c in exhaustive[:t])
            assert got == want

    def test_oversized_sample_returns_all(self):
        e = _enumerator(with_parti=True)
        sample = e.top_by_gain(10_000)
        assert len(sample) == e.total_candidates()

    def test_scales_without_full_enumeration(self):
        """A 2^30 space must still sample quickly."""
        doc0 = frozenset(range(100, 110))
        missing = frozenset(range(200, 220))
        objects = [
            SpatialObject(oid=0, loc=(0.0, 0.0), doc=missing),
            SpatialObject(oid=1, loc=(0.5, 0.5), doc=frozenset({100})),
        ]
        dataset = Dataset(objects)
        particularity = ParticularityIndex(dataset, [dataset.get(0)])
        e = CandidateEnumerator(doc0, missing, particularity=particularity)
        assert e.edit_universe == 30
        sample = e.top_by_gain(500)
        assert len(sample) == 500


class _UlpNoisyParticularity:
    """Stub whose gains differ only below the quantization grid —
    modelling the scalar and vectorized gain paths producing ulp-close
    float sums for the same edit script."""

    def __init__(self, noise=0.0):
        self.noise = noise

    def parti_missing(self, term):
        return 0.5 + self.noise

    def edit_gain(self, added, removed):
        return 0.5 + self.noise


class TestQuantizedOrdering:
    """Regression: candidate ordering routes float gain comparisons
    through ``repro.model.numeric.quantize`` so gains that differ only
    in their low bits cannot flip the enumeration order between runs
    (or between the scalar and vectorized gain paths)."""

    DOC0 = frozenset({1, 2})
    MISSING = frozenset({3, 4})

    def _orders(self, noise):
        enum = CandidateEnumerator(
            self.DOC0, self.MISSING, particularity=_UlpNoisyParticularity(noise)
        )
        return [c.keywords for c in enum.at_distance(2)]

    def test_at_distance_order_stable_under_ulp_noise(self):
        base = self._orders(0.0)
        for noise in (1e-13, -1e-13, 3e-14):
            assert self._orders(noise) == base

    def test_equal_gains_order_by_keywords(self):
        order = self._orders(0.0)
        # all gains tie after quantization, so the order is exactly the
        # deterministic keyword tie-break
        assert order == sorted(order, key=sorted)

    def test_top_by_gain_stable_under_ulp_noise(self):
        def sample(noise):
            enum = CandidateEnumerator(
                self.DOC0,
                self.MISSING,
                particularity=_UlpNoisyParticularity(noise),
            )
            return [c.keywords for c in enum.top_by_gain(6)]

        base = sample(0.0)
        for noise in (1e-13, -1e-13, 3e-14):
            assert sample(noise) == base
