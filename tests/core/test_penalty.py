"""Unit tests for the penalty model (Eqn 4, Lemma 1, Eqn 6)."""

import pytest

from repro import InvalidParameterError, PenaltyModel


def _model(k0=10, initial_rank=51, universe=10, lam=0.5):
    return PenaltyModel(
        k0=k0, initial_rank=initial_rank, doc_universe_size=universe, lam=lam
    )


class TestValidation:
    def test_k0_positive(self):
        with pytest.raises(InvalidParameterError):
            _model(k0=0)

    def test_rank_must_exceed_k0(self):
        with pytest.raises(InvalidParameterError):
            _model(k0=10, initial_rank=10)

    def test_universe_positive(self):
        with pytest.raises(InvalidParameterError):
            _model(universe=0)

    def test_lambda_range(self):
        with pytest.raises(InvalidParameterError):
            _model(lam=1.5)


class TestPenaltyArithmetic:
    def test_basic_refined_penalty_is_lambda(self):
        for lam in (0.0, 0.3, 0.5, 1.0):
            model = _model(lam=lam)
            assert model.penalty(0, model.initial_rank) == pytest.approx(lam)
            assert model.basic_penalty == lam

    def test_rank_at_or_below_k0_costs_nothing(self):
        model = _model()
        assert model.k_penalty(10) == 0.0
        assert model.k_penalty(3) == 0.0
        assert model.penalty(2, 5) == pytest.approx(model.keyword_penalty(2))

    def test_keyword_penalty_normalised(self):
        model = _model(universe=8, lam=0.25)
        assert model.keyword_penalty(2) == pytest.approx(0.75 * 2 / 8)

    def test_penalty_monotone_in_rank(self):
        model = _model()
        penalties = [model.penalty(1, rank) for rank in range(5, 60)]
        assert all(a <= b + 1e-12 for a, b in zip(penalties, penalties[1:]))

    def test_penalty_monotone_in_delta_doc(self):
        model = _model()
        penalties = [model.penalty(d, 20) for d in range(0, 8)]
        assert all(a < b for a, b in zip(penalties, penalties[1:]))

    def test_negative_delta_doc_rejected(self):
        with pytest.raises(InvalidParameterError):
            _model().keyword_penalty(-1)

    def test_refined_k_lemma1(self):
        model = _model(k0=10)
        assert model.refined_k(51) == 51  # rank above k0: enlarge
        assert model.refined_k(4) == 10  # rank below k0: keep k0

    def test_paper_table1_q1(self):
        """q1 keeps keywords and enlarges k: Δk=2, R(m,q)-k0=2 -> 0.5."""
        model = PenaltyModel(k0=1, initial_rank=3, doc_universe_size=3, lam=0.5)
        assert model.penalty(0, 3) == pytest.approx(0.5)

    def test_paper_table1_q4(self):
        """q4 = (2, {t1,t2,t3}): Δk=1/2 margin, Δdoc=1/3 -> 0.41667."""
        model = PenaltyModel(k0=1, initial_rank=3, doc_universe_size=3, lam=0.5)
        assert model.penalty(1, 2) == pytest.approx(5 / 12)


class TestMaxUsefulRank:
    """Eqn 6's strict-improvement invariant:
    penalty(Δdoc, R) < p_c  iff  R <= bound."""

    @pytest.mark.parametrize("lam", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("delta_doc", [0, 1, 3])
    @pytest.mark.parametrize("p_c", [0.12, 0.37, 0.5, 0.9])
    def test_boundary_exact(self, lam, delta_doc, p_c):
        model = _model(lam=lam)
        bound = model.max_useful_rank(p_c, delta_doc)
        if bound is None:
            assert model.keyword_penalty(delta_doc) >= p_c
            return
        assert model.penalty(delta_doc, bound) < p_c
        assert model.penalty(delta_doc, bound + 1) >= p_c

    def test_example4_from_paper(self):
        """Paper Example 4: k0=5, R(m,q)=10, λ=0.5, p_c=0.5,
        Δdoc-fraction 0.4.  Eqn 6 with the paper's non-strict
        comparison gives R_L = 8; at rank 8 the penalty *equals* p_c
        (0.3 + 0.2), which cannot strictly improve, so our bound is 7
        — one tighter, same pruning semantics."""
        model = PenaltyModel(k0=5, initial_rank=10, doc_universe_size=5, lam=0.5)
        # Δdoc/|universe| = 0.4 -> Δdoc = 2 with universe 5
        bound = model.max_useful_rank(0.5, 2)
        assert bound == 7
        assert model.penalty(2, 8) == pytest.approx(0.5)  # the paper's R_L ties p_c

    def test_hopeless_keyword_penalty_returns_none(self):
        model = _model(lam=0.1, universe=4)
        # keyword penalty of Δdoc=4 is 0.9 * 4/4 = 0.9 >= p_c
        assert model.max_useful_rank(0.5, 4) is None

    def test_lambda_zero_rank_unbounded(self):
        model = _model(lam=0.0)
        bound = model.max_useful_rank(0.4, 1)
        assert bound is not None and bound > 10**9

    def test_bound_never_below_k0_when_improvable(self):
        model = _model(k0=10, lam=0.9)
        bound = model.max_useful_rank(0.901, 0)
        assert bound is not None and bound >= 10
