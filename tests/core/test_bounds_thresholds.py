"""Focused tests for the Theorem-2 threshold pair in realistic settings."""

import pytest

from repro.core.bounds import DominationThresholds, NodeTextStats, max_dom, min_dom
from repro.model.geometry import Rect


class TestThresholdSemantics:
    def test_node_at_query_location(self):
        """A node containing the query point has MinDist 0; the lower
        threshold then reduces to TSim(m,S) - ratio*SDist(m)."""
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        t = DominationThresholds(rect, (0.5, 0.5), 2.0**0.5, 0.5, 0.3, 0.4)
        assert t.lower == pytest.approx(1.0 * (0.0 - 0.3) + 0.4)

    def test_far_node_high_lower_threshold(self):
        """A node much farther than the missing object needs a large
        textual edge to dominate — lower threshold above TSim(m, S)."""
        rect = Rect(0.9, 0.9, 1.0, 1.0)
        t = DominationThresholds(rect, (0.0, 0.0), 2.0**0.5, 0.5, 0.1, 0.4)
        assert t.lower > 0.4

    def test_near_node_negative_lower_threshold(self):
        """A node much closer than the missing object dominates even
        with zero textual similarity: lower threshold < 0."""
        rect = Rect(0.0, 0.0, 0.05, 0.05)
        t = DominationThresholds(rect, (0.0, 0.0), 2.0**0.5, 0.5, 0.9, 0.1)
        assert t.lower < 0.0

    def test_distance_clamping(self):
        """Distances normalise against the diagonal and clamp at 1 so
        out-of-extent geometry cannot push thresholds past the model."""
        rect = Rect(10.0, 10.0, 11.0, 11.0)  # far outside the unit space
        t = DominationThresholds(rect, (0.0, 0.0), 2.0**0.5, 0.5, 0.2, 0.3)
        # min_d = max_d = 1.0 after clamping
        assert t.lower == pytest.approx(1.0 * (1.0 - 0.2) + 0.3)
        assert t.upper == pytest.approx(t.lower)


class TestBoundsAtThresholdBoundaries:
    def test_whole_pipeline_near_node(self):
        """near node + weak missing object: everything dominates."""
        stats = NodeTextStats(5, {1: 5, 2: 3})
        assert max_dom(stats, frozenset({1}), -0.2) == 5
        assert min_dom(stats, frozenset({1}), -0.2) == 5

    def test_whole_pipeline_far_node(self):
        """far node + strong missing object: nothing can dominate."""
        stats = NodeTextStats(5, {1: 5, 2: 3})
        assert max_dom(stats, frozenset({1}), 1.2) == 0
        assert min_dom(stats, frozenset({1}), 1.2) == 0

    def test_interior_monotone_in_threshold(self):
        """MaxDom is non-increasing and MinDom non-increasing in the
        threshold: a harder bar can only shrink both counts."""
        stats = NodeTextStats(8, {1: 8, 2: 3, 3: 7, 4: 2, 5: 1})
        keywords = frozenset({3, 4})
        thresholds = [0.05, 0.15, 0.3, 0.5, 0.7, 0.9]
        maxes = [max_dom(stats, keywords, t) for t in thresholds]
        mins = [min_dom(stats, keywords, t) for t in thresholds]
        assert maxes == sorted(maxes, reverse=True)
        assert mins == sorted(mins, reverse=True)
