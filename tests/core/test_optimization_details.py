"""Behavioural tests for the Section IV-C optimizations' telemetry."""

import pytest


class TestOpt3CacheFires:
    def test_cache_prunes_on_realistic_workload(self, euro_engine, euro_cases):
        """Across a handful of questions the dominator cache must prune
        at least one candidate without touching the index — the effect
        Fig 11 credits it for."""
        pruned = 0
        for question in euro_cases:
            answer = euro_engine.answer(question, method="advanced")
            pruned += answer.counters.pruned_by_cache
        assert pruned > 0

    def test_filtering_reduces_index_work(self, euro_engine, euro_cases):
        """With the cache on, fewer candidates reach the index."""
        evaluated_with = 0
        evaluated_without = 0
        for question in euro_cases[:4]:
            with_cache = euro_engine.answer(question, method="advanced")
            without_cache = euro_engine.answer(
                question, method="advanced", filtering=False
            )
            evaluated_with += with_cache.counters.candidates_evaluated
            evaluated_without += without_cache.counters.candidates_evaluated
        assert evaluated_with <= evaluated_without


class TestOpt2TerminatesEnumeration:
    def test_ordered_enumeration_stops_early(self, euro_engine, euro_cases):
        """Under the paper order, the keyword-penalty cut-off must fire
        before the full space is enumerated on typical questions."""
        stopped_early = 0
        for question in euro_cases:
            answer = euro_engine.answer(
                question, method="advanced", filtering=False
            )
            from repro.core.context import QuestionContext

            context = QuestionContext.prepare(
                question, euro_engine.setr_tree, euro_engine.model
            )
            total = context.enumerator.total_candidates()
            if answer.counters.candidates_enumerated < total:
                stopped_early += 1
        assert stopped_early > 0


class TestKcRPruning:
    def test_bound_pruning_fires(self, euro_engine, euro_cases):
        pruned = 0
        for question in euro_cases:
            answer = euro_engine.answer(question, method="kcr")
            pruned += answer.counters.pruned_by_bounds
        assert pruned > 0

    def test_kcr_reads_fewer_pages_than_bs(self, euro_engine, euro_cases):
        """The paper's headline I/O claim on our shared workload."""
        kcr_io = 0
        bs_io = 0
        for question in euro_cases[:3]:
            euro_engine.reset_buffers()
            kcr_io += euro_engine.answer(question, method="kcr").io.page_reads
            euro_engine.reset_buffers()
            bs_io += euro_engine.answer(question, method="basic").io.page_reads
        assert kcr_io < bs_io
