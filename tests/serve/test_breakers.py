"""Circuit-breaker state machine and board/engine interplay."""

import pytest

from repro import TransientIOError
from repro.errors import InvalidParameterError
from repro.serve import BreakerBoard, CircuitBreaker
from repro.serve.breakers import CLOSED, HALF_OPEN, OPEN


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker("u", base_cooldown=0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker("u", base_cooldown=8, max_cooldown=4)

    def test_trip_tick_close_walk(self):
        breaker = CircuitBreaker("u", base_cooldown=2, max_cooldown=8)
        assert breaker.state == CLOSED
        breaker.trip()
        assert breaker.state == OPEN
        assert breaker.remaining == 2
        assert not breaker.tick()  # 1 left
        assert breaker.tick()  # half-opens
        assert breaker.state == HALF_OPEN
        breaker.close()
        assert breaker.state == CLOSED
        assert breaker.cooldown == 2
        assert breaker.recoveries == 1

    def test_trip_while_open_is_noop(self):
        breaker = CircuitBreaker("u", base_cooldown=3, max_cooldown=8)
        breaker.trip()
        breaker.tick()
        breaker.trip()
        assert breaker.remaining == 2  # countdown not restarted
        assert breaker.trips == 1

    def test_failed_probe_doubles_cooldown_capped(self):
        breaker = CircuitBreaker("u", base_cooldown=3, max_cooldown=10)
        cooldowns = []
        for _ in range(4):
            breaker.trip()
            while not breaker.tick():
                pass
            cooldowns.append(breaker.cooldown)
        # First trip is from closed (no escalation); every later trip
        # is a failed half-open probe and doubles, capped at 10.
        assert cooldowns == [3, 6, 10, 10]

    def test_close_forgives_escalation(self):
        breaker = CircuitBreaker("u", base_cooldown=2, max_cooldown=16)
        breaker.trip()
        while not breaker.tick():
            pass
        breaker.trip()  # failed probe: cooldown 4
        while not breaker.tick():
            pass
        breaker.close()
        assert breaker.cooldown == 2

    def test_tick_when_closed_is_noop(self):
        breaker = CircuitBreaker("u")
        assert not breaker.tick()
        assert breaker.state == CLOSED


class TestBreakerBoard:
    def _quarantine(self, engine):
        index = engine.sharded_index
        shard = index.shards[1]
        index.mark_down(
            shard, "setr", "forced-outage", TransientIOError("forced")
        )
        return f"shard-{shard.tid}:setr"

    def test_quarantine_trips_then_probe_recovers(self, faulty_engine):
        board = BreakerBoard(faulty_engine, base_cooldown=3, max_cooldown=8)
        unit = self._quarantine(faulty_engine)
        # The trip round also counts as an observed request (tick).
        assert board.observe() == []
        assert board.snapshot()[unit]["state"] == OPEN
        assert board.snapshot()[unit]["remaining"] == 2

        assert board.observe() == []  # tick: 1 left
        probed = board.observe()  # tick: half-open + probe
        assert probed == [unit]
        assert board.snapshot()[unit]["state"] == HALF_OPEN
        # The probe's recover() cleared the manual quarantine, so the
        # next observation closes the breaker.
        assert unit not in faulty_engine.quarantined
        board.observe()
        assert board.snapshot()[unit]["state"] == CLOSED
        assert board.open_units == []

    def test_snapshot_sorted_and_describing(self, faulty_engine):
        board = BreakerBoard(faulty_engine, base_cooldown=2, max_cooldown=8)
        unit = self._quarantine(faulty_engine)
        board.observe()
        snap = board.snapshot()
        assert list(snap) == sorted(snap)
        assert snap[unit]["trips"] == 1
        assert snap[unit]["cooldown"] == 2
