"""Fixtures for the serving-layer suite.

The sharded engine is module-scoped (index builds dominate the cost);
tests that quarantine shards build their own engine so the shared one
never serves degraded state to an unrelated test.
"""

from __future__ import annotations

import pytest

from repro import WhyNotEngine, make_euro_like
from repro.experiments.workload import WorkloadGenerator


@pytest.fixture(scope="package")
def serve_dataset():
    dataset, _ = make_euro_like(900, seed=13)
    return dataset


@pytest.fixture(scope="package")
def serve_engine(serve_dataset):
    """Shared clean engine; never quarantined by tests."""
    return WhyNotEngine(serve_dataset, shards=4)


@pytest.fixture(scope="package")
def serve_cases(serve_dataset):
    generator = WorkloadGenerator(serve_dataset, seed=11)
    cases = generator.generate(3, k0=5, n_keywords=3, max_extra_keywords=3)
    assert cases, "workload generator produced no cases"
    return cases


@pytest.fixture()
def faulty_engine(serve_dataset):
    """Fresh engine per test for quarantine/recovery walks."""
    return WhyNotEngine(serve_dataset, shards=4)
