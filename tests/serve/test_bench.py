"""Virtual-time serve bench: determinism, overload arithmetic, dialogue."""

from repro.serve.bench import probe_costs, run_dialogue, simulate_load

SERVICE = {"topk": 2.0, "whynot": 9.0}


class TestSimulateLoad:
    def test_same_seed_same_report(self):
        kwargs = dict(n_requests=600, users=40, seed=99, workers=4)
        first = simulate_load(SERVICE, **kwargs)
        second = simulate_load(SERVICE, **kwargs)
        assert first == second

    def test_different_seed_different_latencies(self):
        first = simulate_load(SERVICE, n_requests=600, users=40, seed=1)
        second = simulate_load(SERVICE, n_requests=600, users=40, seed=2)
        assert first["latencies_ms"] != second["latencies_ms"]

    def test_everything_accounted(self):
        report = simulate_load(SERVICE, n_requests=500, users=30, seed=5)
        completed = sum(report["completed"].values())
        shed = sum(report["shed"].values())
        assert completed + shed == 500

    def test_burst_sheds_to_exact_class_limits(self):
        limits = {"topk": 10, "whynot": 5}
        report = simulate_load(
            SERVICE,
            n_requests=200,
            users=20,
            seed=7,
            workers=2,
            limits=limits,
            burst=True,
        )
        # All requests arrive at one instant: per class the queue admits
        # its limit plus what idle workers drain at t=0; everything else
        # sheds.  Retained entries never exceed the configured bound.
        for kind in ("topk", "whynot"):
            assert report["completed"][kind] + report["shed"][kind] > 0
            assert report["shed"][kind] > 0
        admitted = sum(report["completed"].values())
        assert admitted <= sum(limits.values()) + report["workers"]

    def test_steady_light_load_sheds_nothing(self):
        report = simulate_load(
            SERVICE,
            n_requests=300,
            users=50,
            seed=3,
            workers=4,
            load_factor=0.3,
        )
        assert report["shed"] == {"topk": 0, "whynot": 0}

    def test_timeouts_flagged_under_tight_budget(self):
        report = simulate_load(
            SERVICE,
            n_requests=400,
            users=10,
            seed=12,
            workers=1,
            load_factor=3.0,  # saturated: queueing delay dominates
            budget_factor=1.0,  # budget == mean service, no slack
        )
        assert sum(report["timeouts"].values()) > 0


class TestProbeAndDialogue:
    def test_probe_costs_positive(self, serve_engine, serve_cases):
        costs = probe_costs(serve_engine, serve_cases[:2], repetitions=1)
        assert set(costs) == {"topk", "whynot"}
        assert all(value >= 0.0 for value in costs.values())

    def test_dialogue_cache_reuse_beats_fresh(self, serve_engine, serve_cases):
        question = serve_cases[0].question
        reused = run_dialogue(serve_engine, question, rounds=3)
        fresh = run_dialogue(
            serve_engine, question, rounds=3, reuse_cache=False
        )
        assert reused["cache_hits"] >= 2
        assert fresh["cache_hits"] == 0
        assert all(status == "ok" for status in reused["statuses"])
        assert all(status == "ok" for status in fresh["statuses"])
