"""Unit tests for the bounded deterministic admission queue."""

import pytest

from repro.errors import InvalidParameterError
from repro.serve import AdmissionQueue


def _queue(**limits):
    return AdmissionQueue(limits or {"topk": 4, "whynot": 2})


class TestValidation:
    def test_empty_limits_rejected(self):
        with pytest.raises(InvalidParameterError):
            AdmissionQueue({})

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(InvalidParameterError):
            AdmissionQueue({"topk": 0})

    def test_unknown_class_rejected_on_offer_and_depth(self):
        queue = _queue()
        with pytest.raises(InvalidParameterError):
            queue.offer("mystery", "s", object())
        with pytest.raises(InvalidParameterError):
            queue.depth("mystery")


class TestBounds:
    def test_sheds_exactly_beyond_class_limit(self):
        queue = _queue(topk=3)
        outcomes = [queue.offer("topk", "s", i) for i in range(10)]
        assert outcomes == [True] * 3 + [False] * 7
        assert queue.depth("topk") == 3
        assert queue.shed == 7
        assert queue.accepted == 3
        assert queue.offered == 10

    def test_class_limits_are_independent(self):
        queue = _queue(topk=1, whynot=1)
        assert queue.offer("topk", "a", 1)
        assert not queue.offer("topk", "a", 2)
        assert queue.offer("whynot", "a", 3)  # other class unaffected
        assert len(queue) == 2 == queue.capacity

    def test_take_frees_a_slot(self):
        queue = _queue(topk=1)
        assert queue.offer("topk", "a", 1)
        assert not queue.offer("topk", "a", 2)
        assert queue.take() == 1
        assert queue.offer("topk", "a", 3)

    def test_take_on_empty_returns_none(self):
        assert _queue().take() is None


class TestFairness:
    def test_round_robin_across_sessions(self):
        queue = _queue(topk=6)
        for item in ("a1", "a2", "a3"):
            queue.offer("topk", "alice", item)
        for item in ("b1", "b2"):
            queue.offer("topk", "bob", item)
        drained = [queue.take() for _ in range(5)]
        assert drained == ["a1", "b1", "a2", "b2", "a3"]

    def test_per_session_fifo_preserved(self):
        queue = _queue(topk=8)
        for item in range(4):
            queue.offer("topk", "solo", item)
        assert [queue.take() for _ in range(4)] == [0, 1, 2, 3]

    def test_drained_session_leaves_rotation(self):
        queue = _queue(topk=4)
        queue.offer("topk", "a", "a1")
        queue.offer("topk", "b", "b1")
        queue.offer("topk", "b", "b2")
        assert queue.take() == "a1"
        assert queue.take() == "b1"
        assert queue.take() == "b2"
        assert queue.take() is None


class TestSnapshot:
    def test_snapshot_reports_counters_and_depths(self):
        queue = _queue(topk=2, whynot=1)
        queue.offer("topk", "a", 1)
        queue.offer("whynot", "b", 2)
        queue.offer("whynot", "b", 3)  # shed
        snap = queue.snapshot()
        assert snap["depths"] == {"topk": 1, "whynot": 1}
        assert snap["limits"] == {"topk": 2, "whynot": 1}
        assert snap["sessions_waiting"] == 2
        assert snap["offered"] == 3
        assert snap["accepted"] == 2
        assert snap["shed"] == 1
