"""End-to-end asyncio paths through :class:`WhyNotServer`.

Each test drives a real engine through the real admission / dispatch /
classification pipeline via ``asyncio.run`` — no event-loop plugin
required.  Overload behaviour is exercised at 4x the admission bound,
per the serving layer's acceptance scenario.
"""

import asyncio

import pytest

from repro import TransientIOError
from repro.errors import InvalidParameterError
from repro.serve import (
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServerConfig,
    WhyNotServer,
)


def _drive(coro):
    return asyncio.run(coro)


class TestHappyPath:
    def test_topk_and_whynot_ok(self, serve_engine, serve_cases):
        async def scenario():
            async with WhyNotServer(serve_engine) as server:
                case = serve_cases[0]
                top = await server.top_k("s1", case.question.query)
                why = await server.why_not("s1", case.question)
                return top, why

        top, why = _drive(scenario())
        assert top.status == STATUS_OK
        assert top.accepted and top.exact
        assert top.result is not None
        assert why.status == STATUS_OK
        assert why.result.refined is not None
        assert why.kind == "whynot"
        assert why.session == "s1"

    def test_submit_requires_running_server(self, serve_engine, serve_cases):
        server = WhyNotServer(serve_engine)
        with pytest.raises(InvalidParameterError):
            _drive(server.top_k("s1", serve_cases[0].question.query))

    def test_dialogue_reuses_dominator_cache(self, serve_engine, serve_cases):
        async def scenario():
            async with WhyNotServer(serve_engine) as server:
                case = serve_cases[0]
                for _ in range(3):
                    response = await server.why_not(
                        "dialogue", case.question, method="advanced"
                    )
                    assert response.status == STATUS_OK
                return server.sessions.snapshot()

        snap = _drive(scenario())
        assert snap["cache_hits"] >= 2


class TestOverload:
    def test_burst_at_4x_bound_sheds_explicitly(
        self, serve_engine, serve_cases
    ):
        limit = 8
        config = ServerConfig(limits={"topk": limit, "whynot": 2})
        query = serve_cases[0].question.query

        async def scenario():
            async with WhyNotServer(serve_engine, config) as server:
                burst = [
                    server.top_k(f"user-{i % 5}", query)
                    for i in range(4 * limit)
                ]
                responses = await asyncio.gather(*burst)
                return responses, len(server.admission), server.health()

        responses, depth_after, health = _drive(scenario())
        rejected = [r for r in responses if r.status == STATUS_REJECTED]
        served = [r for r in responses if r.status == STATUS_OK]
        # Offers all land before the pump drains, so the arithmetic is
        # exact: the bound admits `limit`, the rest shed.
        assert len(rejected) == 3 * limit
        assert len(served) == limit
        assert all(r.reason == "overloaded" for r in rejected)
        assert all(not r.accepted for r in rejected)
        # Memory stays bounded: nothing lingers in the queue.
        assert depth_after == 0
        assert health["queue"]["shed"] == 3 * limit
        assert health["responses"][STATUS_REJECTED] == 3 * limit

    def test_rejected_response_carries_request_identity(
        self, serve_engine, serve_cases
    ):
        config = ServerConfig(limits={"topk": 1, "whynot": 1})
        query = serve_cases[0].question.query

        async def scenario():
            async with WhyNotServer(serve_engine, config) as server:
                return await asyncio.gather(
                    *(server.top_k("same", query) for _ in range(4))
                )

        responses = _drive(scenario())
        rejected = [r for r in responses if r.status == STATUS_REJECTED]
        assert rejected and all(r.session == "same" for r in rejected)
        assert all(r.result is None for r in rejected)


class TestDeadlines:
    def test_spent_budget_classified_timeout(self, serve_engine, serve_cases):
        async def scenario():
            async with WhyNotServer(serve_engine) as server:
                return await server.why_not(
                    "slow", serve_cases[0].question, budget_seconds=1e-9
                )

        response = _drive(scenario())
        assert response.status == STATUS_TIMEOUT
        assert response.reason == "deadline expired"
        # The work still completed: deadlines bound promises, not work.
        assert response.result is not None

    def test_generous_budget_stays_ok(self, serve_engine, serve_cases):
        async def scenario():
            async with WhyNotServer(serve_engine) as server:
                return await server.top_k(
                    "fast", serve_cases[0].question.query, budget_seconds=60.0
                )

        assert _drive(scenario()).status == STATUS_OK


class TestDegradation:
    def test_quarantine_breaker_walk_to_recovery(
        self, faulty_engine, serve_cases
    ):
        config = ServerConfig(breaker_cooldown=2, breaker_max_cooldown=8)
        index = faulty_engine.sharded_index
        shard = index.shards[1]
        unit = f"shard-{shard.tid}:setr"
        question = serve_cases[0].question

        async def scenario():
            async with WhyNotServer(faulty_engine, config) as server:
                index.mark_down(
                    shard, "setr", "forced-outage", TransientIOError("forced")
                )
                states = []
                statuses = []
                for _ in range(5):
                    response = await server.why_not(
                        "ops", question, method="basic"
                    )
                    statuses.append(response.status)
                    breaker = server.breakers.snapshot().get(unit)
                    states.append(breaker["state"] if breaker else None)
                return states, statuses, server.health()

        states, statuses, health = _drive(scenario())
        # Fault surfaces as flagged degradation, never an error.
        assert statuses[0] == STATUS_DEGRADED
        # The breaker walks open -> half_open -> closed as requests tick.
        assert states[0] == "open"
        assert "half_open" in states
        assert states[-1] == "closed"
        assert statuses[-1] == STATUS_OK
        assert health["status"] == "ok"
        assert health["quarantined"] == []


class TestHealth:
    def test_health_shape(self, serve_engine, serve_cases):
        async def scenario():
            async with WhyNotServer(serve_engine) as server:
                await server.top_k("h", serve_cases[0].question.query)
                return server.health()

        health = _drive(scenario())
        assert health["status"] == "ok"
        assert set(health) == {
            "status",
            "quarantined",
            "breakers",
            "queue",
            "sessions",
            "responses",
        }
        assert health["sessions"]["requests"] == 1
