"""Shared fixtures.

Index construction over the shared synthetic dataset is the expensive
part of the suite, so the dataset, oracle, and both trees are
session-scoped.  Tests that mutate buffer state must go through
``engine.reset_buffers()`` (metrics) — the structures themselves are
immutable after build.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import (
    Oracle,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
    make_euro_like,
    make_micro_example,
)


@pytest.fixture(scope="session", autouse=True)
def _sanitize_built_trees():
    """Opt-in invariant sanitizing: ``REPRO_SANITIZE=1 pytest ...``.

    Every tree bulk-loaded anywhere in the suite is validated with
    :func:`repro.analysis.check_tree` immediately after construction;
    a violation fails the constructing test with the full report.
    Off by default — the walk is a full-tree scan per build.  (Tests
    that deliberately corrupt trees do so after construction, so this
    hook never sees the damage.)
    """
    if not os.environ.get("REPRO_SANITIZE"):
        yield
        return
    from repro.analysis import check_tree
    from repro.index.rtree import RTreeBase

    original_build = RTreeBase._build

    def checked_build(self):
        original_build(self)
        check_tree(self).raise_if_violations()

    RTreeBase._build = checked_build
    try:
        yield
    finally:
        RTreeBase._build = original_build


@pytest.fixture(scope="session", autouse=True)
def _inject_storage_faults():
    """Opt-in chaos mode: ``REPRO_FAULTS=1 pytest ...``.

    When ``REPRO_FAULTS`` selects a schedule (see
    :func:`repro.storage.FaultInjector.from_env`), every buffer pool
    created anywhere in the suite without an explicit injector gets a
    deterministic fork of one root injector, so the whole suite runs
    against faulty storage.  With the default ``transient`` preset the
    pool's bounded retries absorb every fault and the suite must pass
    unchanged; harsher presets exercise the degraded paths.  Pools
    built with ``faults=...`` (the fault tests themselves) keep their
    own injectors.
    """
    from repro.storage.faults import FaultInjector

    root = FaultInjector.from_env()
    if root is None:
        yield
        return
    from repro.storage.buffer_pool import BufferPool

    original_create = BufferPool.create.__func__

    def faulted_create(cls, **kwargs):
        if kwargs.get("faults") is None:
            kwargs["faults"] = root.fork_fresh()
        return original_create(cls, **kwargs)

    BufferPool.create = classmethod(faulted_create)
    try:
        yield
    finally:
        BufferPool.create = classmethod(original_create)


@pytest.fixture(scope="session")
def micro():
    """The paper's Fig 1 / Table I four-object example."""
    dataset, vocabulary = make_micro_example()
    return dataset, vocabulary


@pytest.fixture(scope="session")
def euro_small():
    """A small EURO-like dataset shared across the suite."""
    dataset, vocabulary = make_euro_like(1200, seed=42)
    return dataset, vocabulary


@pytest.fixture(scope="session")
def euro_engine(euro_small):
    dataset, _ = euro_small
    return WhyNotEngine(dataset)


@pytest.fixture(scope="session")
def euro_oracle(euro_small):
    dataset, _ = euro_small
    return Oracle(dataset)


@pytest.fixture(scope="session")
def euro_cases(euro_small, euro_oracle):
    """A handful of valid why-not questions over the shared dataset."""
    dataset, _ = euro_small
    rng = np.random.default_rng(7)
    cases = []
    attempts = 0
    while len(cases) < 6 and attempts < 500:
        attempts += 1
        seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(seed_obj.doc)[:3])
        if len(doc) < 2:
            continue
        query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5, alpha=0.5)
        try:
            missing = euro_oracle.object_at_rank(query, 26)
        except ValueError:
            continue
        if len(dataset.get(missing).doc - query.doc) > 5:
            continue
        cases.append(WhyNotQuestion(query, (missing,), lam=0.5))
    assert len(cases) == 6, "fixture could not build its workload"
    return cases
