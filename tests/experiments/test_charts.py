"""Tests for the terminal chart renderer."""

import pytest

from repro.experiments.charts import bar_chart, figure_chart
from repro.experiments.figures import FigureResult
from repro.experiments.runner import MethodAggregate, PointResult


def _result():
    slow = MethodAggregate("BS")
    slow.add(2.0, 20_000, 0.1)
    fast = MethodAggregate("KcRBased")
    fast.add(0.02, 300, 0.1)
    point = PointResult(
        x_label="k0", x_value=10, methods={"BS": slow, "KcRBased": fast}
    )
    return FigureResult(
        figure="fig4", title="Varying k0", x_label="k0", points=[point]
    )


class TestBarChart:
    def test_basic_rendering(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)])
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a |")
        # larger value draws the longer bar
        assert lines[0].count("█") > lines[1].count("█")

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("much-longer-label", 2.0)])
        starts = {line.index("|") for line in chart.splitlines()}
        assert len(starts) == 1

    def test_none_and_negative_render_dash(self):
        chart = bar_chart([("missing", None), ("bad", -1.0), ("ok", 3.0)])
        lines = chart.splitlines()
        assert lines[0].endswith("-")
        assert lines[1].endswith("-")
        assert "3" in lines[2]

    def test_log_scale_keeps_small_bars_visible(self):
        chart = bar_chart(
            [("big", 10_000.0), ("small", 1.0)], log_scale=True, width=40
        )
        lines = chart.splitlines()
        assert lines[1].count("█") >= 4  # not flattened to nothing

    def test_zero_value_zero_bar(self):
        chart = bar_chart([("zero", 0.0), ("one", 1.0)], log_scale=True)
        assert chart.splitlines()[0].split("|")[1].strip().startswith("0")

    def test_unit_suffix(self):
        chart = bar_chart([("x", 2.0)], unit=" s")
        assert chart.endswith("2 s")

    def test_empty_series(self):
        assert bar_chart([]) == ""


class TestFigureChart:
    def test_time_chart(self):
        text = figure_chart(_result(), "time")
        assert "fig4: mean time" in text
        assert "k0=10 BS" in text
        assert "k0=10 KcRBased" in text

    def test_ios_chart(self):
        text = figure_chart(_result(), "ios")
        assert "pages" in text

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            figure_chart(_result(), "joules")

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["experiment", "ablation-index-baseline", "--scale", "smoke", "--chart"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mean time" in out
        assert "█" in out
