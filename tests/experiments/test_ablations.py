"""Tests for the ablation experiments."""

import pytest

from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.config import SCALES
from repro.experiments.figures import clear_cache


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistry:
    def test_three_ablations(self):
        assert sorted(ABLATIONS) == [
            "ablation-buffer",
            "ablation-capacity",
            "ablation-index-baseline",
        ]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            run_ablation("ablation-quantum", "smoke")
        with pytest.raises(ValueError):
            run_ablation("ablation-buffer", "mega")


@pytest.mark.slow
class TestAblationsSmoke:
    def test_buffer_sweep_runs(self):
        result = run_ablation("ablation-buffer", "smoke")
        assert [p.x_value for p in result.points] == [0.05, 0.1, 0.25, 0.5, 1.0]
        assert result.total_mismatches == 0
        for point in result.points:
            assert point.methods["KcRBased"].mean_ios is not None

    def test_buffer_io_non_increasing(self):
        """More buffer can only reduce (or keep) page reads."""
        result = run_ablation("ablation-buffer", "smoke")
        for label in ("AdvancedBS", "KcRBased"):
            ios = [p.methods[label].mean_ios for p in result.points]
            assert all(a >= b - 1e-9 for a, b in zip(ios, ios[1:]))

    def test_capacity_sweep_runs(self):
        result = run_ablation("ablation-capacity", "smoke")
        assert [p.x_value for p in result.points] == [25, 50, 100, 200]
        assert result.total_mismatches == 0

    def test_index_baseline_prunes_worse(self):
        result = run_ablation("ablation-index-baseline", "smoke")
        point = result.points[0]
        # On the tiny smoke dataset everything fits in a few pages, so
        # only assert the comparison ran over all three indexes with
        # consistent ranks (asserted internally) and positive costs.
        for label in ("SetR-tree", "KcR-tree", "InvertedFile"):
            agg = point.methods[label]
            assert agg.n_cases > 0
            assert agg.mean_time > 0
