"""Tests for the result-quality profiler."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.figures import clear_cache
from repro.experiments.quality import (
    QualityProfile,
    profile_quality,
    quality_report_rows,
)


class TestQualityProfile:
    def test_empty_profile_safe(self):
        profile = QualityProfile(lam=0.5)
        assert profile.win_rate == 0.0
        assert profile.mean_penalty == 0.0
        assert profile.mean_saving == 0.0
        row = profile.row()
        assert row["n"] == 0

    def test_add_accumulates(self, euro_engine, euro_cases):
        question = euro_cases[0]
        answer = euro_engine.answer(question, method="kcr")
        profile = QualityProfile(lam=question.lam)
        profile.add(answer, question)
        assert profile.n_cases == 1
        assert profile.total_penalty == pytest.approx(answer.refined.penalty)
        expected_win = 1 if answer.refined.delta_doc > 0 else 0
        assert profile.keyword_edit_wins == expected_win

    def test_saving_is_lambda_minus_penalty(self, euro_engine, euro_cases):
        question = euro_cases[1]
        answer = euro_engine.answer(question, method="kcr")
        profile = QualityProfile(lam=question.lam)
        profile.add(answer, question)
        assert profile.mean_saving == pytest.approx(
            question.lam - answer.refined.penalty
        )


@pytest.mark.slow
class TestProfileQuality:
    def test_smoke_profile(self):
        clear_cache()
        try:
            profiles = profile_quality(
                SCALES["smoke"], lams=(0.2, 0.8), n_cases_per_lam=2
            )
        finally:
            clear_cache()
        assert [p.lam for p in profiles] == [0.2, 0.8]
        for profile in profiles:
            assert profile.n_cases == 2
            # the optimum never exceeds the basic refinement's penalty
            assert profile.mean_penalty <= profile.lam + 1e-9
        rows = quality_report_rows(profiles)
        assert rows[0]["lambda"] == 0.2
        assert set(rows[0]) >= {
            "keyword_edit_win_rate",
            "mean_penalty",
            "mean_delta_doc",
            "mean_delta_k",
        }
