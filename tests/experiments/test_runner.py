"""Unit tests for the experiment runner."""

import pytest

from repro.experiments.runner import MethodAggregate, MethodSpec, Runner
from repro.experiments.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def cases(euro_small):
    dataset, _ = euro_small
    generator = WorkloadGenerator(dataset, seed=123)
    return generator.generate(2, k0=5, n_keywords=3, max_extra_keywords=4)


class TestMethodSpec:
    def test_exactness_classification(self):
        assert MethodSpec("BS", "basic").is_exact()
        assert MethodSpec("A", "advanced", {"ordering": False}).is_exact()
        assert MethodSpec("K", "kcr").is_exact()
        assert MethodSpec("P", "parallel-kcr").is_exact()
        assert not MethodSpec("X", "approximate", {"sample_size": 5}).is_exact()


class TestAggregate:
    def test_means(self):
        agg = MethodAggregate("X")
        agg.add(1.0, 10, 0.5)
        agg.add(3.0, 30, 0.7)
        assert agg.mean_time == pytest.approx(2.0)
        assert agg.mean_ios == pytest.approx(20)
        assert agg.mean_penalty == pytest.approx(0.6)

    def test_empty_means_are_none(self):
        agg = MethodAggregate("X")
        assert agg.mean_time is None
        assert agg.mean_ios is None


class TestRunner:
    def test_runs_and_agrees(self, euro_engine, cases):
        runner = Runner(euro_engine)
        specs = (
            MethodSpec("AdvancedBS", "advanced"),
            MethodSpec("KcRBased", "kcr"),
        )
        point = runner.run_point("x", 1, cases, specs)
        assert point.mismatches == 0
        for label in ("AdvancedBS", "KcRBased"):
            agg = point.methods[label]
            assert agg.n_cases == len(cases)
            assert agg.mean_time > 0
            assert agg.mean_ios > 0

    def test_bs_cap_skips(self, euro_engine, cases):
        runner = Runner(euro_engine, bs_candidate_cap=1)
        point = runner.run_point(
            "x", 1, cases, (MethodSpec("BS", "basic"),)
        )
        agg = point.methods["BS"]
        assert agg.skipped == len(cases)
        assert agg.n_cases == 0

    def test_row_shape(self, euro_engine, cases):
        runner = Runner(euro_engine)
        point = runner.run_point(
            "k0", 5, cases[:1], (MethodSpec("KcRBased", "kcr"),)
        )
        row = point.row()
        assert row["k0"] == 5
        assert "KcRBased_time_s" in row
        assert "KcRBased_ios" in row
        assert "KcRBased_penalty" in row
