"""End-to-end CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_args(self):
        args = build_parser().parse_args(
            ["experiment", "fig4", "--scale", "smoke", "-o", "out.md"]
        )
        assert args.figure == "fig4"
        assert args.scale == "smoke"
        assert args.output == "out.md"


class TestCommands:
    def test_params(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "k0" in out
        assert "10*" in out  # default marker

    def test_datasets_smoke(self, capsys):
        assert main(["datasets", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "euro-like" in out
        assert "gn-like" in out

    def test_unknown_figure(self, capsys):
        assert main(["experiment", "fig99", "--scale", "smoke"]) == 2

    @pytest.mark.slow
    def test_experiment_with_output(self, capsys, tmp_path):
        out_file = tmp_path / "fig11.md"
        assert (
            main(["experiment", "fig11", "--scale", "smoke", "-o", str(out_file)])
            == 0
        )
        assert out_file.exists()
        content = out_file.read_text(encoding="utf-8")
        assert "### fig11" in content

    @pytest.mark.slow
    def test_demo(self, capsys):
        assert main(["demo", "--size", "800", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "KcRBased" in out
        assert "refined query" in out

    @pytest.mark.slow
    def test_verify(self, capsys):
        assert main(["verify", "--size", "500", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "2/2 trials verified" in out
        assert "FAIL" not in out

    @pytest.mark.slow
    def test_ablation_by_name(self, capsys):
        assert (
            main(["experiment", "ablation-capacity", "--scale", "smoke"]) == 0
        )
        out = capsys.readouterr().out
        assert "node_capacity" in out

    @pytest.mark.slow
    def test_quality(self, capsys):
        assert main(["quality", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "keyword_edit_win_rate" in out
        assert "lambda" in out
