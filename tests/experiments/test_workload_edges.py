"""Edge-case tests for workload generation protocols."""

import pytest

from repro import Oracle
from repro.experiments.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def generator(euro_small):
    dataset, _ = euro_small
    return WorkloadGenerator(dataset, seed=2024)


class TestRangeProtocolWithSingleMissing:
    def test_single_missing_with_range(self, generator, euro_small):
        """Passing a rank range with n_missing=1 uses the pool
        protocol (Fig 9 semantics), not the exact-rank protocol."""
        dataset, _ = euro_small
        oracle = Oracle(dataset)
        cases = generator.generate(
            2,
            k0=10,
            n_keywords=3,
            n_missing=1,
            missing_rank_range=(11, 40),
            max_extra_keywords=4,
        )
        for case in cases:
            oid = case.question.missing[0]
            rank = oracle.rank(oid, case.question.query)
            assert 11 <= rank <= 40


class TestMissingObjectsDistinct:
    def test_no_duplicate_missing(self, generator):
        cases = generator.generate(
            2,
            k0=10,
            n_keywords=3,
            n_missing=3,
            missing_rank_range=(11, 51),
            max_extra_keywords=4,
        )
        for case in cases:
            assert len(set(case.question.missing)) == len(case.question.missing)


class TestQueryGeometry:
    def test_locations_inside_unit_square(self, generator):
        cases = generator.generate(3, k0=5, n_keywords=3, max_extra_keywords=4)
        for case in cases:
            x, y = case.question.query.loc
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_keyword_count_exact(self, generator):
        for n_keywords in (2, 5):
            cases = generator.generate(
                1, k0=5, n_keywords=n_keywords, max_extra_keywords=4
            )
            assert len(cases[0].question.query.doc) == n_keywords


class TestSeedsIsolateStreams:
    def test_different_seeds_different_workloads(self, euro_small):
        dataset, _ = euro_small
        a = WorkloadGenerator(dataset, seed=1).generate(
            2, k0=5, n_keywords=3, max_extra_keywords=4
        )
        b = WorkloadGenerator(dataset, seed=2).generate(
            2, k0=5, n_keywords=3, max_extra_keywords=4
        )
        assert [c.question for c in a] != [c.question for c in b]
