"""Smoke-scale integration tests for the per-figure experiment drivers.

Each figure runs end-to-end at the ``smoke`` scale and must (a)
produce a row per sweep value, (b) report zero exact-method penalty
mismatches, and (c) exhibit the paper's headline shape where the shape
is robust at tiny scale (BS slowest; approximate never better than
exact).
"""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.figures import (
    FIGURES,
    clear_cache,
    run_figure,
    table2_dataset_info,
)

SMOKE = SCALES["smoke"]


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestFigureRegistry:
    def test_all_ten_figures_present(self):
        assert sorted(FIGURES) == [
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        ]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig99", "smoke")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig4", "galactic")


class TestTable2:
    def test_dataset_info(self):
        rows = table2_dataset_info(SMOKE)
        names = {row["name"] for row in rows}
        assert names == {"euro-like", "gn-like"}
        for row in rows:
            assert row["total_objects"] > 0
            assert row["total_distinct_words"] > 0


@pytest.mark.slow
class TestFiguresSmoke:
    def test_fig4(self):
        result = run_figure("fig4", "smoke")
        assert result.total_mismatches == 0
        assert len(result.points) >= 2  # large k0 points may not fit smoke data
        for point in result.points:
            kcr = point.methods["KcRBased"]
            assert kcr.mean_time is not None and kcr.mean_time > 0

    def test_fig6_alpha_sweep(self):
        result = run_figure("fig6", "smoke")
        assert result.total_mismatches == 0
        assert [p.x_value for p in result.points] == [0.1, 0.3, 0.5, 0.7, 0.9]

    def test_fig9_multi_missing(self):
        result = run_figure("fig9", "smoke")
        assert result.total_mismatches == 0
        assert [p.x_value for p in result.points] == [1, 2, 3, 4]

    def test_fig10_makespan_monotone(self):
        result = run_figure("fig10", "smoke")
        times = [p.methods["KcRBased"].mean_time for p in result.points]
        assert all(t is not None and t > 0 for t in times)
        # More threads should not make the simulated makespan much
        # worse.  At smoke scale a point is a single sub-millisecond
        # query, so allow generous absolute + relative noise headroom;
        # strict monotonicity of makespan() itself is unit-tested in
        # tests/core/test_parallel.py.
        assert times[-1] <= times[0] * 3.0 + 0.05

    def test_fig11_advanced_beats_bs(self):
        result = run_figure("fig11", "smoke")
        point = result.points[0]
        bs = point.methods["BS"].mean_time
        advanced = point.methods["AdvancedBS"].mean_time
        assert advanced < bs

    def test_fig12_approx_not_better_than_exact(self):
        result = run_figure("fig12", "smoke")
        exact_point = result.points[-1]
        exact_penalty = exact_point.methods["KcRBased"].mean_penalty
        for point in result.points[:-1]:
            for label, agg in point.methods.items():
                assert agg.mean_penalty >= exact_penalty - 1e-9

    def test_fig13_rows_per_size(self):
        result = run_figure("fig13", "smoke")
        assert [p.x_value for p in result.points] == list(SMOKE.gn_sizes)
        assert result.total_mismatches == 0
