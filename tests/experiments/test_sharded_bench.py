"""CI smoke: the sharded bench unit is bit-identical to unsharded.

Runs at a deliberately small size (one round, no timing assertions) so
it is cheap enough for the bench job to execute under both
``REPRO_VECTORIZE=0`` and ``=1`` — the parity flag, not the latency,
is what this guards.
"""

from __future__ import annotations

import pytest

from repro.experiments import benchflows

SIZE = 1_500


@pytest.fixture(scope="module")
def harness():
    return benchflows.EmitterHarness()


@pytest.fixture(scope="module")
def case(harness):
    return harness.case(
        "sharded-smoke",
        kind="gn",
        size=SIZE,
        k0=10,
        n_keywords=3,
        alpha=0.5,
        lam=0.5,
    )


@pytest.fixture(scope="module")
def reference(harness, case):
    return benchflows.whynot_unit(
        harness, case, "advanced", kind="gn", size=SIZE, rounds=1
    )


class TestShardedBenchParity:
    @pytest.mark.parametrize("mode", ["simulate", "process"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_parity_with_unsharded(self, harness, case, reference, shards, mode):
        record = benchflows.sharded_whynot_unit(
            harness,
            case,
            kind="gn",
            size=SIZE,
            shards=shards,
            mode=mode,
            rounds=1,
            reference=reference,
        )
        assert record["parity_with_unsharded"] is True
        assert record["penalty"] == reference["penalty"]
        assert record["initial_rank"] == reference["initial_rank"]
        assert record["shards"] == shards
        assert record["shard_mode"] == mode

    def test_reference_without_flag(self, harness, case):
        record = benchflows.sharded_whynot_unit(
            harness, case, kind="gn", size=SIZE, shards=2, rounds=1
        )
        assert "parity_with_unsharded" not in record
