"""Unit tests for the figure-driver plumbing (no slow experiment runs)."""

import pytest

from repro.experiments.config import SCALES, Defaults
from repro.experiments.figures import _engine_for, _point_seed, clear_cache


class TestDefaults:
    def test_table_iii_bold_column(self):
        defaults = Defaults()
        assert defaults.k0 == 10
        assert defaults.n_keywords == 4
        assert defaults.alpha == 0.5
        assert defaults.lam == 0.5
        assert defaults.n_missing == 1
        assert defaults.rank_target == 51  # 5 * k0 + 1

    def test_scales_ordered_by_size(self):
        assert (
            SCALES["smoke"].euro_size
            < SCALES["default"].euro_size
            < SCALES["full"].euro_size
        )
        for scale in SCALES.values():
            assert scale.n_queries >= 1
            assert scale.bs_candidate_cap > 0


class TestPointSeeds:
    def test_deterministic(self):
        assert _point_seed("fig4", 10) == _point_seed("fig4", 10)

    def test_distinct_across_points(self):
        seeds = {_point_seed("fig4", v) for v in (3, 10, 30, 100)}
        assert len(seeds) == 4

    def test_distinct_across_figures(self):
        assert _point_seed("fig4", 10) != _point_seed("fig8", 10)

    def test_in_valid_range(self):
        seed = _point_seed("fig12", 0.5)
        assert 0 <= seed < 2**31


class TestEngineCache:
    def test_same_key_same_engine(self):
        clear_cache()
        try:
            _, engine_a = _engine_for("euro", 400, 1)
            _, engine_b = _engine_for("euro", 400, 1)
            assert engine_a is engine_b
            _, engine_c = _engine_for("euro", 500, 1)
            assert engine_c is not engine_a
        finally:
            clear_cache()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            _engine_for("mars", 100, 1)
