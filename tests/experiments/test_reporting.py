"""Unit tests for table rendering."""

from repro.experiments.figures import FigureResult
from repro.experiments.reporting import (
    figure_to_markdown,
    figure_to_text,
    format_value,
    rows_to_table,
)
from repro.experiments.runner import MethodAggregate, PointResult


def _fake_result():
    agg = MethodAggregate("KcRBased")
    agg.add(0.125, 640, 0.25)
    point = PointResult(x_label="k0", x_value=10, methods={"KcRBased": agg})
    return FigureResult(
        figure="fig4", title="Varying k0", x_label="k0", points=[point]
    )


class TestFormatValue:
    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_large_numbers_get_commas(self):
        assert format_value(123456.0) == "123,456"

    def test_small_floats_four_decimals(self):
        assert format_value(0.12345) == "0.1235"

    def test_mid_floats_three_decimals(self):
        assert format_value(3.14159) == "3.142"

    def test_strings_pass_through(self):
        assert format_value("exact") == "exact"


class TestRowsToTable:
    def test_empty(self):
        assert rows_to_table([]) == "(no data)"

    def test_alignment_and_content(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = rows_to_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3] if len(lines) > 3 else "22" in text

    def test_missing_column_rendered_as_dash(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = rows_to_table(rows, columns=["a", "b"])
        assert "-" in text


class TestFigureRendering:
    def test_text_contains_title_and_data(self):
        text = figure_to_text(_fake_result())
        assert "fig4" in text
        assert "Varying k0" in text
        assert "KcRBased_time_s" in text
        assert "0.125" in text.replace(",", "")

    def test_markdown_structure(self):
        md = figure_to_markdown(_fake_result())
        assert md.startswith("### fig4")
        assert "| k0 |" in md or "| k0 " in md
        assert "|---" in md

    def test_mismatch_warning_surfaces(self):
        result = _fake_result()
        result.points[0].mismatches = 2
        assert "WARNING" in figure_to_text(result)
        assert "WARNING" in figure_to_markdown(result)
