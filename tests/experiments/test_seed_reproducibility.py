"""Cross-process reproducibility of workload seeds.

Python salts string hashing per process, so a seed derived from
``hash()`` would give every harness run different workloads — the bug
this file pins.  The seed must match a fixed reference value computed
once, which a salted hash cannot do.
"""

import subprocess
import sys

from repro.experiments.figures import _point_seed


class TestPointSeedStability:
    def test_reference_values(self):
        """Fixed expected values: fail here means every published
        EXPERIMENTS.md number silently changes between runs."""
        assert _point_seed("fig4", 10) == _point_seed("fig4", 10)
        # CRC32 is stable across platforms and processes; record two
        # anchor values so regressions are loud.
        import zlib

        from repro.experiments.figures import DEFAULTS

        expected = (DEFAULTS.seed * 31 + zlib.crc32(b"fig4:10")) % (2**31)
        assert _point_seed("fig4", 10) == expected

    def test_stable_across_processes(self):
        """The strong form: a fresh interpreter (fresh hash salt) must
        compute the same seed."""
        code = (
            "from repro.experiments.figures import _point_seed;"
            "print(_point_seed('fig9', 4))"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                timeout=120,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        assert outputs == {str(_point_seed("fig9", 4))}
