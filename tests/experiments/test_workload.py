"""Unit tests for the workload generator."""

import pytest

from repro import Oracle
from repro.experiments.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def generator(euro_small):
    dataset, _ = euro_small
    return WorkloadGenerator(dataset, seed=99)


class TestSingleMissing:
    def test_exact_rank_protocol(self, generator, euro_small):
        dataset, _ = euro_small
        oracle = Oracle(dataset)
        cases = generator.generate(3, k0=5, n_keywords=3, rank_target=26)
        assert len(cases) == 3
        for case in cases:
            assert case.initial_rank == 26
            assert len(case.question.missing) == 1
            oid = case.question.missing[0]
            assert oracle.rank(oid, case.question.query) == 26

    def test_default_rank_is_5k0_plus_1(self, generator):
        cases = generator.generate(2, k0=4, n_keywords=3)
        for case in cases:
            assert case.initial_rank == 21

    def test_query_parameters_respected(self, generator):
        cases = generator.generate(2, k0=7, n_keywords=4, alpha=0.3, lam=0.9)
        for case in cases:
            assert case.question.query.k == 7
            assert len(case.question.query.doc) == 4
            assert case.question.query.alpha == 0.3
            assert case.question.lam == 0.9

    def test_max_extra_keywords_cap(self, generator, euro_small):
        dataset, _ = euro_small
        cases = generator.generate(3, k0=5, n_keywords=3, max_extra_keywords=3)
        for case in cases:
            missing_doc = dataset.get(case.question.missing[0]).doc
            assert len(missing_doc - case.question.query.doc) <= 3

    def test_candidate_space_recorded(self, generator, euro_small):
        dataset, _ = euro_small
        case = generator.generate(1, k0=5, n_keywords=3)[0]
        universe = len(
            case.question.query.doc | dataset.get(case.question.missing[0]).doc
        )
        assert case.candidate_space == 2**universe

    def test_determinism(self, euro_small):
        dataset, _ = euro_small
        a = WorkloadGenerator(dataset, seed=5).generate(2, k0=5, n_keywords=3)
        b = WorkloadGenerator(dataset, seed=5).generate(2, k0=5, n_keywords=3)
        assert [c.question for c in a] == [c.question for c in b]

    def test_impossible_constraints_raise(self, generator):
        with pytest.raises(RuntimeError):
            generator.generate(
                2, k0=5, n_keywords=3, max_extra_keywords=0, max_attempts_factor=5
            )


class TestMultipleMissing:
    def test_missing_count_and_range(self, generator, euro_small):
        dataset, _ = euro_small
        oracle = Oracle(dataset)
        cases = generator.generate(
            2,
            k0=10,
            n_keywords=3,
            n_missing=3,
            missing_rank_range=(11, 51),
            max_extra_keywords=4,
        )
        for case in cases:
            assert len(case.question.missing) == 3
            for oid in case.question.missing:
                rank = oracle.rank(oid, case.question.query)
                assert 11 <= rank <= 51

    def test_initial_rank_exceeds_k0(self, generator):
        cases = generator.generate(
            2, k0=10, n_keywords=3, n_missing=2, missing_rank_range=(11, 51)
        )
        for case in cases:
            assert case.initial_rank > 10
