"""Cross-component storage behaviour: updates, invalidation, and the
write-accounting contract the mutation paths rely on."""

import pytest

from repro import BufferPool, Pager


class TestUpdateInvalidationContract:
    def test_updates_visible_through_cache_hits(self):
        """The pool caches record *ids*, not payload copies, so an
        update is visible on the very next hit — no torn reads."""
        pager = Pager()
        pool = BufferPool(pager, capacity_bytes=8 * 4096)
        record = pager.allocate("v1", 100)
        assert pool.fetch(record) == "v1"
        pager.update(record, "v2", 100)
        assert pool.fetch(record) == "v2"

    def test_invalidate_fixes_span_accounting_after_update(self):
        """What the mutation paths' invalidate calls actually protect:
        a record that grows across a page boundary must not keep its
        old 1-page frame accounting."""
        pager = Pager()
        pool = BufferPool(pager, capacity_bytes=8 * 4096)
        record = pager.allocate("small", 100)
        pool.fetch(record)
        assert pool.used_pages == 1
        pager.update(record, "big" * 4000, 3 * 4096)
        pool.invalidate(record)
        pool.fetch(record)
        assert pool.used_pages == 3

    def test_update_charges_writes(self):
        pager = Pager()
        record = pager.allocate("v1", 100)
        before = pager.stats.page_writes
        pager.update(record, "v2", 9000)  # 3 pages
        assert pager.stats.page_writes - before == 3

    def test_free_then_fetch_fails(self):
        from repro import StorageError

        pager = Pager()
        pool = BufferPool(pager, capacity_bytes=8 * 4096)
        record = pager.allocate("x", 100)
        pool.fetch(record)
        pager.free(record)
        pool.invalidate(record)
        with pytest.raises(StorageError):
            pool.fetch(record)


class TestTreeMutationAccounting:
    def test_insert_charges_page_writes(self, euro_small):
        """Dynamic insertion is a write path: the pager's write
        counters must move, and reads must flow through the buffer."""
        from repro import Dataset, SetRTree, SpatialObject, make_euro_like

        full, _ = make_euro_like(200, seed=83)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        tree = SetRTree(dataset, capacity=8)
        writes_before = tree.stats.page_writes
        obj = SpatialObject(oid=10**6, loc=(0.4, 0.4), doc=frozenset({1, 2}))
        dataset.add(obj)
        tree.insert(obj)
        assert tree.stats.page_writes > writes_before

    def test_delete_frees_records_on_condense(self):
        """Mass deletion must shrink the simulated disk footprint."""
        from repro import Dataset, SetRTree, make_euro_like

        full, _ = make_euro_like(300, seed=89)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        tree = SetRTree(dataset, capacity=4)
        records_before = len(tree.pager)
        import numpy as np

        rng = np.random.default_rng(7)
        victims = rng.choice(
            [o.oid for o in dataset.objects], 250, replace=False
        )
        for oid in victims:
            tree.delete(dataset.get(oid))
            dataset.remove(int(oid))
        assert len(tree.pager) < records_before
