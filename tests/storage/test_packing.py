"""Unit tests for slotted-page packing."""

import pytest

from repro import BufferPool, Pager, StorageError
from repro.storage.packing import PackedWriter, SlotRef, fetch_slot


def _setup():
    pager = Pager(page_size=4096)
    pool = BufferPool(pager, capacity_bytes=16 * 4096)
    writer = PackedWriter(pager)
    return pager, pool, writer


class TestPacking:
    def test_small_records_share_a_page(self):
        pager, pool, writer = _setup()
        indexes = [writer.add(f"payload-{i}", 100) for i in range(10)]
        writer.flush()
        refs = [writer.ref(i) for i in indexes]
        assert len({ref.record for ref in refs}) == 1  # one shared page
        assert [fetch_slot(pool, ref) for ref in refs] == [
            f"payload-{i}" for i in range(10)
        ]

    def test_page_overflow_starts_new_page(self):
        pager, pool, writer = _setup()
        first = writer.add("a", 3000)
        second = writer.add("b", 3000)  # 6000 > 4096: new page
        writer.flush()
        assert writer.ref(first).record != writer.ref(second).record

    def test_flush_seals_page_boundary(self):
        pager, pool, writer = _setup()
        a = writer.add("a", 100)
        writer.flush()
        b = writer.add("b", 100)
        writer.flush()
        assert writer.ref(a).record != writer.ref(b).record

    def test_shared_page_costs_one_read_for_all_slots(self):
        pager, pool, writer = _setup()
        indexes = [writer.add(i, 50) for i in range(20)]
        writer.flush()
        before = pager.stats.page_reads
        for i in indexes:
            fetch_slot(pool, writer.ref(i))
        assert pager.stats.page_reads - before == 1  # one miss, rest hits


class TestErrors:
    def test_ref_before_flush(self):
        _, _, writer = _setup()
        index = writer.add("x", 10)
        with pytest.raises(StorageError):
            writer.ref(index)

    def test_record_larger_than_page_rejected(self):
        _, _, writer = _setup()
        with pytest.raises(StorageError):
            writer.add("big", 5000)

    def test_negative_size_rejected(self):
        _, _, writer = _setup()
        with pytest.raises(StorageError):
            writer.add("x", -1)

    def test_bad_slot(self):
        pager, pool, writer = _setup()
        index = writer.add("x", 10)
        writer.flush()
        ref = writer.ref(index)
        with pytest.raises(StorageError):
            fetch_slot(pool, SlotRef(record=ref.record, slot=99))
