"""Deadline contract and its propagation into the buffer-pool retries."""

import pytest

from repro import BufferPool, FaultInjector, FaultSchedule, TransientIOError
from repro.errors import InvalidParameterError
from repro.storage import Deadline, current_deadline, deadline_scope
from repro.storage.buffer_pool import RETRY_LIMIT


class TestDeadline:
    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            Deadline(-0.001)

    def test_fresh_budget_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0

    def test_zero_budget_expires_immediately(self):
        assert Deadline(0.0).expired()

    def test_at_wraps_absolute_instant(self):
        past = Deadline.at(0.0)  # monotonic epoch: long gone
        assert past.expired()
        assert past.remaining() < 0.0


class TestDeadlineScope:
    def test_default_is_none(self):
        assert current_deadline() is None

    def test_scope_installs_and_restores(self):
        deadline = Deadline(5.0)
        with deadline_scope(deadline) as installed:
            assert installed is deadline
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_scope_is_accepted(self):
        with deadline_scope(None):
            assert current_deadline() is None

    def test_scopes_nest_inner_wins(self):
        outer, inner = Deadline(5.0), Deadline(1.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(5.0)):
                raise RuntimeError("boom")
        assert current_deadline() is None


def _transient_pool(seed=7):
    """A pool whose reads always fault transiently (until the cap)."""
    schedule = FaultSchedule(
        transient_read_rate=1.0, max_consecutive_transients=RETRY_LIMIT + 2
    )
    return BufferPool.create(faults=FaultInjector(schedule, seed=seed))


class TestBufferPoolDeadline:
    def test_expired_deadline_aborts_retry_schedule(self):
        pool = _transient_pool()
        rid = pool.pager.allocate("payload", 100)
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(TransientIOError, match="deadline expired"):
                pool.fetch(rid)
        # Aborted on the first re-attempt check: one abort accounted,
        # no retries burned.
        assert pool.stats.deadline_aborts == 1
        assert pool.stats.read_retries == 0

    def test_no_deadline_keeps_full_retry_schedule(self):
        pool = _transient_pool()
        rid = pool.pager.allocate("payload", 100)
        with pytest.raises(TransientIOError):
            pool.fetch(rid)
        assert pool.stats.deadline_aborts == 0
        assert pool.stats.read_retries == RETRY_LIMIT - 1

    def test_generous_deadline_keeps_full_retry_schedule(self):
        pool = _transient_pool()
        rid = pool.pager.allocate("payload", 100)
        with deadline_scope(Deadline(60.0)):
            with pytest.raises(TransientIOError):
                pool.fetch(rid)
        assert pool.stats.deadline_aborts == 0
        assert pool.stats.read_retries == RETRY_LIMIT - 1

    def test_transients_absorbed_within_deadline(self):
        # Default consecutive-transient cap (2) is inside the retry
        # budget: the fetch succeeds and the deadline never fires.
        schedule = FaultSchedule(transient_read_rate=1.0)
        pool = BufferPool.create(faults=FaultInjector(schedule, seed=3))
        rid = pool.pager.allocate("payload", 100)
        with deadline_scope(Deadline(60.0)):
            assert pool.fetch(rid) == "payload"
        assert pool.stats.deadline_aborts == 0
        assert pool.stats.read_retries == 2

    def test_snapshot_carries_deadline_aborts(self):
        pool = _transient_pool()
        rid = pool.pager.allocate("payload", 100)
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(TransientIOError):
                pool.fetch(rid)
        snap = pool.stats.snapshot()
        assert snap.deadline_aborts == 1
