"""Unit tests for the LRU buffer pool."""

import pytest

from repro import BufferPool, Pager, StorageError


def _pool(capacity_pages=4, page_size=4096):
    pager = Pager(page_size=page_size)
    pool = BufferPool(pager, capacity_bytes=capacity_pages * page_size)
    return pager, pool


class TestHitMiss:
    def test_first_fetch_misses_then_hits(self):
        pager, pool = _pool()
        rid = pager.allocate("x", 100)
        stats = pager.stats
        pool.fetch(rid)
        reads_after_miss = stats.page_reads
        pool.fetch(rid)
        assert stats.page_reads == reads_after_miss  # hit: no new reads
        assert stats.buffer_hits == 1

    def test_miss_charges_full_span(self):
        pager, pool = _pool(capacity_pages=8)
        rid = pager.allocate("x", 3 * 4096)
        before = pager.stats.page_reads
        pool.fetch(rid)
        assert pager.stats.page_reads - before == 3
        assert pool.used_pages == 3


class TestEviction:
    def test_lru_eviction_order(self):
        pager, pool = _pool(capacity_pages=2)
        a = pager.allocate("a", 100)
        b = pager.allocate("b", 100)
        c = pager.allocate("c", 100)
        pool.fetch(a)
        pool.fetch(b)
        pool.fetch(a)  # a most recent
        pool.fetch(c)  # evicts b
        assert a in pool
        assert c in pool
        assert b not in pool

    def test_oversized_record_not_cached(self):
        pager, pool = _pool(capacity_pages=2)
        big = pager.allocate("big", 3 * 4096)
        pool.fetch(big)
        assert big not in pool
        assert pool.used_pages == 0

    def test_page_accounted_capacity(self):
        pager, pool = _pool(capacity_pages=3)
        two_pager = pager.allocate("two", 2 * 4096)
        one_pager = pager.allocate("one", 100)
        another = pager.allocate("x", 100)
        pool.fetch(two_pager)
        pool.fetch(one_pager)  # 3/3 pages used
        pool.fetch(another)  # must evict the 2-page record (LRU)
        assert two_pager not in pool
        assert pool.used_pages == 2


class TestMaintenance:
    def test_invalidate(self):
        pager, pool = _pool()
        rid = pager.allocate("x", 100)
        pool.fetch(rid)
        pool.invalidate(rid)
        assert rid not in pool
        assert pool.used_pages == 0

    def test_clear(self):
        pager, pool = _pool()
        for i in range(3):
            pool.fetch(pager.allocate(i, 100))
        pool.clear()
        assert pool.used_pages == 0

    def test_negative_capacity_rejected(self):
        pager = Pager()
        with pytest.raises(StorageError):
            BufferPool(pager, capacity_bytes=-1)

    def test_zero_capacity_reads_through(self):
        pager = Pager()
        pool = BufferPool(pager, capacity_bytes=0)
        rid = pager.allocate("x", 100)
        assert pool.fetch(rid) == "x"
        assert pool.fetch(rid) == "x"
        assert pager.stats.page_reads == 2  # nothing cached
