"""Unit tests for the byte-size model and I/O statistics."""

from repro.storage.layout import (
    ENTRY_BYTES,
    NODE_HEADER_BYTES,
    keyword_count_map_bytes,
    keyword_set_bytes,
    node_bytes,
    set_pair_bytes,
)
from repro.storage.stats import IOSnapshot, IOStatistics


class TestLayout:
    def test_node_bytes_formula(self):
        assert node_bytes(100) == NODE_HEADER_BYTES + 100 * ENTRY_BYTES

    def test_full_node_spans_two_4k_pages(self):
        # capacity-100 nodes (the paper's setting) need two 4 KB pages
        assert 4096 < node_bytes(100) <= 2 * 4096

    def test_keyword_set_bytes_minimum(self):
        assert keyword_set_bytes(0) == 4
        assert keyword_set_bytes(10) == 40

    def test_set_pair_is_sum(self):
        assert set_pair_bytes(10, 3) == keyword_set_bytes(10) + keyword_set_bytes(3)

    def test_kcm_bytes(self):
        assert keyword_count_map_bytes(0) == 8 + 8
        assert keyword_count_map_bytes(5) == 8 + 40


class TestIOStatistics:
    def test_snapshot_subtraction(self):
        stats = IOStatistics()
        stats.page_reads = 10
        stats.page_writes = 2
        before = stats.snapshot()
        stats.page_reads = 25
        stats.buffer_hits = 7
        delta = stats.snapshot() - before
        assert delta.page_reads == 15
        assert delta.page_writes == 0
        assert delta.buffer_hits == 7
        assert delta.total_ios == 15

    def test_reset(self):
        stats = IOStatistics(page_reads=5, page_writes=4, buffer_hits=3, node_fetches=2)
        stats.reset()
        assert stats.snapshot() == IOSnapshot(0, 0, 0, 0)

    def test_total_ios(self):
        stats = IOStatistics(page_reads=5, page_writes=4)
        assert stats.total_ios == 9
