"""Unit tests for the simulated pager."""

import pytest

from repro import Pager, StorageError
from repro.storage.stats import IOStatistics


class TestAllocation:
    def test_allocate_returns_distinct_ids(self):
        pager = Pager()
        ids = [pager.allocate(i, 100) for i in range(10)]
        assert len(set(ids)) == 10

    def test_span_rounds_up(self):
        pager = Pager(page_size=4096)
        small = pager.allocate("x", 10)
        exact = pager.allocate("y", 4096)
        big = pager.allocate("z", 4097)
        assert pager.span(small) == 1
        assert pager.span(exact) == 1
        assert pager.span(big) == 2

    def test_zero_byte_record_spans_one_page(self):
        pager = Pager()
        assert pager.span(pager.allocate(None, 0)) == 1

    def test_negative_size_rejected(self):
        pager = Pager()
        with pytest.raises(StorageError):
            pager.allocate("x", -1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(StorageError):
            Pager(page_size=0)


class TestAccessAccounting:
    def test_read_charges_span(self):
        stats = IOStatistics()
        pager = Pager(stats=stats)
        rid = pager.allocate("payload", 9000)  # 3 pages
        before = stats.page_reads
        assert pager.read(rid) == "payload"
        assert stats.page_reads - before == 3

    def test_write_charges_span_at_allocate(self):
        stats = IOStatistics()
        pager = Pager(stats=stats)
        pager.allocate("p", 5000)  # 2 pages
        assert stats.page_writes == 2

    def test_peek_charges_nothing(self):
        stats = IOStatistics()
        pager = Pager(stats=stats)
        rid = pager.allocate("p", 100)
        snapshot = stats.snapshot()
        assert pager.peek(rid) == "p"
        assert stats.snapshot() - snapshot == snapshot - snapshot

    def test_unknown_record(self):
        pager = Pager()
        with pytest.raises(StorageError):
            pager.read(42)


class TestUpdateFree:
    def test_update_respans(self):
        pager = Pager()
        rid = pager.allocate("a", 100)
        pager.update(rid, "b", 9000)
        assert pager.read(rid) == "b"
        assert pager.span(rid) == 3

    def test_update_unknown(self):
        pager = Pager()
        with pytest.raises(StorageError):
            pager.update(7, "x", 10)

    def test_free_and_double_free(self):
        pager = Pager()
        rid = pager.allocate("a", 100)
        pager.free(rid)
        assert rid not in pager
        with pytest.raises(StorageError):
            pager.free(rid)

    def test_totals(self):
        pager = Pager()
        pager.allocate("a", 100)
        pager.allocate("b", 5000)
        assert pager.total_pages == 3
        assert pager.total_bytes == 5100
        assert len(pager) == 2
