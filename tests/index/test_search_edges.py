"""Edge-case tests for the best-first searcher and algorithm paths
that the main suites exercise only implicitly."""

import pytest

from repro import (
    Dataset,
    KcRTree,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
)


def _line_dataset(n=12):
    objects = [
        SpatialObject(
            oid=i,
            loc=(i / (n - 1), 0.0),
            doc=frozenset({i % 4, 4 + (i % 2)}),
        )
        for i in range(n)
    ]
    return Dataset(objects, diagonal=1.0)


class TestScoreObject:
    def test_matches_oracle(self):
        dataset = _line_dataset()
        tree = SetRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        oracle = Oracle(dataset)
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({0, 4}), k=3)
        scores = oracle.scores(query)
        for row, obj in enumerate(dataset.objects):
            assert searcher.score_object(obj, query) == pytest.approx(
                scores[row]
            )

    def test_keyword_override(self):
        dataset = _line_dataset()
        tree = SetRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({0}), k=3)
        obj = dataset.objects[0]
        with_override = searcher.score_object(obj, query, frozenset({4}))
        direct = searcher.score_object(obj, query.with_keywords({4}))
        assert with_override == pytest.approx(direct)


class TestKcRRankSearch:
    def test_kcr_rank_with_keyword_override(self):
        dataset = _line_dataset()
        tree = KcRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        oracle = Oracle(dataset)
        query = SpatialKeywordQuery(loc=(0.5, 0.0), doc=frozenset({0}), k=3)
        override = frozenset({4, 5})
        target = dataset.objects[7]
        result = searcher.rank_of_missing(query, [target], keywords=override)
        assert result.rank == oracle.rank(target.oid, query, override)


class TestAlphaExtremes:
    @pytest.mark.parametrize("alpha", [0.01, 0.99])
    def test_near_degenerate_alpha(self, alpha):
        """α near its open-interval endpoints must not break the
        Theorem 1/2 bound arithmetic (the ratio α/(1−α) blows up)."""
        dataset = _line_dataset()
        tree = SetRTree(dataset, capacity=4)
        kcr = KcRTree(dataset, capacity=4)
        oracle = Oracle(dataset)
        query = SpatialKeywordQuery(
            loc=(0.2, 0.0), doc=frozenset({0, 4}), k=4, alpha=alpha
        )
        for t in (tree, kcr):
            got = [oid for _, oid in TopKSearcher(t).top_k(query)]
            expected = oracle.top_k_ids(query)
            scores = oracle.scores(query)
            row = {o.oid: i for i, o in enumerate(dataset.objects)}
            assert sorted(round(scores[row[i]], 10) for i in got) == sorted(
                round(scores[row[i]], 10) for i in expected
            )


class TestAdvancedNaiveOrderPath:
    def test_naive_order_with_early_stop_is_exact(self, euro_engine, euro_cases):
        """The ordering=False branch takes `continue` (not break) on
        keyword-penalty prunes; the answer must still be optimal."""
        question = euro_cases[0]
        reference = euro_engine.answer(question, method="kcr")
        answer = euro_engine.answer(
            question,
            method="advanced",
            ordering=False,
            early_stop=True,
            filtering=True,
        )
        assert answer.refined.penalty == pytest.approx(reference.refined.penalty)
        # under naive order the keyword-penalty prune cannot terminate
        # the enumeration, so enumerated >= the ordered variant
        ordered = euro_engine.answer(question, method="advanced")
        assert (
            answer.counters.candidates_enumerated
            >= ordered.counters.candidates_enumerated
        )


class TestSingleObjectTrees:
    def test_rank_of_only_object(self):
        dataset = Dataset(
            [SpatialObject(oid=0, loc=(0.5, 0.5), doc=frozenset({1}))],
            diagonal=1.0,
        )
        tree = SetRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1}), k=1)
        result = searcher.rank_of_missing(query, [dataset.get(0)])
        assert result.rank == 1
        assert result.dominators == ()
