"""Tests for dynamic R-tree deletion (condense tree + reinsertion)."""

import numpy as np
import pytest

from repro import (
    Dataset,
    DatasetError,
    IndexStructureError,
    KcRTree,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
    WhyNotEngine,
    make_euro_like,
)


def _score_multiset(oracle, dataset, query, oids):
    scores = oracle.scores(query)
    row = {o.oid: i for i, o in enumerate(dataset.objects)}
    return sorted(round(scores[row[oid]], 10) for oid in oids)


class TestDatasetRemove:
    def test_remove_updates_statistics(self):
        ds = Dataset(
            [
                SpatialObject(oid=0, loc=(0.1, 0.1), doc=frozenset({1, 2})),
                SpatialObject(oid=1, loc=(0.2, 0.2), doc=frozenset({1})),
            ],
            diagonal=1.0,
        )
        removed = ds.remove(0)
        assert removed.oid == 0
        assert len(ds) == 1
        assert ds.frequency(1) == 1
        assert ds.frequency(2) == 0
        assert 2 not in ds.doc_frequency

    def test_remove_unknown(self):
        ds = Dataset(
            [SpatialObject(oid=0, loc=(0.1, 0.1), doc=frozenset({1}))],
            diagonal=1.0,
        )
        with pytest.raises(DatasetError):
            ds.remove(9)


class TestTreeDeletion:
    @pytest.mark.parametrize("tree_cls", [SetRTree, KcRTree])
    def test_structure_valid_after_deletes(self, tree_cls):
        full, _ = make_euro_like(250, seed=53)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        tree = tree_cls(dataset, capacity=6)
        rng = np.random.default_rng(1)
        victims = list(rng.choice([o.oid for o in dataset.objects], 120, replace=False))
        for oid in victims:
            obj = dataset.get(oid)
            tree.delete(obj)
            dataset.remove(oid)
        tree.validate()

    @pytest.mark.parametrize("tree_cls", [SetRTree, KcRTree])
    def test_queries_correct_after_deletes(self, tree_cls):
        full, _ = make_euro_like(200, seed=57)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        tree = tree_cls(dataset, capacity=6)
        rng = np.random.default_rng(2)
        victims = list(rng.choice([o.oid for o in dataset.objects], 80, replace=False))
        for oid in victims:
            tree.delete(dataset.get(oid))
            dataset.remove(oid)
        oracle = Oracle(dataset)
        searcher = TopKSearcher(tree)
        for _ in range(3):
            obj = dataset.objects[int(rng.integers(0, len(dataset)))]
            doc = frozenset(list(obj.doc)[:3])
            query = SpatialKeywordQuery(loc=obj.loc, doc=doc, k=10)
            got = [oid for _, oid in searcher.top_k(query)]
            expected = oracle.top_k_ids(query)
            assert _score_multiset(oracle, dataset, query, got) == _score_multiset(
                oracle, dataset, query, expected
            )

    def test_deleted_object_unfindable(self):
        full, _ = make_euro_like(120, seed=59)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        tree = SetRTree(dataset, capacity=6)
        victim = dataset.objects[7]
        tree.delete(victim)
        dataset.remove(victim.oid)
        seen = []
        stack = [tree.root_id]
        while stack:
            node = tree.buffer.fetch(stack.pop())
            if node.is_leaf:
                seen.extend(e.oid for e in node.entries)
            else:
                stack.extend(e.child_id for e in node.entries)
        assert victim.oid not in seen
        assert sorted(seen) == sorted(o.oid for o in dataset)

    def test_summaries_consistent_after_churn(self):
        """Insert/delete interleaving must keep KcR counts exact."""
        full, _ = make_euro_like(150, seed=61)
        objects = list(full.objects)
        dataset = Dataset(objects[:100], diagonal=full.diagonal)
        tree = KcRTree(dataset, capacity=5)
        rng = np.random.default_rng(3)
        pool = objects[100:]
        for step in range(60):
            if pool and (step % 2 == 0 or len(dataset) < 60):
                obj = pool.pop()
                dataset.add(obj)
                tree.insert(obj)
            else:
                victim_oid = dataset.objects[
                    int(rng.integers(0, len(dataset)))
                ].oid
                tree.delete(dataset.get(victim_oid))
                dataset.remove(victim_oid)
        tree.validate()
        cnt, kcm = tree.fetch_kcm(tree.root_summary_record)
        assert cnt == len(dataset)
        expected = {}
        for obj in dataset:
            for term in obj.doc:
                expected[term] = expected.get(term, 0) + 1
        assert kcm == expected

    def test_delete_unknown_object(self):
        full, _ = make_euro_like(50, seed=63)
        tree = SetRTree(full, capacity=6)
        ghost = SpatialObject(oid=10**6, loc=(0.5, 0.5), doc=frozenset({1}))
        with pytest.raises(IndexStructureError):
            tree.delete(ghost)

    def test_delete_last_object_refused(self):
        ds = Dataset(
            [SpatialObject(oid=0, loc=(0.5, 0.5), doc=frozenset({1}))],
            diagonal=1.0,
        )
        tree = SetRTree(ds, capacity=4)
        with pytest.raises(IndexStructureError):
            tree.delete(ds.get(0))

    def test_height_shrinks_after_mass_deletion(self):
        full, _ = make_euro_like(400, seed=65)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        tree = SetRTree(dataset, capacity=4)
        initial_height = tree.height
        rng = np.random.default_rng(4)
        victims = list(
            rng.choice([o.oid for o in dataset.objects], 380, replace=False)
        )
        for oid in victims:
            tree.delete(dataset.get(oid))
            dataset.remove(oid)
        tree.validate()
        assert tree.height < initial_height


class TestEngineRemove:
    def test_remove_keeps_answers_fresh(self):
        full, _ = make_euro_like(400, seed=67)
        dataset = Dataset(list(full.objects), diagonal=full.diagonal)
        engine = WhyNotEngine(dataset)
        _ = engine.setr_tree, engine.kcr_tree
        rng = np.random.default_rng(5)
        for _ in range(30):
            victim = dataset.objects[int(rng.integers(0, len(dataset)))].oid
            engine.remove(victim)

        fresh = WhyNotEngine(
            Dataset(list(dataset.objects), diagonal=dataset.diagonal)
        )
        oracle = Oracle(dataset)
        from repro import WhyNotQuestion

        checked = 0
        attempts = 0
        while checked < 2 and attempts < 60:
            attempts += 1
            obj = dataset.objects[int(rng.integers(0, len(dataset)))]
            doc = frozenset(list(obj.doc)[:3])
            if len(doc) < 2:
                continue
            query = SpatialKeywordQuery(loc=obj.loc, doc=doc, k=5)
            try:
                missing = oracle.object_at_rank(query, 16)
            except ValueError:
                continue
            if len(dataset.get(missing).doc - query.doc) > 5:
                continue
            question = WhyNotQuestion(query, (missing,), lam=0.5)
            a = engine.answer(question, method="kcr")
            b = fresh.answer(question, method="kcr")
            assert a.refined.penalty == pytest.approx(b.refined.penalty)
            checked += 1
        assert checked == 2
