"""Unit tests for the SetR-tree (union/intersection payloads, Theorem 1)."""

import pytest

from repro import Dataset, SetRTree, SpatialKeywordQuery, SpatialObject


def _dataset():
    objects = [
        SpatialObject(oid=0, loc=(0.1, 0.1), doc=frozenset({1, 2})),
        SpatialObject(oid=1, loc=(0.15, 0.12), doc=frozenset({1, 3})),
        SpatialObject(oid=2, loc=(0.9, 0.9), doc=frozenset({4})),
        SpatialObject(oid=3, loc=(0.85, 0.95), doc=frozenset({4, 5})),
        SpatialObject(oid=4, loc=(0.5, 0.5), doc=frozenset({1, 4})),
        SpatialObject(oid=5, loc=(0.55, 0.45), doc=frozenset({2, 4})),
    ]
    return Dataset(objects, diagonal=2.0**0.5)


@pytest.fixture(scope="module")
def tree():
    return SetRTree(_dataset(), capacity=2)


class TestSetPayloads:
    def test_root_union_covers_all_keywords(self, tree):
        union, intersection = tree.fetch_set_pair(tree.root_summary_record)
        assert union == {1, 2, 3, 4, 5}
        assert intersection == set()  # no keyword is in all six documents

    def test_leaf_level_pairs_consistent(self, tree):
        """Every node's union/intersection must match its subtree."""
        stack = [(tree.root_id, tree.root_summary_record)]
        while stack:
            node_id, aux = stack.pop()
            union, intersection = tree.fetch_set_pair(aux)
            docs = []
            inner = [node_id]
            while inner:
                node = tree.buffer.fetch(inner.pop())
                if node.is_leaf:
                    docs.extend(tree.fetch_doc(e.doc_record) for e in node.entries)
                else:
                    inner.extend(e.child_id for e in node.entries)
            assert union == frozenset().union(*docs)
            assert intersection == frozenset.intersection(*docs)
            node = tree.buffer.fetch(node_id)
            if not node.is_leaf:
                stack.extend((e.child_id, e.aux_record) for e in node.entries)


class TestTheorem1Bound:
    def test_bound_dominates_every_object(self, tree):
        """Eqn 5: the node bound is >= the score of any object below."""
        query = SpatialKeywordQuery(
            loc=(0.2, 0.3), doc=frozenset({1, 4}), k=1, alpha=0.6
        )
        dataset = tree.dataset
        root = tree.root()
        stack = [(entry, tree.entry_score_bound(entry, query, query.doc))
                 for entry in (root.child_entries if not root.is_leaf else [])]
        while stack:
            entry, bound = stack.pop()
            node = tree.fetch_node(entry.child_id)
            if node.is_leaf:
                for oe in node.entries:
                    doc = tree.fetch_doc(oe.doc_record)
                    dist = dataset.normalized_distance(oe.loc, query.loc)
                    tsim = len(doc & query.doc) / len(doc | query.doc)
                    score = query.alpha * (1 - dist) + (1 - query.alpha) * tsim
                    assert score <= bound + 1e-12
            else:
                for child in node.entries:
                    child_bound = tree.entry_score_bound(child, query, query.doc)
                    assert child_bound <= bound + 1e-9  # bounds tighten downwards
                    stack.append((child, child_bound))

    def test_bound_with_keyword_override(self, tree):
        query = SpatialKeywordQuery(loc=(0.2, 0.3), doc=frozenset({1}), k=1)
        root = tree.root()
        entry = root.child_entries[0]
        with_override = tree.entry_score_bound(entry, query, frozenset({4, 5}))
        direct = tree.entry_score_bound(
            entry, query.with_keywords({4, 5}), frozenset({4, 5})
        )
        assert with_override == pytest.approx(direct)

    def test_far_node_spatial_bound_caps(self, tree):
        """A node far away cannot out-bound alpha when textually empty."""
        query = SpatialKeywordQuery(
            loc=(0.0, 0.0), doc=frozenset({99}), k=1, alpha=0.5
        )
        root = tree.root()
        for entry in root.child_entries:
            bound = tree.entry_score_bound(entry, query, query.doc)
            assert bound <= query.alpha  # textual term must be 0 for keyword 99
