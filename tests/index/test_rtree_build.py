"""Unit tests for R-tree construction (STR bulk load, shared plumbing)."""

import pytest

from repro import Dataset, IndexStructureError, SetRTree, SpatialObject
from repro.index.rtree import TextSummary


def _dataset(n=250, terms=7):
    objects = [
        SpatialObject(
            oid=i,
            loc=(float(i % 17) / 17.0, float(i % 13) / 13.0),
            doc=frozenset({i % terms, (i * 3) % terms}),
        )
        for i in range(n)
    ]
    return Dataset(objects, diagonal=2.0**0.5)


class TestTextSummary:
    def test_of_object(self):
        obj = SpatialObject(oid=1, loc=(0.0, 0.0), doc=frozenset({1, 2}))
        summary = TextSummary.of_object(obj)
        assert summary.cnt == 1
        assert summary.union == {1, 2}
        assert summary.intersection == {1, 2}

    def test_merged(self):
        a = SpatialObject(oid=1, loc=(0.0, 0.0), doc=frozenset({1, 2}))
        b = SpatialObject(oid=2, loc=(0.0, 0.0), doc=frozenset({2, 3}))
        merged = TextSummary.merged(
            [TextSummary.of_object(a), TextSummary.of_object(b)]
        )
        assert merged.cnt == 2
        assert merged.union == {1, 2, 3}
        assert merged.intersection == {2}
        assert merged.counts[2] == 2


class TestBuild:
    def test_empty_dataset_rejected(self):
        with pytest.raises(IndexStructureError):
            SetRTree(Dataset([]))

    def test_tiny_capacity_rejected(self):
        with pytest.raises(IndexStructureError):
            SetRTree(_dataset(10), capacity=1)

    def test_single_object_tree(self):
        ds = Dataset([SpatialObject(oid=0, loc=(0.5, 0.5), doc=frozenset({1}))])
        tree = SetRTree(ds, capacity=4)
        assert tree.height == 1
        root = tree.root()
        assert root.is_leaf
        assert len(root) == 1

    def test_structure_validates(self):
        tree = SetRTree(_dataset(300), capacity=8)
        tree.validate()  # raises on any invariant violation

    @pytest.mark.parametrize("capacity", [4, 10, 64])
    def test_all_objects_indexed_once(self, capacity):
        ds = _dataset(123)
        tree = SetRTree(ds, capacity=capacity)
        seen = []
        stack = [tree.root_id]
        while stack:
            node = tree.buffer.fetch(stack.pop())
            if node.is_leaf:
                seen.extend(e.oid for e in node.entries)
            else:
                stack.extend(e.child_id for e in node.entries)
        assert sorted(seen) == list(range(123))

    def test_capacity_respected(self):
        tree = SetRTree(_dataset(500), capacity=10)
        stack = [tree.root_id]
        while stack:
            node = tree.buffer.fetch(stack.pop())
            assert len(node.entries) <= 10
            if not node.is_leaf:
                stack.extend(e.child_id for e in node.entries)

    def test_height_grows_with_size(self):
        small = SetRTree(_dataset(9), capacity=10)
        large = SetRTree(_dataset(500), capacity=10)
        assert small.height == 1
        assert large.height >= 3

    def test_node_count(self):
        tree = SetRTree(_dataset(100), capacity=10)
        # 10 leaves + 1 root
        assert tree.node_count == 11


class TestAccessAccounting:
    def test_fetch_node_counts(self):
        tree = SetRTree(_dataset(100), capacity=10)
        before = tree.stats.node_fetches
        tree.root()
        assert tree.stats.node_fetches == before + 1

    def test_reset_buffer_forces_cold_reads(self):
        tree = SetRTree(_dataset(100), capacity=10)
        tree.root()
        tree.reset_buffer()
        before = tree.stats.page_reads
        tree.root()
        assert tree.stats.page_reads > before

    def test_resize_buffer_validation(self):
        tree = SetRTree(_dataset(50), capacity=10)
        with pytest.raises(IndexStructureError):
            tree.resize_buffer(0)
        tree.resize_buffer(8)
        assert tree.buffer.capacity_pages == 8
