"""Unit tests for the KcR-tree (keyword-count maps)."""

import pytest

from repro import Dataset, KcRTree, SpatialKeywordQuery, SpatialObject


def _dataset():
    # Mirrors the structure of the paper's Fig 3 example: restaurants
    # with overlapping cuisine keywords.
    objects = [
        SpatialObject(oid=0, loc=(0.1, 0.1), doc=frozenset({1, 2})),  # Chinese rest.
        SpatialObject(oid=1, loc=(0.2, 0.1), doc=frozenset({1, 2})),
        SpatialObject(oid=2, loc=(0.15, 0.2), doc=frozenset({2})),  # restaurant only
        SpatialObject(oid=3, loc=(0.8, 0.8), doc=frozenset({3, 2})),  # Italian rest.
        SpatialObject(oid=4, loc=(0.9, 0.85), doc=frozenset({3})),
        SpatialObject(oid=5, loc=(0.85, 0.9), doc=frozenset({2, 3})),
    ]
    return Dataset(objects, diagonal=2.0**0.5)


@pytest.fixture(scope="module")
def tree():
    return KcRTree(_dataset(), capacity=3)


class TestCountMaps:
    def test_root_counts(self, tree):
        cnt, kcm = tree.fetch_kcm(tree.root_summary_record)
        assert cnt == 6
        assert kcm == {1: 2, 2: 5, 3: 3}

    def test_counts_consistent_everywhere(self, tree):
        """Each node's kcm must equal the true per-keyword counts of
        the objects below it (the Fig 3 invariant)."""
        stack = [(tree.root_id, tree.root_summary_record)]
        while stack:
            node_id, aux = stack.pop()
            cnt, kcm = tree.fetch_kcm(aux)
            docs = []
            inner = [node_id]
            while inner:
                node = tree.buffer.fetch(inner.pop())
                if node.is_leaf:
                    docs.extend(tree.fetch_doc(e.doc_record) for e in node.entries)
                else:
                    inner.extend(e.child_id for e in node.entries)
            assert cnt == len(docs)
            expected = {}
            for doc in docs:
                for term in doc:
                    expected[term] = expected.get(term, 0) + 1
            assert kcm == expected
            node = tree.buffer.fetch(node_id)
            if not node.is_leaf:
                stack.extend((e.child_id, e.aux_record) for e in node.entries)


class TestScoreBound:
    def test_bound_dominates_objects(self, tree):
        query = SpatialKeywordQuery(
            loc=(0.3, 0.3), doc=frozenset({2, 3}), k=1, alpha=0.4
        )
        dataset = tree.dataset
        root = tree.root()
        for entry in root.child_entries:
            bound = tree.entry_score_bound(entry, query, query.doc)
            stack = [entry.child_id]
            while stack:
                node = tree.fetch_node(stack.pop())
                if node.is_leaf:
                    for oe in node.entries:
                        doc = tree.fetch_doc(oe.doc_record)
                        dist = dataset.normalized_distance(oe.loc, query.loc)
                        tsim = len(doc & query.doc) / len(doc | query.doc)
                        score = query.alpha * (1 - dist) + (1 - query.alpha) * tsim
                        assert score <= bound + 1e-12
                else:
                    stack.extend(e.child_id for e in node.entries)

    def test_empty_keywords_bound_is_spatial_only(self, tree):
        query = SpatialKeywordQuery(loc=(0.1, 0.1), doc=frozenset({1}), k=1, alpha=0.5)
        root = tree.root()
        entry = root.child_entries[0]
        bound = tree.entry_score_bound(entry, query, frozenset())
        min_d = entry.rect.min_dist(query.loc) / tree.dataset.diagonal
        assert bound == pytest.approx(query.alpha * (1 - min_d))
