"""Tie-break stress tests for the best-first searcher.

The oracle (:meth:`repro.model.scoring.Scorer` / ``Oracle``) breaks
score ties by ascending object id over the whole dataset.  The heap
must reproduce that even when *every* object scores identically — the
hard case, because node upper bounds then tie the object scores and a
node holding a smaller-id object must be expanded before any
equal-scoring object is emitted.  A previous heap layout used an oid
sentinel of ``-1`` for nodes, which only sorted nodes first while all
object ids were non-negative; these tests pin the kind-level ordering
fix with negative ids included.
"""

import pytest

from repro import (
    Dataset,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
)
from repro.index.kcr_tree import KcRTree


def _equal_score_world(oids):
    """Every object at the same location with the same doc: all scores
    tie exactly, so ordering is decided purely by the tie-break."""
    objects = [
        SpatialObject(oid=oid, loc=(0.25, 0.25), doc=frozenset({1, 2}))
        for oid in oids
    ]
    dataset = Dataset(objects, diagonal=2.0**0.5)
    query = SpatialKeywordQuery(
        loc=(0.75, 0.75), doc=frozenset({1, 2}), k=len(oids), alpha=0.5
    )
    return dataset, query


OID_SETS = [
    tuple(range(12)),  # plain ascending ids
    tuple(range(11, -1, -1)),  # insertion order reversed
    (-6, -5, -3, -1, 0, 2, 4, 7, 9, 11),  # negative ids in the mix
    (-12, -11, -10, -9, -8, -7, -6, -5),  # all negative
]


@pytest.mark.parametrize("tree_cls", [SetRTree, KcRTree])
@pytest.mark.parametrize("oids", OID_SETS)
@pytest.mark.parametrize("vectorize", [True, False])
def test_all_equal_scores_match_oracle(tree_cls, oids, vectorize):
    dataset, query = _equal_score_world(oids)
    tree = tree_cls(dataset, capacity=3)  # force several levels of ties
    searcher = TopKSearcher(tree, vectorize=vectorize)
    oracle = Oracle(dataset)
    got = searcher.top_k(query)
    assert [oid for _, oid in got] == oracle.top_k_ids(query)
    # scores bit-identical to the oracle's numpy arithmetic too
    scores = dict(zip((int(o) for o in oracle._oids), oracle.scores(query)))
    assert all(score == scores[oid] for score, oid in got)


@pytest.mark.parametrize("oids", OID_SETS)
@pytest.mark.parametrize("vectorize", [True, False])
def test_partial_k_respects_id_order(oids, vectorize):
    """With k < n, the returned subset must be the k smallest ids."""
    dataset, query = _equal_score_world(oids)
    query = SpatialKeywordQuery(loc=query.loc, doc=query.doc, k=3, alpha=0.5)
    tree = SetRTree(dataset, capacity=3)
    searcher = TopKSearcher(tree, vectorize=vectorize)
    got = [oid for _, oid in searcher.top_k(query)]
    assert got == sorted(oids)[:3]


@pytest.mark.parametrize("vectorize", [True, False])
def test_dominators_on_tied_scores(vectorize):
    """Rank determination counts only *strictly* better objects, so a
    fully tied dataset yields rank 1 and no dominators."""
    dataset, query = _equal_score_world(tuple(range(-4, 6)))
    tree = SetRTree(dataset, capacity=3)
    searcher = TopKSearcher(tree, vectorize=vectorize)
    result = searcher.rank_of_missing(query, [dataset.get(0)])
    assert result.rank == 1
    assert result.dominators == ()
    assert not result.aborted


@pytest.mark.parametrize("vectorize", [True, False])
def test_near_tie_layers(vectorize):
    """Two exact tie groups at different scores: group order by score,
    within-group order by id, across both index types."""
    near = [
        SpatialObject(oid=oid, loc=(0.2, 0.2), doc=frozenset({1, 2}))
        for oid in (5, -2, 9)
    ]
    far = [
        SpatialObject(oid=oid, loc=(0.8, 0.8), doc=frozenset({1, 2}))
        for oid in (3, -7, 0)
    ]
    dataset = Dataset(near + far, diagonal=2.0**0.5)
    query = SpatialKeywordQuery(
        loc=(0.2, 0.2), doc=frozenset({1, 2}), k=6, alpha=0.5
    )
    tree = SetRTree(dataset, capacity=2)
    searcher = TopKSearcher(tree, vectorize=vectorize)
    got = [oid for _, oid in searcher.top_k(query)]
    assert got == [-2, 5, 9, -7, 0, 3]
