"""Sharded index: bit-identical parity with the unsharded engine.

The sharding contract (DESIGN.md §4e) is that partitioning is an
execution detail: every answer — top-k results, why-not refinements,
ranks, tie-breaks — must equal the unsharded engine's exactly, and the
per-shard I/O ledger must be identical between simulate and process
modes.  These tests pin all of that, plus the read-only mutation
guards, persistence round-trip, and the manifest sanitizer kinds.
"""

from __future__ import annotations

import pytest

from repro import InvalidParameterError, WhyNotEngine
from repro.analysis.sanitize import check_shard_manifest
from repro.index.sharded import ShardedIndex, load_sharded, save_sharded
from repro.storage.faults import FaultInjector
from repro.storage.integrity import load_checked_json, save_checked_json

SHARD_COUNTS = (1, 2, 5)


@pytest.fixture(scope="module")
def sharded_engines(euro_small):
    dataset, _ = euro_small
    engines = {n: WhyNotEngine(dataset, shards=n) for n in SHARD_COUNTS}
    yield engines
    for engine in engines.values():
        engine.close()


@pytest.fixture(scope="module")
def process_engine(euro_small):
    dataset, _ = euro_small
    engine = WhyNotEngine(dataset, shards=3, shard_mode="process")
    yield engine
    engine.close()


class TestShardedParity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_top_k_parity(self, euro_engine, sharded_engines, euro_cases, n_shards):
        engine = sharded_engines[n_shards]
        for case in euro_cases:
            for k in (1, 5, 20):
                query = case.query.with_k(k)
                assert engine.top_k(query) == euro_engine.top_k(query)

    @pytest.mark.parametrize("method", ["basic", "advanced", "kcr"])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_answer_parity(
        self, euro_engine, sharded_engines, euro_cases, method, n_shards
    ):
        engine = sharded_engines[n_shards]
        for case in euro_cases:
            base = euro_engine.answer(case, method=method)
            answer = engine.answer(case, method=method)
            assert answer.refined == base.refined
            assert answer.initial_rank == base.initial_rank
            assert not answer.degraded

    def test_process_mode_same_answers_and_ledger(
        self, euro_engine, sharded_engines, process_engine, euro_small, euro_cases
    ):
        """Process workers must be invisible: same answers, same ledger."""
        dataset, _ = euro_small
        simulate = WhyNotEngine(dataset, shards=3)
        case = euro_cases[0]
        for method in ("advanced", "kcr"):
            base = euro_engine.answer(case, method=method)
            sim = simulate.answer(case, method=method)
            proc = process_engine.answer(case, method=method)
            assert sim.refined == base.refined
            assert proc.refined == base.refined
        ambient_faults = FaultInjector.from_env() is not None
        for kind in ("setr", "kcr"):
            sim_total = simulate.sharded_index.ledger_total(kind)
            proc_total = process_engine.sharded_index.ledger_total(kind)
            if ambient_faults:
                # The REPRO_FAULTS conftest hook seeds each pool's
                # injector by in-process creation order, which differs
                # across the worker fork boundary — retry/fault counters
                # are environment noise there.  The deterministic I/O
                # (the mode-invariance contract) must still match.
                for field in (
                    "page_reads",
                    "page_writes",
                    "node_fetches",
                    "buffer_hits",
                ):
                    assert getattr(sim_total, field) == getattr(
                        proc_total, field
                    ), field
            else:
                assert sim_total == proc_total
        simulate.close()

    def test_ledger_sums_over_shards(self, sharded_engines, euro_cases):
        """The global snapshot is exactly the sum of per-shard ledgers."""
        engine = sharded_engines[5]
        engine.answer(euro_cases[1], method="advanced")
        index = engine.sharded_index
        for kind in ("setr", "kcr"):
            by_hand = None
            for ledger in index.ledgers(kind).values():
                by_hand = ledger if by_hand is None else by_hand + ledger
            assert index.ledger_total(kind) == by_hand


class TestShardedGuards:
    def test_mutations_rejected(self, sharded_engines, euro_small):
        dataset, _ = euro_small
        engine = sharded_engines[2]
        obj = dataset.objects[0]
        with pytest.raises(InvalidParameterError):
            engine.insert(obj)
        with pytest.raises(InvalidParameterError):
            engine.remove(obj.oid)
        with pytest.raises(InvalidParameterError):
            engine.update_keywords(obj.oid, obj.doc)

    def test_unsupported_method_rejected(self, sharded_engines, euro_cases):
        with pytest.raises(InvalidParameterError):
            sharded_engines[2].answer(euro_cases[0], method="parallel-advanced")

    def test_zero_shards_rejected(self, euro_small):
        dataset, _ = euro_small
        with pytest.raises(InvalidParameterError):
            WhyNotEngine(dataset, shards=0)


class TestShardedPersistence:
    @pytest.fixture(scope="class")
    def saved(self, euro_small, euro_cases, tmp_path_factory):
        dataset, _ = euro_small
        engine = WhyNotEngine(dataset, shards=4)
        engine.answer(euro_cases[0], method="kcr")  # build + touch both trees
        directory = tmp_path_factory.mktemp("sharded")
        save_sharded(engine.sharded_index, directory)
        engine.close()
        return dataset, directory

    def test_round_trip_parity(self, saved, euro_engine, euro_cases):
        dataset, directory = saved
        index = load_sharded(directory, dataset)
        view_query = euro_cases[0].query
        searcher = index.searcher("setr")
        assert searcher.top_k(view_query) == euro_engine.top_k(view_query)

    def test_manifest_sanitizer_clean(self, saved):
        _, directory = saved
        report = check_shard_manifest(directory)
        assert not report.violations

    def test_manifest_orphan_detected(self, saved):
        _, directory = saved
        orphan = directory / "shard-99-setr.json"
        orphan.write_text("{}")
        try:
            kinds = {v.kind for v in check_shard_manifest(directory).violations}
            assert "shard-orphan-file" in kinds
        finally:
            orphan.unlink()

    def test_manifest_missing_file_detected(self, saved):
        _, directory = saved
        victim = sorted(directory.glob("shard-*-kcr.json"))[0]
        backup = victim.read_bytes()
        victim.unlink()
        try:
            kinds = {v.kind for v in check_shard_manifest(directory).violations}
            assert "shard-missing-file" in kinds
        finally:
            victim.write_bytes(backup)

    def _rewrite_manifest(self, directory, mutate):
        manifest = load_checked_json(
            directory / "manifest.json",
            kind="sharded index",
            supported_versions=(2,),
            checksum_required_from=2,
        )
        mutate(manifest)
        body = {
            k: v
            for k, v in manifest.items()
            if k not in ("format_version", "checksum")
        }
        save_checked_json(directory / "manifest.json", body, version=2)
        return manifest

    def test_manifest_ledger_mismatch_detected(self, saved):
        _, directory = saved

        def tamper(manifest):
            manifest["ledger_total"]["setr"]["page_reads"] += 1

        self._rewrite_manifest(directory, tamper)
        try:
            kinds = {v.kind for v in check_shard_manifest(directory).violations}
            assert "shard-ledger-mismatch" in kinds
        finally:
            def restore(manifest):
                manifest["ledger_total"]["setr"]["page_reads"] -= 1

            self._rewrite_manifest(directory, restore)

    def test_manifest_tile_overlap_detected(self, saved):
        _, directory = saved
        original = load_checked_json(
            directory / "manifest.json",
            kind="sharded index",
            supported_versions=(2,),
            checksum_required_from=2,
        )["shards"][0]["rect"]

        def tamper(manifest):
            # Stretching tile 0 over the whole space guarantees a
            # strict interior overlap with every other tile.
            manifest["shards"][0]["rect"] = list(manifest["bounds"])

        self._rewrite_manifest(directory, tamper)
        try:
            kinds = {v.kind for v in check_shard_manifest(directory).violations}
            assert "shard-tile-overlap" in kinds
        finally:
            def restore(manifest):
                manifest["shards"][0]["rect"] = original

            self._rewrite_manifest(directory, restore)


class TestShardedDeterminism:
    def test_fresh_builds_identical_ledgers(self, euro_small, euro_cases):
        dataset, _ = euro_small
        totals = []
        for _ in range(2):
            engine = WhyNotEngine(dataset, shards=3)
            engine.answer(euro_cases[2], method="advanced")
            totals.append(
                {
                    kind: engine.sharded_index.ledger_total(kind)
                    for kind in ("setr", "kcr")
                }
            )
            engine.close()
        if FaultInjector.from_env() is not None:
            # Ambient REPRO_FAULTS forks a differently-seeded injector
            # into each build, so retry/fault counters are noise; the
            # deterministic I/O must still be build-invariant.
            for kind in ("setr", "kcr"):
                for field in (
                    "page_reads",
                    "page_writes",
                    "node_fetches",
                    "buffer_hits",
                ):
                    assert getattr(totals[0][kind], field) == getattr(
                        totals[1][kind], field
                    ), (kind, field)
        else:
            assert totals[0] == totals[1]

    def test_single_shard_is_unsharded_plan(self, euro_small):
        """One shard degenerates to a single tile holding everything."""
        dataset, _ = euro_small
        index = ShardedIndex.build(dataset, 1)
        assert len(index.shards) == 1
        assert len(index.shards[0].dataset) == len(dataset)
