"""Tests for dynamic R-tree insertion with summary maintenance."""

import numpy as np
import pytest

from repro import (
    Dataset,
    DatasetError,
    IndexStructureError,
    InvertedFileIndex,
    KcRTree,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
    WhyNotEngine,
    WhyNotQuestion,
    make_euro_like,
)


def _split_dataset(n=400, keep=200, seed=31):
    full, _ = make_euro_like(n, seed=seed)
    objects = list(full.objects)
    initial = Dataset(objects[:keep], diagonal=full.diagonal)
    return initial, objects[keep:], full


def _score_multiset(oracle, dataset, query, oids):
    scores = oracle.scores(query)
    row = {o.oid: i for i, o in enumerate(dataset.objects)}
    return sorted(round(scores[row[oid]], 10) for oid in oids)


class TestDatasetAdd:
    def test_add_updates_statistics(self):
        ds = Dataset(
            [SpatialObject(oid=0, loc=(0.1, 0.1), doc=frozenset({1}))],
            diagonal=1.0,
        )
        ds.add(SpatialObject(oid=1, loc=(0.2, 0.2), doc=frozenset({1, 2})))
        assert len(ds) == 2
        assert ds.frequency(1) == 2
        assert ds.frequency(2) == 1
        assert ds.get(1).doc == {1, 2}

    def test_duplicate_id_rejected(self):
        ds = Dataset(
            [SpatialObject(oid=0, loc=(0.1, 0.1), doc=frozenset({1}))],
            diagonal=1.0,
        )
        with pytest.raises(DatasetError):
            ds.add(SpatialObject(oid=0, loc=(0.5, 0.5), doc=frozenset({2})))

    def test_diagonal_fixed(self):
        ds = Dataset(
            [SpatialObject(oid=0, loc=(0.0, 0.0), doc=frozenset({1}))],
            diagonal=1.0,
        )
        ds.add(SpatialObject(oid=1, loc=(5.0, 5.0), doc=frozenset({1})))
        assert ds.diagonal == 1.0


class TestTreeInsertion:
    @pytest.mark.parametrize("tree_cls", [SetRTree, KcRTree])
    def test_structure_valid_after_inserts(self, tree_cls):
        initial, rest, _ = _split_dataset()
        tree = tree_cls(initial, capacity=8)
        for obj in rest:
            initial.add(obj)
            tree.insert(obj)
        tree.validate()

    @pytest.mark.parametrize("tree_cls", [SetRTree, KcRTree])
    def test_top_k_correct_after_inserts(self, tree_cls):
        initial, rest, full = _split_dataset()
        tree = tree_cls(initial, capacity=8)
        for obj in rest:
            initial.add(obj)
            tree.insert(obj)
        oracle = Oracle(initial)
        searcher = TopKSearcher(tree)
        rng = np.random.default_rng(5)
        for _ in range(4):
            seed_obj = initial.objects[int(rng.integers(0, len(initial)))]
            doc = frozenset(list(seed_obj.doc)[:3])
            query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=12)
            got = [oid for _, oid in searcher.top_k(query)]
            expected = oracle.top_k_ids(query)
            assert _score_multiset(oracle, initial, query, got) == _score_multiset(
                oracle, initial, query, expected
            )

    def test_setr_payloads_consistent_after_inserts(self):
        initial, rest, _ = _split_dataset(n=150, keep=60)
        tree = SetRTree(initial, capacity=4)
        for obj in rest:
            initial.add(obj)
            tree.insert(obj)
        # every node's (union, intersection) must match its subtree
        stack = [(tree.root_id, tree.root_summary_record)]
        while stack:
            node_id, aux = stack.pop()
            union, intersection = tree.fetch_set_pair(aux)
            docs = []
            inner = [node_id]
            while inner:
                node = tree.buffer.fetch(inner.pop())
                if node.is_leaf:
                    docs.extend(tree.fetch_doc(e.doc_record) for e in node.entries)
                else:
                    inner.extend(e.child_id for e in node.entries)
            assert union == frozenset().union(*docs)
            assert intersection == frozenset.intersection(*docs)
            node = tree.buffer.fetch(node_id)
            if not node.is_leaf:
                stack.extend((e.child_id, e.aux_record) for e in node.entries)

    def test_kcr_counts_consistent_after_inserts(self):
        initial, rest, _ = _split_dataset(n=150, keep=60)
        tree = KcRTree(initial, capacity=4)
        for obj in rest:
            initial.add(obj)
            tree.insert(obj)
        stack = [(tree.root_id, tree.root_summary_record)]
        while stack:
            node_id, aux = stack.pop()
            cnt, kcm = tree.fetch_kcm(aux)
            docs = []
            inner = [node_id]
            while inner:
                node = tree.buffer.fetch(inner.pop())
                if node.is_leaf:
                    docs.extend(tree.fetch_doc(e.doc_record) for e in node.entries)
                else:
                    inner.extend(e.child_id for e in node.entries)
            assert cnt == len(docs)
            expected = {}
            for doc in docs:
                for term in doc:
                    expected[term] = expected.get(term, 0) + 1
            assert kcm == expected
            node = tree.buffer.fetch(node_id)
            if not node.is_leaf:
                stack.extend((e.child_id, e.aux_record) for e in node.entries)

    def test_insert_unknown_object_rejected(self):
        initial, rest, _ = _split_dataset(n=60, keep=50)
        tree = SetRTree(initial, capacity=8)
        with pytest.raises(IndexStructureError):
            tree.insert(rest[0])  # not added to the dataset first

    def test_root_split_grows_height(self):
        objects = [
            SpatialObject(oid=i, loc=(i / 20.0, i / 20.0), doc=frozenset({i % 3}))
            for i in range(3)
        ]
        ds = Dataset(objects, diagonal=2.0**0.5)
        tree = SetRTree(ds, capacity=4)
        assert tree.height == 1
        for i in range(3, 30):
            obj = SpatialObject(
                oid=i, loc=(i / 40.0, (i * 7 % 40) / 40.0), doc=frozenset({i % 3})
            )
            ds.add(obj)
            tree.insert(obj)
        assert tree.height >= 2
        tree.validate()


class TestInvertedInsertion:
    def test_postings_updated(self):
        initial, rest, _ = _split_dataset(n=120, keep=80)
        index = InvertedFileIndex(initial, capacity=8)
        for obj in rest:
            initial.add(obj)
            index.insert(obj)
        oracle = Oracle(initial)
        seed_obj = initial.objects[10]
        doc = frozenset(list(seed_obj.doc)[:2])
        query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=8)
        got = [oid for _, oid in index.top_k(query)]
        expected = oracle.top_k_ids(query)
        assert _score_multiset(oracle, initial, query, got) == _score_multiset(
            oracle, initial, query, expected
        )


class TestEngineInsertion:
    def test_why_not_answer_matches_fresh_engine(self):
        initial, rest, full = _split_dataset(n=500, keep=400, seed=77)
        engine = WhyNotEngine(initial)
        _ = engine.setr_tree  # build before the inserts
        _ = engine.kcr_tree
        for obj in rest:
            engine.insert(obj)

        fresh = WhyNotEngine(Dataset(list(initial.objects), diagonal=initial.diagonal))
        oracle = Oracle(initial)
        rng = np.random.default_rng(13)
        checked = 0
        attempts = 0
        while checked < 2 and attempts < 60:
            attempts += 1
            seed_obj = initial.objects[int(rng.integers(0, len(initial)))]
            doc = frozenset(list(seed_obj.doc)[:3])
            if len(doc) < 2:
                continue
            query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5)
            try:
                missing = oracle.object_at_rank(query, 16)
            except ValueError:
                continue
            if len(initial.get(missing).doc - query.doc) > 5:
                continue
            question = WhyNotQuestion(query, (missing,), lam=0.5)
            for method in ("advanced", "kcr"):
                a = engine.answer(question, method=method)
                b = fresh.answer(question, method=method)
                assert a.refined.penalty == pytest.approx(b.refined.penalty)
            checked += 1
        assert checked == 2
