"""Unit and integration tests for the best-first top-k / rank search."""

import numpy as np
import pytest

from repro import (
    KcRTree,
    Oracle,
    Scorer,
    SetRTree,
    SpatialKeywordQuery,
    TopKSearcher,
)


@pytest.fixture(scope="module")
def setup(euro_small):
    dataset, _ = euro_small
    setr = SetRTree(dataset, capacity=16)
    kcr = KcRTree(dataset, capacity=16)
    oracle = Oracle(dataset)
    return dataset, setr, kcr, oracle


def _queries(dataset, n=5, k=10, alpha=0.5, seed=13):
    rng = np.random.default_rng(seed)
    queries = []
    while len(queries) < n:
        obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(obj.doc)[:3])
        if not doc:
            continue
        queries.append(SpatialKeywordQuery(loc=obj.loc, doc=doc, k=k, alpha=alpha))
    return queries


class TestTopKAgainstOracle:
    def test_setr_top_k_matches_oracle(self, setup):
        dataset, setr, _, oracle = setup
        searcher = TopKSearcher(setr)
        for query in _queries(dataset, n=6):
            got = [oid for _, oid in searcher.top_k(query)]
            expected = oracle.top_k_ids(query)
            # Permutations within score ties are allowed; compare the
            # score multisets instead of raw id lists.
            scores = oracle.scores(query)
            row_of = {o.oid: i for i, o in enumerate(dataset.objects)}
            got_scores = sorted(round(scores[row_of[i]], 12) for i in got)
            exp_scores = sorted(round(scores[row_of[i]], 12) for i in expected)
            assert got_scores == exp_scores

    def test_kcr_top_k_matches_oracle(self, setup):
        dataset, _, kcr, oracle = setup
        searcher = TopKSearcher(kcr)
        for query in _queries(dataset, n=4, seed=17):
            got = [oid for _, oid in searcher.top_k(query)]
            expected = oracle.top_k_ids(query)
            scores = oracle.scores(query)
            row_of = {o.oid: i for i, o in enumerate(dataset.objects)}
            assert sorted(round(scores[row_of[i]], 12) for i in got) == sorted(
                round(scores[row_of[i]], 12) for i in expected
            )

    def test_top_k_scores_descending(self, setup):
        dataset, setr, _, _ = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, k=25)[0]
        results = searcher.top_k(query)
        values = [s for s, _ in results]
        assert all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))

    def test_k_larger_than_dataset(self, setup):
        dataset, setr, _, _ = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1)[0].with_k(len(dataset) + 50)
        assert len(searcher.top_k(query)) == len(dataset)


class TestRankDetermination:
    def test_rank_matches_oracle(self, setup):
        dataset, setr, _, oracle = setup
        searcher = TopKSearcher(setr)
        rng = np.random.default_rng(3)
        for query in _queries(dataset, n=4, seed=23):
            oid = int(rng.integers(0, len(dataset)))
            obj = dataset.get(dataset.objects[oid].oid)
            result = searcher.rank_of_missing(query, [obj])
            assert not result.aborted
            assert result.rank == oracle.rank(obj.oid, query)

    def test_rank_with_keyword_override(self, setup):
        dataset, setr, _, oracle = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, seed=29)[0]
        keywords = frozenset(list(query.doc)[:1])
        obj = dataset.objects[42]
        result = searcher.rank_of_missing(query, [obj], keywords=keywords)
        assert result.rank == oracle.rank(obj.oid, query, keywords)

    def test_rank_of_missing_set_is_max(self, setup):
        dataset, setr, _, oracle = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, seed=31)[0]
        objs = [dataset.objects[10], dataset.objects[77], dataset.objects[300]]
        result = searcher.rank_of_missing(query, objs)
        assert result.rank == oracle.rank_of_set([o.oid for o in objs], query)

    def test_dominators_are_strictly_better(self, setup):
        dataset, setr, _, _ = setup
        searcher = TopKSearcher(setr)
        scorer = Scorer(dataset)
        query = _queries(dataset, n=1, seed=37)[0]
        obj = dataset.objects[5]
        result = searcher.rank_of_missing(query, [obj])
        threshold = scorer.st(obj, query)
        for oid in result.dominators:
            assert scorer.st(dataset.get(oid), query) > threshold
        assert result.rank == len(result.dominators) + 1

    def test_early_stop_aborts(self, setup):
        dataset, setr, _, oracle = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, seed=41)[0]
        # Pick an object with a deep rank, then stop far before it.
        deep_obj = max(
            (dataset.objects[i] for i in range(0, len(dataset), 53)),
            key=lambda o: oracle.rank(o.oid, query),
        )
        true_rank = oracle.rank(deep_obj.oid, query)
        if true_rank < 20:
            pytest.skip("workload produced no deep object")
        result = searcher.rank_of_missing(query, [deep_obj], stop_limit=5)
        assert result.aborted
        assert result.rank is None
        assert len(result.dominators) == 5

    def test_stop_limit_above_rank_completes(self, setup):
        dataset, setr, _, oracle = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, seed=43)[0]
        obj = dataset.objects[9]
        rank = oracle.rank(obj.oid, query)
        result = searcher.rank_of_missing(query, [obj], stop_limit=rank + 10)
        assert not result.aborted
        assert result.rank == rank


class TestIOBehaviour:
    def test_search_charges_io_when_cold(self, setup):
        dataset, setr, _, _ = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, seed=47)[0]
        setr.reset_buffer()
        before = setr.stats.snapshot()
        searcher.top_k(query)
        delta = setr.stats.snapshot() - before
        assert delta.page_reads > 0
        assert delta.node_fetches > 0

    def test_warm_search_cheaper(self, setup):
        dataset, setr, _, _ = setup
        searcher = TopKSearcher(setr)
        query = _queries(dataset, n=1, seed=53)[0]
        setr.reset_buffer()
        before = setr.stats.snapshot()
        searcher.top_k(query)
        cold = (setr.stats.snapshot() - before).page_reads
        before = setr.stats.snapshot()
        searcher.top_k(query)
        warm = (setr.stats.snapshot() - before).page_reads
        assert warm < cold
