"""Tests for inverted-file postings maintenance under insertion."""

import pytest

from repro import (
    Dataset,
    InvertedFileIndex,
    Oracle,
    SpatialKeywordQuery,
    SpatialObject,
    make_euro_like,
)


@pytest.fixture()
def setup():
    full, _ = make_euro_like(150, seed=97)
    dataset = Dataset(list(full.objects), diagonal=full.diagonal)
    return dataset, InvertedFileIndex(dataset, capacity=8)


class TestPostingsMaintenance:
    def test_insert_with_existing_terms(self, setup):
        dataset, index = setup
        seed_obj = dataset.objects[3]
        term = next(iter(seed_obj.doc))
        obj = SpatialObject(oid=10**6, loc=(0.5, 0.5), doc=frozenset({term}))
        dataset.add(obj)
        index.insert(obj)
        scores, _ = index._textual_scores(frozenset({term}))
        assert obj.oid in scores
        assert scores[obj.oid] == pytest.approx(1.0)

    def test_insert_with_fresh_term(self, setup):
        dataset, index = setup
        fresh_term = max(dataset.doc_frequency) + 1
        obj = SpatialObject(
            oid=10**6, loc=(0.3, 0.3), doc=frozenset({fresh_term})
        )
        dataset.add(obj)
        index.insert(obj)
        query = SpatialKeywordQuery(
            loc=(0.3, 0.3), doc=frozenset({fresh_term}), k=1, alpha=0.4
        )
        assert index.top_k(query)[0][1] == obj.oid

    def test_postings_update_charges_writes(self, setup):
        dataset, index = setup
        seed_obj = dataset.objects[0]
        obj = SpatialObject(oid=10**6, loc=(0.5, 0.5), doc=seed_obj.doc)
        dataset.add(obj)
        before = index.stats.page_writes
        index.insert(obj)
        assert index.stats.page_writes > before

    def test_rank_search_correct_after_growth(self, setup):
        dataset, index = setup
        for i in range(20):
            obj = SpatialObject(
                oid=10**6 + i,
                loc=(0.1 + 0.04 * i, 0.2),
                doc=frozenset({i % 5, 5 + i % 3}),
            )
            dataset.add(obj)
            index.insert(obj)
        oracle = Oracle(dataset)
        query = SpatialKeywordQuery(
            loc=(0.3, 0.2), doc=frozenset({1, 6}), k=5
        )
        target = dataset.get(10**6 + 7)
        result = index.rank_of_missing(query, [target])
        assert result.rank == oracle.rank(target.oid, query)
