"""Streaming STR bulk load: bounded memory, in-memory equivalence.

The loader's contract is that it never holds the full dataset: pass 1
keeps only a reservoir sample, pass 2 keeps per-tile flush buffers plus
(at materialisation) one tile at a time.  ``LoadStats.peak_resident``
records the high-water mark, and the bound below is structural — it
holds for any stream, not just this one.  The second contract is that
streaming and in-memory loads build the *same* shard set.
"""

from __future__ import annotations

from repro import WhyNotEngine
from repro.data.stream import stream_gn_like
from repro.index.sharded import (
    DEFAULT_SAMPLE_SIZE,
    ShardedIndex,
    load_tile_datasets,
)

N_OBJECTS = 6_000
N_TILES = 6
SAMPLE = 512
FLUSH = 128


class _CountingFactory:
    """Wraps a stream factory; counts passes and concurrent iterators."""

    def __init__(self, factory):
        self._factory = factory
        self.passes = 0

    def __call__(self):
        self.passes += 1
        return self._factory()


def _load(tmp_path, **kwargs):
    stream, config = stream_gn_like(N_OBJECTS, seed=2016, batch_size=1_000)
    factory = _CountingFactory(stream)
    plan, tiles, stats, bounds = load_tile_datasets(
        factory,
        N_TILES,
        name=config.name,
        sample_size=kwargs.pop("sample_size", SAMPLE),
        flush_every=kwargs.pop("flush_every", FLUSH),
        spill_dir=tmp_path,
        **kwargs,
    )
    return factory, plan, tiles, stats, bounds


class TestStreamingLoader:
    def test_two_passes_and_peak_bound(self, tmp_path):
        factory, _, tiles, stats, _ = _load(tmp_path)
        assert factory.passes == 2
        assert stats.n_objects == N_OBJECTS
        assert sum(len(tile) for tile in tiles) == N_OBJECTS
        # Structural bound: reservoir sample + the largest tile + one
        # unflushed buffer per tile.  Holding the whole stream would
        # need N_OBJECTS resident and must violate this.
        bound = stats.max_tile_objects + SAMPLE + N_TILES * FLUSH
        assert stats.peak_resident <= bound
        assert stats.peak_resident < N_OBJECTS

    def test_round_trip_matches_in_memory(self, tmp_path):
        _, plan_s, tiles_s, _, bounds_s = _load(tmp_path)
        stream, config = stream_gn_like(N_OBJECTS, seed=2016, batch_size=1_000)
        plan_m, tiles_m, _, bounds_m = load_tile_datasets(
            stream,
            N_TILES,
            name=config.name,
            sample_size=SAMPLE,
            in_memory=True,
        )
        assert plan_s.to_payload() == plan_m.to_payload()
        assert bounds_s == bounds_m
        assert len(tiles_s) == len(tiles_m)
        for tile_s, tile_m in zip(tiles_s, tiles_m):
            assert tile_s.diagonal == tile_m.diagonal
            assert [o.oid for o in tile_s.objects] == [
                o.oid for o in tile_m.objects
            ]
            assert [o.loc for o in tile_s.objects] == [
                o.loc for o in tile_m.objects
            ]

    def test_spill_files_cleaned_up(self, tmp_path):
        _load(tmp_path)
        assert list(tmp_path.glob("*")) == []

    def test_build_streaming_answers_match_unsharded(self, tmp_path):
        stream, config = stream_gn_like(N_OBJECTS, seed=2016, batch_size=1_000)
        index, stats = ShardedIndex.build_streaming(
            stream,
            4,
            name=config.name,
            sample_size=SAMPLE,
            flush_every=FLUSH,
            spill_dir=tmp_path,
        )
        assert stats.peak_resident < N_OBJECTS
        dataset = index.dataset
        assert len(dataset) == N_OBJECTS
        unsharded = WhyNotEngine(dataset)
        obj = dataset.objects[123]
        from repro import SpatialKeywordQuery

        query = SpatialKeywordQuery(
            loc=obj.loc, doc=frozenset(list(obj.doc)[:2]), k=10
        )
        searcher = index.searcher("setr")
        assert searcher.top_k(query) == unsharded.top_k(query)
        index.close()

    def test_default_sample_size_is_bounded(self):
        # The loader's defaults must keep the pre-pass sample small
        # relative to the million-object target of the full sweep.
        assert DEFAULT_SAMPLE_SIZE <= 4_096
