"""White-box tests for quadratic split and the min-fill rule."""

import pytest

from repro import Dataset, SetRTree, SpatialObject
from repro.index.rtree import _quadratic_split
from repro.model.geometry import Rect


def _entries(points):
    return [
        SpatialObject(oid=i, loc=p, doc=frozenset({0})) for i, p in enumerate(points)
    ]


def _rect_of(entry):
    return Rect.from_point(entry.loc)


class TestQuadraticSplit:
    def test_partitions_everything_once(self):
        entries = _entries([(0.1 * i, 0.05 * i) for i in range(9)])
        a, b = _quadratic_split(entries, _rect_of, min_fill=3)
        assert sorted(e.oid for e in a + b) == list(range(9))
        assert not ({e.oid for e in a} & {e.oid for e in b})

    def test_min_fill_respected(self):
        entries = _entries([(0.1 * i, 0.0) for i in range(10)])
        for min_fill in (1, 2, 4):
            a, b = _quadratic_split(entries, _rect_of, min_fill=min_fill)
            assert len(a) >= min_fill
            assert len(b) >= min_fill

    def test_separates_two_clusters(self):
        cluster_a = [(0.01 * i, 0.01 * i) for i in range(4)]
        cluster_b = [(0.9 + 0.01 * i, 0.9) for i in range(4)]
        entries = _entries(cluster_a + cluster_b)
        a, b = _quadratic_split(entries, _rect_of, min_fill=2)
        groups = ({e.oid for e in a}, {e.oid for e in b})
        assert {0, 1, 2, 3} in groups
        assert {4, 5, 6, 7} in groups

    def test_two_entries(self):
        entries = _entries([(0.0, 0.0), (1.0, 1.0)])
        a, b = _quadratic_split(entries, _rect_of, min_fill=1)
        assert len(a) == len(b) == 1


class TestMinFillRule:
    @pytest.mark.parametrize(
        "capacity,expected",
        [(2, 1), (3, 1), (4, 2), (5, 2), (10, 4), (100, 40)],
    )
    def test_guttman_m(self, capacity, expected):
        dataset = Dataset(
            [SpatialObject(oid=0, loc=(0.5, 0.5), doc=frozenset({1}))],
            diagonal=1.0,
        )
        tree = SetRTree(dataset, capacity=capacity)
        assert tree.min_fill == expected

    def test_min_fill_at_most_half_capacity(self):
        dataset = Dataset(
            [SpatialObject(oid=0, loc=(0.5, 0.5), doc=frozenset({1}))],
            diagonal=1.0,
        )
        for capacity in range(2, 30):
            tree = SetRTree(dataset, capacity=capacity)
            assert 1 <= tree.min_fill <= capacity // 2
