"""Tests for index save/load."""

import json

import numpy as np
import pytest

from repro import (
    Dataset,
    IndexStructureError,
    KcRTree,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    TopKSearcher,
    load_index,
    make_euro_like,
    save_index,
)


@pytest.fixture(scope="module")
def dataset():
    return make_euro_like(300, seed=41)[0]


def _structure_signature(tree):
    """Nested tuple of (level, sorted leaf oid groups) — tree shape."""

    def walk(node_id):
        node = tree.buffer.fetch(node_id)
        if node.is_leaf:
            return ("leaf", node.level, tuple(sorted(e.oid for e in node.entries)))
        return (
            "branch",
            node.level,
            tuple(sorted(walk(e.child_id) for e in node.entries)),
        )

    return walk(tree.root_id)


class TestRoundTrip:
    @pytest.mark.parametrize("tree_cls", [SetRTree, KcRTree])
    def test_shape_preserved(self, dataset, tmp_path, tree_cls):
        tree = tree_cls(dataset, capacity=8)
        path = tmp_path / "index.json"
        save_index(tree, path)
        loaded = load_index(path, dataset)
        assert type(loaded) is tree_cls
        assert loaded.capacity == tree.capacity
        assert loaded.height == tree.height
        assert loaded.node_count == tree.node_count
        assert _structure_signature(loaded) == _structure_signature(tree)
        loaded.validate()

    def test_queries_identical_after_load(self, dataset, tmp_path):
        tree = SetRTree(dataset, capacity=8)
        path = tmp_path / "index.json"
        save_index(tree, path)
        loaded = load_index(path, dataset)
        oracle = Oracle(dataset)
        rng = np.random.default_rng(3)
        for _ in range(3):
            obj = dataset.objects[int(rng.integers(0, len(dataset)))]
            doc = frozenset(list(obj.doc)[:3])
            query = SpatialKeywordQuery(loc=obj.loc, doc=doc, k=8)
            original = [oid for _, oid in TopKSearcher(tree).top_k(query)]
            reloaded = [oid for _, oid in TopKSearcher(loaded).top_k(query)]
            assert original == reloaded  # identical shape -> identical order

    def test_grown_tree_shape_survives(self, tmp_path):
        """The point of persistence: an insertion-grown tree has a
        shape STR would never produce; reload must preserve it."""
        full, _ = make_euro_like(200, seed=43)
        objects = list(full.objects)
        dataset = Dataset(objects[:100], diagonal=full.diagonal)
        tree = KcRTree(dataset, capacity=4)
        for obj in objects[100:]:
            dataset.add(obj)
            tree.insert(obj)
        path = tmp_path / "grown.json"
        save_index(tree, path)
        loaded = load_index(path, dataset)
        assert _structure_signature(loaded) == _structure_signature(tree)
        loaded.validate()

    def test_loaded_tree_accepts_inserts(self, dataset, tmp_path):
        tree = SetRTree(dataset, capacity=8)
        path = tmp_path / "index.json"
        save_index(tree, path)
        grown = Dataset(list(dataset.objects), diagonal=dataset.diagonal)
        loaded = load_index(path, grown)
        from repro import SpatialObject

        extra = SpatialObject(oid=10**6, loc=(0.5, 0.5), doc=frozenset({1, 2}))
        grown.add(extra)
        loaded.insert(extra)
        loaded.validate()


class TestErrors:
    def test_bad_version(self, dataset, tmp_path):
        from repro import PersistenceError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_index(path, dataset)

    def test_unknown_tree_type(self, dataset, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"format_version": 1, "tree_type": "btree"}),
            encoding="utf-8",
        )
        with pytest.raises(IndexStructureError):
            load_index(path, dataset)

    def test_missing_object_rejected(self, dataset, tmp_path):
        tree = SetRTree(dataset, capacity=8)
        path = tmp_path / "index.json"
        save_index(tree, path)
        truncated = Dataset(
            list(dataset.objects)[:-5], diagonal=dataset.diagonal
        )
        from repro import DatasetError

        with pytest.raises(DatasetError):
            load_index(path, truncated)

    def test_unsupported_tree_type_on_save(self, dataset, tmp_path):
        from repro import InvertedFileIndex

        index = InvertedFileIndex(dataset)
        with pytest.raises(IndexStructureError):
            save_index(index.tree, tmp_path / "x.json")
