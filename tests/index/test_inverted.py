"""Tests for the R-tree + inverted-file baseline index."""

import numpy as np
import pytest

from repro import InvertedFileIndex, Oracle, SpatialKeywordQuery


@pytest.fixture(scope="module")
def inverted(euro_small):
    dataset, _ = euro_small
    return InvertedFileIndex(dataset, capacity=16)


def _queries(dataset, n=4, seed=61, k=10):
    rng = np.random.default_rng(seed)
    queries = []
    while len(queries) < n:
        obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(obj.doc)[:3])
        if doc:
            queries.append(SpatialKeywordQuery(loc=obj.loc, doc=doc, k=k))
    return queries


class TestCorrectness:
    def test_top_k_matches_oracle(self, inverted, euro_small, euro_oracle):
        dataset, _ = euro_small
        row_of = {o.oid: i for i, o in enumerate(dataset.objects)}
        for query in _queries(dataset):
            got = [oid for _, oid in inverted.top_k(query)]
            expected = euro_oracle.top_k_ids(query)
            scores = euro_oracle.scores(query)
            assert sorted(round(scores[row_of[i]], 12) for i in got) == sorted(
                round(scores[row_of[i]], 12) for i in expected
            )

    def test_rank_matches_oracle(self, inverted, euro_small, euro_oracle):
        dataset, _ = euro_small
        query = _queries(dataset, n=1, seed=67)[0]
        for oid in (3, 99, 500):
            obj = dataset.get(oid)
            result = inverted.rank_of_missing(query, [obj])
            assert result.rank == euro_oracle.rank(oid, query)

    def test_unknown_keyword_harmless(self, inverted, euro_small):
        dataset, _ = euro_small
        query = SpatialKeywordQuery(
            loc=(0.5, 0.5), doc=frozenset({10**6}), k=3
        )
        results = inverted.top_k(query)
        assert len(results) == 3  # purely spatial ranking

    def test_early_stop_contract(self, inverted, euro_small, euro_oracle):
        dataset, _ = euro_small
        query = _queries(dataset, n=1, seed=71)[0]
        deep = max(
            (dataset.objects[i] for i in range(0, len(dataset), 97)),
            key=lambda o: euro_oracle.rank(o.oid, query),
        )
        if euro_oracle.rank(deep.oid, query) <= 5:
            pytest.skip("no deep object in sample")
        result = inverted.rank_of_missing(query, [deep], stop_limit=5)
        assert result.aborted and result.rank is None


class TestPruningWeakness:
    def test_more_io_than_setr_tree(self, inverted, euro_small, euro_engine):
        """The motivating observation for hybrid indexes: text-blind
        nodes prune poorly, so the baseline reads more pages for the
        same rank determination."""
        dataset, _ = euro_small
        from repro import TopKSearcher

        query = _queries(dataset, n=1, seed=73)[0]
        missing = [dataset.objects[700]]

        inverted.reset_buffer()
        before = inverted.stats.snapshot()
        inverted.rank_of_missing(query, missing)
        baseline_io = (inverted.stats.snapshot() - before).page_reads

        setr = euro_engine.setr_tree
        setr.reset_buffer()
        before = setr.stats.snapshot()
        TopKSearcher(setr).rank_of_missing(query, missing)
        hybrid_io = (setr.stats.snapshot() - before).page_reads

        assert baseline_io >= hybrid_io
