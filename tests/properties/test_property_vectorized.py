"""Parity harness for the vectorized scoring kernels.

The contract under test (see :mod:`repro.core.vectorized`): **the
vectorized path is an optimization, never a semantics change**.  On
randomized micro worlds, every observable — ST scores, top-k order,
rank determination, why-not answers, penalty values — must be
*bit-identical* between the scalar and vectorized paths, across all
three similarity models and on the degraded ScanFallback path.  The
packed columnar layout must also round-trip through index persistence
v2 and survive dynamic vocabulary widening.

No ``approx`` anywhere in this file: every comparison is ``==`` on raw
floats.  The CI ``bench`` job re-runs this suite with
``REPRO_VECTORIZE=0`` to prove the scalar fallback answers match too.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    KcRAlgorithm,
    KcRTree,
    ScanFallback,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
    WhyNotQuestion,
    load_index,
    save_index,
)
from repro.core.penalty import PenaltyModel
from repro.core.vectorized import (
    PackedLeaf,
    VocabularyIndex,
    batch_penalties,
    batch_similarity,
    leaf_scores,
)
from repro.model.similarity import COSINE, DICE, JACCARD

MODELS = [JACCARD, DICE, COSINE]


@st.composite
def micro_worlds(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    objects = []
    for i in range(n):
        x = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        y = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        # min_size=0: empty documents exercise the empty-operand
        # convention through the whole stack
        doc = draw(st.frozensets(st.integers(0, 7), min_size=0, max_size=4))
        objects.append(SpatialObject(oid=i, loc=(x, y), doc=doc))
    dataset = Dataset(objects, diagonal=2.0**0.5)
    qx = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qy = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qdoc = draw(st.frozensets(st.integers(0, 9), min_size=1, max_size=3))
    k = draw(st.integers(min_value=1, max_value=n))
    alpha = draw(st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
    query = SpatialKeywordQuery(loc=(qx, qy), doc=qdoc, k=k, alpha=alpha)
    target = draw(st.integers(min_value=0, max_value=n - 1))
    return dataset, query, target


class TestSearcherParity:
    """TopKSearcher: vectorized leaf expansion vs the scalar loop."""

    @given(micro_worlds(), st.sampled_from(MODELS))
    @settings(max_examples=60, deadline=None)
    def test_top_k_bit_identical(self, world, model):
        dataset, query, _ = world
        tree = SetRTree(dataset, capacity=4)
        scalar = TopKSearcher(tree, model, vectorize=False)
        vector = TopKSearcher(tree, model, vectorize=True)
        assert vector.top_k(query) == scalar.top_k(query)

    @given(micro_worlds(), st.sampled_from(MODELS))
    @settings(max_examples=40, deadline=None)
    def test_rank_and_dominators_bit_identical(self, world, model):
        dataset, query, target = world
        tree = SetRTree(dataset, capacity=4)
        scalar = TopKSearcher(tree, model, vectorize=False)
        vector = TopKSearcher(tree, model, vectorize=True)
        missing = [dataset.get(target)]
        got = vector.rank_of_missing(query, missing)
        want = scalar.rank_of_missing(query, missing)
        assert (got.rank, got.dominators, got.aborted) == (
            want.rank,
            want.dominators,
            want.aborted,
        )

    @given(micro_worlds())
    @settings(max_examples=30, deadline=None)
    def test_kcr_tree_top_k_parity(self, world):
        dataset, query, _ = world
        tree = KcRTree(dataset, capacity=4)
        scalar = TopKSearcher(tree, vectorize=False)
        vector = TopKSearcher(tree, vectorize=True)
        assert vector.top_k(query) == scalar.top_k(query)


class TestScanFallbackParity:
    """The degraded path shares the kernels and the contract."""

    @given(micro_worlds(), st.sampled_from(MODELS))
    @settings(max_examples=40, deadline=None)
    def test_top_k_and_rank(self, world, model):
        dataset, query, target = world
        scalar = ScanFallback(dataset, model, vectorize=False)
        vector = ScanFallback(dataset, model, vectorize=True)
        assert vector.top_k(query) == scalar.top_k(query)
        missing = [dataset.get(target)]
        assert vector.rank_of_missing(query, missing) == scalar.rank_of_missing(
            query, missing
        )

    @given(micro_worlds(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=15, deadline=None)
    def test_whynot_answer_parity(self, world, lam):
        dataset, query, target = world
        question = WhyNotQuestion(query, (target,), lam=lam)
        answers = []
        for vectorize in (False, True):
            fallback = ScanFallback(dataset, vectorize=vectorize)
            if fallback.rank_of_missing(
                query, [dataset.get(target)]
            ) <= query.k:
                return  # nothing to explain; both paths agree trivially
            answers.append(fallback.answer(question))
        scalar, vector = answers
        assert vector.refined.keywords == scalar.refined.keywords
        assert vector.refined.penalty == scalar.refined.penalty  # bitwise
        assert vector.refined.rank == scalar.refined.rank
        assert vector.initial_rank == scalar.initial_rank
        assert vector.degraded and scalar.degraded


class TestAlgorithmParity:
    """Full why-not algorithms over the index, both modes."""

    @given(micro_worlds(), st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=15, deadline=None)
    def test_kcr_answer_parity(self, world, lam):
        dataset, query, target = world
        oracle_rank = ScanFallback(dataset).rank_of_missing(
            query, [dataset.get(target)]
        )
        if oracle_rank <= query.k:
            return
        question = WhyNotQuestion(query, (target,), lam=lam)
        answers = []
        for vectorize in (False, True):
            tree = KcRTree(dataset, capacity=4)
            algorithm = KcRAlgorithm(tree, vectorize=vectorize)
            answers.append(algorithm.answer(question))
        scalar, vector = answers
        assert vector.refined.keywords == scalar.refined.keywords
        assert vector.refined.penalty == scalar.refined.penalty
        assert vector.refined.rank == scalar.refined.rank


class TestKernelParity:
    """Kernels against the scalar model arithmetic, element by element."""

    @given(
        st.lists(st.frozensets(st.integers(0, 30), max_size=6), min_size=1,
                 max_size=20),
        st.frozensets(st.integers(0, 35), max_size=5),
        st.sampled_from(MODELS),
    )
    @settings(max_examples=80, deadline=None)
    def test_batch_similarity(self, docs, qdoc, model):
        vocab = VocabularyIndex()
        for doc in docs:
            vocab.extend(doc)
        packed = PackedLeaf.build(
            [(i, (0.0, 0.0), doc) for i, doc in enumerate(docs)], vocab
        )
        inter = np.array(
            [float(len(doc & qdoc)) for doc in docs], dtype=np.float64
        )
        got = batch_similarity(model.name, inter, packed.doc_lens, len(qdoc))
        want = [model.similarity(doc, qdoc) for doc in docs]
        assert got.tolist() == want

    @given(micro_worlds(), st.sampled_from(MODELS))
    @settings(max_examples=40, deadline=None)
    def test_leaf_scores_vs_scalar_eqn1(self, world, model):
        dataset, query, _ = world
        vocab = VocabularyIndex.from_dataset(dataset)
        packed = PackedLeaf.of_dataset(dataset, vocab)
        got = leaf_scores(
            packed,
            query.loc,
            query.alpha,
            vocab.encode(query.doc),
            len(query.doc),
            model.name,
            dataset,
        )
        want = []
        for obj in dataset:
            dist = dataset.normalized_distance(obj.loc, query.loc)
            tsim = model.similarity(obj.doc, query.doc)
            want.append(
                query.alpha * (1.0 - dist) + (1.0 - query.alpha) * tsim
            )
        assert got == want

    @given(
        st.integers(min_value=1, max_value=20),  # k0
        st.integers(min_value=1, max_value=40),  # margin above k0
        st.floats(min_value=0.0, max_value=1.0),  # lam
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),  # delta_doc
                st.integers(min_value=1, max_value=200),  # rank
            ),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_batch_penalties(self, k0, margin, lam, pairs):
        initial_rank = k0 + margin
        universe = 13
        model = PenaltyModel(
            k0=k0, initial_rank=initial_rank, doc_universe_size=universe,
            lam=lam,
        )
        deltas = [d for d, _ in pairs]
        ranks = [r for _, r in pairs]
        got = batch_penalties(
            lam, k0, initial_rank - k0, universe, deltas, ranks
        )
        want = [model.penalty(d, r) for d, r in pairs]
        assert got.tolist() == want


class TestPackedLayout:
    """Construction, maintenance, and persistence of the packed blocks."""

    def _assert_leaves_packed(self, tree):
        """Every leaf carries a healthy packed mirror of its entries."""
        stack = [tree.root_id]
        checked = 0
        while stack:
            node = tree.fetch_node(stack.pop())
            if not node.is_leaf:
                stack.extend(e.child_id for e in node.child_entries)
                continue
            packed = tree.packed_leaf(node)
            assert packed is not None
            entries = node.object_entries
            assert len(packed) == len(entries)
            for row, entry in enumerate(entries):
                assert int(packed.oids[row]) == entry.oid
                assert float(packed.xs[row]) == entry.loc[0]
                assert float(packed.ys[row]) == entry.loc[1]
                doc = tree.fetch_doc(entry.doc_record)
                assert float(packed.doc_lens[row]) == float(len(doc))
                assert np.array_equal(
                    packed.masks[row][: tree.vocab.n_blocks],
                    tree.vocab.encode(doc)[: packed.width],
                ) or np.array_equal(packed.masks[row], tree.vocab.encode(doc))
            checked += 1
        assert checked > 0

    @given(micro_worlds())
    @settings(max_examples=25, deadline=None)
    def test_bulk_load_packs_every_leaf(self, world):
        dataset, _, _ = world
        self._assert_leaves_packed(SetRTree(dataset, capacity=4))

    @given(world=micro_worlds())
    @settings(max_examples=15, deadline=None)
    def test_persistence_round_trip(self, tmp_path_factory, world):
        dataset, query, _ = world
        tree = SetRTree(dataset, capacity=4)
        path = tmp_path_factory.mktemp("idx") / "tree.json"
        save_index(tree, path)
        loaded = load_index(path, dataset)
        self._assert_leaves_packed(loaded)
        # and the loaded tree answers bit-identically, both modes
        for vectorize in (False, True):
            assert TopKSearcher(loaded, vectorize=vectorize).top_k(
                query
            ) == TopKSearcher(tree, vectorize=False).top_k(query)

    def test_vocab_widening_keeps_stale_masks_correct(self):
        """A leaf packed under a narrower vocabulary must stay correct
        after inserts introduce new terms (append-only bit assignment +
        common-prefix intersection)."""
        objects = [
            SpatialObject(oid=i, loc=(0.1 * i, 0.1 * i), doc=frozenset({i}))
            for i in range(6)
        ]
        dataset = Dataset(objects, diagonal=2.0**0.5)
        tree = SetRTree(dataset, capacity=4)
        width_before = tree.vocab.n_blocks
        # 70 new terms force extra uint64 blocks
        for i in range(6, 9):
            obj = SpatialObject(
                oid=i,
                loc=(0.1 * i, 0.05),
                doc=frozenset(range(100 + 70 * i, 100 + 70 * i + 70)),
            )
            dataset.add(obj)
            tree.insert(obj)
        assert tree.vocab.n_blocks > width_before
        query = SpatialKeywordQuery(
            loc=(0.2, 0.2), doc=frozenset({1, 2, 170}), k=9, alpha=0.5
        )
        scalar = TopKSearcher(tree, vectorize=False)
        vector = TopKSearcher(tree, vectorize=True)
        assert vector.top_k(query) == scalar.top_k(query)

    def test_deletion_keeps_parity(self):
        objects = [
            SpatialObject(
                oid=i, loc=(0.07 * i, 0.09 * i), doc=frozenset({i % 5, 5})
            )
            for i in range(20)
        ]
        dataset = Dataset(objects, diagonal=2.0**0.5)
        tree = SetRTree(dataset, capacity=4)
        for oid in (3, 7, 11, 15):
            tree.delete(dataset.get(oid))
        query = SpatialKeywordQuery(
            loc=(0.3, 0.3), doc=frozenset({2, 5}), k=10, alpha=0.5
        )
        scalar = TopKSearcher(tree, vectorize=False)
        vector = TopKSearcher(tree, vectorize=True)
        assert vector.top_k(query) == scalar.top_k(query)
        self._assert_leaves_packed(tree)


class TestAlphaLambdaSweeps:
    """Dense deterministic sweeps over the two query-shaping knobs."""

    @pytest.mark.parametrize("alpha", [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    @pytest.mark.parametrize("model", MODELS)
    def test_alpha_sweep_top_k(self, alpha, model):
        objects = [
            SpatialObject(
                oid=i,
                loc=((i * 7 % 10) / 10.0, (i * 3 % 10) / 10.0),
                doc=frozenset({i % 4, (i * 2) % 6}),
            )
            for i in range(24)
        ]
        dataset = Dataset(objects, diagonal=2.0**0.5)
        tree = SetRTree(dataset, capacity=4)
        query = SpatialKeywordQuery(
            loc=(0.4, 0.6), doc=frozenset({1, 2, 5}), k=12, alpha=alpha
        )
        scalar = TopKSearcher(tree, model, vectorize=False)
        vector = TopKSearcher(tree, model, vectorize=True)
        assert vector.top_k(query) == scalar.top_k(query)

    @pytest.mark.parametrize("lam", [0.05, 0.25, 0.5, 0.75, 0.95])
    def test_lambda_sweep_scan_answers(self, lam):
        objects = [
            SpatialObject(
                oid=i,
                loc=((i * 7 % 12) / 12.0, (i * 5 % 12) / 12.0),
                doc=frozenset({i % 3, (i * 2) % 5}),
            )
            for i in range(18)
        ]
        dataset = Dataset(objects, diagonal=2.0**0.5)
        query = SpatialKeywordQuery(
            loc=(0.1, 0.9), doc=frozenset({0, 4}), k=2, alpha=0.5
        )
        target = ScanFallback(dataset).top_k(
            query, k=len(objects)
        )[-1][1]
        if ScanFallback(dataset).rank_of_missing(
            query, [dataset.get(target)]
        ) <= query.k:
            pytest.skip("degenerate world: target already in top-k")
        question = WhyNotQuestion(query, (target,), lam=lam)
        scalar = ScanFallback(dataset, vectorize=False).answer(question)
        vector = ScanFallback(dataset, vectorize=True).answer(question)
        assert vector.refined.keywords == scalar.refined.keywords
        assert vector.refined.penalty == scalar.refined.penalty
