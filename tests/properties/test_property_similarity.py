"""Property-based tests for the similarity models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.similarity import COSINE, DICE, JACCARD

keyword_sets = st.frozensets(st.integers(min_value=0, max_value=30), max_size=12)
models = st.sampled_from([JACCARD, DICE, COSINE])


class TestSimilarityAxioms:
    @given(models, keyword_sets, keyword_sets)
    def test_range(self, model, a, b):
        value = model.similarity(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(models, keyword_sets, keyword_sets)
    def test_symmetry(self, model, a, b):
        assert model.similarity(a, b) == model.similarity(b, a)

    @given(models, keyword_sets)
    def test_self_similarity_is_one_when_nonempty(self, model, a):
        if a:
            assert model.similarity(a, a) == 1.0

    @given(models, keyword_sets, keyword_sets)
    def test_disjoint_is_zero(self, model, a, b):
        if not (a & b):
            assert model.similarity(a, b) == 0.0

    @given(keyword_sets, keyword_sets)
    def test_jaccard_below_dice(self, a, b):
        """Jaccard <= Dice always (denominator relationship)."""
        assert JACCARD.similarity(a, b) <= DICE.similarity(a, b) + 1e-12


class TestNodeBoundProperty:
    @given(
        models,
        st.frozensets(st.integers(0, 15), min_size=1, max_size=8),
        st.data(),
    )
    @settings(max_examples=200)
    def test_bound_admissible_for_sampled_docs(self, model, union, data):
        intersection = data.draw(
            st.frozensets(st.sampled_from(sorted(union)), max_size=len(union))
        )
        query = data.draw(keyword_sets)
        optional = sorted(union - intersection)
        doc_extras = data.draw(
            st.frozensets(st.sampled_from(optional), max_size=len(optional))
        ) if optional else frozenset()
        doc = intersection | doc_extras
        bound = model.node_upper_bound(union, intersection, query)
        assert model.similarity(doc, query) <= bound + 1e-9
