"""Property tests for the serving layer's deterministic core.

Everything here runs at the admission/simulation level — no engine, no
indexes — so hypothesis can afford thousands of examples:

* **Determinism** — ``simulate_load`` is a pure function of its seed.
* **Bounded shedding** — the queue never retains more than its
  configured capacity, sheds exactly what exceeds a class bound, and
  stays bounded under a 10k-request burst.
* **Fairness** — per-session FIFO order survives any interleaving of
  offers and takes, and round-robin never starves a waiting session.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import AdmissionQueue
from repro.serve.bench import simulate_load

SERVICE = {"topk": 1.5, "whynot": 6.0}


class TestSimulationDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=400),
        users=st.integers(min_value=1, max_value=50),
        burst=st.booleans(),
    )
    def test_same_seed_replays_identically(self, seed, n, users, burst):
        kwargs = dict(
            n_requests=n, users=users, seed=seed, workers=3, burst=burst
        )
        assert simulate_load(SERVICE, **kwargs) == simulate_load(
            SERVICE, **kwargs
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=400),
    )
    def test_conservation_and_bounds(self, seed, n):
        limits = {"topk": 8, "whynot": 4}
        report = simulate_load(
            SERVICE,
            n_requests=n,
            users=7,
            seed=seed,
            workers=2,
            limits=limits,
            burst=True,
        )
        completed = sum(report["completed"].values())
        shed = sum(report["shed"].values())
        assert completed + shed == n
        # Nothing admitted beyond capacity plus the workers that drain
        # at the burst instant.
        assert completed <= sum(limits.values()) + report["workers"]
        for kind, latencies in (
            ("topk", report["latencies_ms"]),
            ("whynot", report["latencies_ms"]),
        ):
            assert all(value >= 0.0 for value in latencies)


offers = st.lists(
    st.tuples(
        st.sampled_from(["alice", "bob", "carol"]),
        st.sampled_from(["topk", "whynot"]),
    ),
    min_size=0,
    max_size=60,
)


class TestAdmissionProperties:
    @settings(max_examples=200, deadline=None)
    @given(sequence=offers)
    def test_sheds_strictly_above_bound(self, sequence):
        limits = {"topk": 5, "whynot": 3}
        queue = AdmissionQueue(limits)
        admitted = {"topk": 0, "whynot": 0}
        for session, kind in sequence:
            if queue.offer(kind, session, (session, kind)):
                admitted[kind] += 1
            assert queue.depth(kind) <= limits[kind]
        for kind, bound in limits.items():
            offered = sum(1 for _, k in sequence if k == kind)
            assert admitted[kind] == min(offered, bound)
        assert len(queue) <= queue.capacity
        assert queue.shed == len(sequence) - sum(admitted.values())

    @settings(max_examples=200, deadline=None)
    @given(sequence=offers, take_every=st.integers(min_value=1, max_value=5))
    def test_per_session_fifo_under_interleaving(self, sequence, take_every):
        queue = AdmissionQueue({"topk": 30, "whynot": 30})
        accepted = {"alice": [], "bob": [], "carol": []}
        taken = {"alice": [], "bob": [], "carol": []}
        counter = 0
        for step, (session, kind) in enumerate(sequence):
            item = (session, counter)
            if queue.offer(kind, session, item):
                accepted[session].append(item)
                counter += 1
            if step % take_every == 0:
                got = queue.take()
                if got is not None:
                    taken[got[0]].append(got)
        while True:
            got = queue.take()
            if got is None:
                break
            taken[got[0]].append(got)
        # Every admitted item comes back out, per session in FIFO order.
        assert taken == accepted

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_memory_bounded_under_10k_burst(self, seed):
        import random

        rng = random.Random(seed)
        limits = {"topk": 16, "whynot": 4}
        queue = AdmissionQueue(limits)
        for i in range(10_000):
            kind = "whynot" if rng.random() < 0.2 else "topk"
            queue.offer(kind, f"user-{rng.randrange(64)}", i)
        assert len(queue) <= queue.capacity == 20
        assert queue.offered == 10_000
        assert queue.accepted <= queue.capacity
        assert queue.shed == queue.offered - queue.accepted
        # Internal retention really is bounded: draining yields at most
        # `capacity` items.
        drained = 0
        while queue.take() is not None:
            drained += 1
        assert drained <= 20

    @settings(max_examples=100, deadline=None)
    @given(sequence=offers)
    def test_round_robin_no_starvation(self, sequence):
        """With S waiting sessions, S consecutive takes hit S sessions."""
        queue = AdmissionQueue({"topk": 30, "whynot": 30})
        for session, kind in sequence:
            queue.offer(kind, session, session)
        waiting = queue.snapshot()["sessions_waiting"]
        first_cycle = [queue.take() for _ in range(waiting)]
        assert len(set(first_cycle)) == waiting
