"""Property-based tests for reverse keyword search."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    Oracle,
    ReverseKeywordSearch,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
)


@st.composite
def reverse_instances(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    objects = []
    for i in range(n):
        x = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        y = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        doc = draw(st.frozensets(st.integers(0, 4), min_size=1, max_size=3))
        objects.append(SpatialObject(oid=i, loc=(x, y), doc=doc))
    dataset = Dataset(objects, diagonal=2.0**0.5)
    target = draw(st.integers(min_value=0, max_value=n - 1))
    k = draw(st.integers(min_value=1, max_value=n))
    loc = (
        draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    )
    return dataset, target, k, loc


class TestReverseSearchProperties:
    @given(reverse_instances())
    @settings(max_examples=40, deadline=None)
    def test_matches_exactly_the_qualifying_sets(self, instance):
        dataset, target, k, loc = instance
        tree = SetRTree(dataset, capacity=4)
        searcher = ReverseKeywordSearch(tree)
        report = searcher.search(target, loc, k)
        oracle = Oracle(dataset)
        pool = sorted(dataset.get(target).doc)
        expected = set()
        for size in range(1, len(pool) + 1):
            for subset in itertools.combinations(pool, size):
                query = SpatialKeywordQuery(loc=loc, doc=frozenset(subset), k=k)
                if oracle.rank(target, query) <= k:
                    expected.add(frozenset(subset))
        assert {m.keywords for m in report.matches} == expected

    @given(reverse_instances())
    @settings(max_examples=30, deadline=None)
    def test_reported_ranks_exact(self, instance):
        dataset, target, k, loc = instance
        tree = SetRTree(dataset, capacity=4)
        report = ReverseKeywordSearch(tree).search(target, loc, k)
        oracle = Oracle(dataset)
        for match in report.matches:
            query = SpatialKeywordQuery(loc=loc, doc=match.keywords, k=k)
            assert oracle.rank(target, query) == match.rank

    @given(reverse_instances())
    @settings(max_examples=30, deadline=None)
    def test_k_equal_n_accepts_everything(self, instance):
        dataset, target, _, loc = instance
        k = len(dataset)  # every object is in a top-n result
        tree = SetRTree(dataset, capacity=4)
        report = ReverseKeywordSearch(tree).search(target, loc, k)
        pool = dataset.get(target).doc
        assert len(report.matches) == 2 ** len(pool) - 1
