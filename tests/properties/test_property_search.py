"""Property-based tests: index searches agree with brute force on
randomly generated micro datasets (fresh tree per example)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
)


@st.composite
def micro_worlds(draw):
    n = draw(st.integers(min_value=2, max_value=18))
    objects = []
    for i in range(n):
        x = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        y = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        doc = draw(st.frozensets(st.integers(0, 6), min_size=1, max_size=4))
        objects.append(SpatialObject(oid=i, loc=(x, y), doc=doc))
    dataset = Dataset(objects, diagonal=2.0**0.5)
    qx = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qy = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qdoc = draw(st.frozensets(st.integers(0, 6), min_size=1, max_size=3))
    k = draw(st.integers(min_value=1, max_value=n))
    alpha = draw(st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
    query = SpatialKeywordQuery(loc=(qx, qy), doc=qdoc, k=k, alpha=alpha)
    target = draw(st.integers(min_value=0, max_value=n - 1))
    return dataset, query, target


class TestSearchAgainstOracle:
    @given(micro_worlds())
    @settings(max_examples=60, deadline=None)
    def test_top_k_score_multiset(self, world):
        dataset, query, _ = world
        tree = SetRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        oracle = Oracle(dataset)
        got = sorted(round(s, 10) for s, _ in searcher.top_k(query))
        scores = oracle.scores(query)
        expected = sorted(round(s, 10) for s in sorted(scores, reverse=True)[: query.k])
        assert got == expected

    @given(micro_worlds())
    @settings(max_examples=60, deadline=None)
    def test_rank_determination(self, world):
        dataset, query, target = world
        tree = SetRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        oracle = Oracle(dataset)
        obj = dataset.get(target)
        result = searcher.rank_of_missing(query, [obj])
        assert result.rank == oracle.rank(target, query)

    @given(micro_worlds())
    @settings(max_examples=40, deadline=None)
    def test_early_stop_never_lies(self, world):
        """An aborted search implies the true rank exceeds the limit."""
        dataset, query, target = world
        tree = SetRTree(dataset, capacity=4)
        searcher = TopKSearcher(tree)
        oracle = Oracle(dataset)
        obj = dataset.get(target)
        limit = 3
        result = searcher.rank_of_missing(query, [obj], stop_limit=limit)
        true_rank = oracle.rank(target, query)
        if result.aborted:
            assert true_rank > limit
        else:
            assert result.rank == true_rank
