"""Property tests for the fault-injection and fault-tolerance layer.

Three families of guarantees:

* **Determinism** — a seeded :class:`FaultInjector` (and its forks)
  replays identically, and a no-op schedule leaves the I/O counters
  bit-identical to running with no injector at all.
* **Containment** — transient faults are absorbed by the buffer pool's
  bounded retries (and accounted for), unrecoverable damage surfaces
  only as typed ``repro.errors`` exceptions, and the engine's degraded
  answers still match the fault-free baseline exactly.
* **Persistence integrity** — checksummed atomic saves round-trip, and
  truncation, tampering, and unknown versions all raise
  :class:`PersistenceError` rather than yielding silent garbage.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BufferPool,
    CorruptRecordError,
    FaultInjector,
    FaultSchedule,
    MIXED,
    Pager,
    PersistenceError,
    RecordNotFoundError,
    SpatialKeywordQuery,
    StorageError,
    TRANSIENT_ONLY,
    TransientIOError,
    WhyNotEngine,
    WhyNotQuestion,
    load_dataset,
    load_index,
    make_euro_like,
    save_dataset,
    save_index,
)
from repro.analysis import CORRUPTION_KINDS, scan_corruption
from repro.errors import ReproError
from repro.storage import RETRY_LIMIT
from repro.storage.integrity import load_checked_json, save_checked_json


# ----------------------------------------------------------------------
# schedules and injectors
# ----------------------------------------------------------------------
def test_schedule_validation():
    with pytest.raises(StorageError):
        FaultSchedule(transient_read_rate=1.5)
    with pytest.raises(StorageError):
        FaultSchedule(bit_rot_rate=-0.1)
    with pytest.raises(StorageError):
        FaultSchedule(max_consecutive_transients=0)
    with pytest.raises(StorageError):
        TRANSIENT_ONLY.scaled(-1.0)


def test_schedule_composition_and_scaling():
    combined = TRANSIENT_ONLY | MIXED
    assert combined.transient_read_rate == pytest.approx(
        TRANSIENT_ONLY.transient_read_rate + MIXED.transient_read_rate
    )
    assert combined.bit_rot_rate == MIXED.bit_rot_rate
    assert FaultSchedule().is_noop
    assert not MIXED.is_noop
    doubled = MIXED.scaled(2.0)
    assert doubled.torn_write_rate == pytest.approx(2 * MIXED.torn_write_rate)
    assert MIXED.scaled(0.0).is_noop


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_injector_replay_is_deterministic(seed):
    def drive(injector):
        return [injector.on_read(i % 5) for i in range(50)] + [
            injector.on_write(i % 5, 1) for i in range(50)
        ]

    a = FaultInjector(MIXED.scaled(30.0), seed=seed)
    b = FaultInjector(MIXED.scaled(30.0), seed=seed)
    assert drive(a) == drive(b)
    assert a.summary() == b.summary()
    # Forks with the same label replay identically too.
    assert drive(a.fork("x")) == drive(b.fork("x"))


def test_summary_aggregates_forks():
    root = FaultInjector(FaultSchedule(transient_read_rate=1.0), seed=3)
    child = root.fork("c")
    for i in range(4):
        child.on_read(i)  # distinct records: consecutive cap never binds
    assert root.transients_injected == 0
    assert root.summary()["transients_injected"] == child.transients_injected > 0


def test_from_env_presets_and_specs():
    assert FaultInjector.from_env({}) is None
    assert FaultInjector.from_env({"REPRO_FAULTS": "0"}) is None
    assert FaultInjector.from_env({"REPRO_FAULTS": "1"}).schedule == TRANSIENT_ONLY
    assert FaultInjector.from_env({"REPRO_FAULTS": "mixed"}).schedule == MIXED
    seeded = FaultInjector.from_env(
        {"REPRO_FAULTS": "transient", "REPRO_FAULTS_SEED": "99"}
    )
    assert seeded.seed == 99
    spec = FaultInjector.from_env(
        {"REPRO_FAULTS": "read=0.5,rot=0.01,consecutive=3,seed=5"}
    )
    assert spec.schedule.transient_read_rate == 0.5
    assert spec.schedule.bit_rot_rate == 0.01
    assert spec.schedule.max_consecutive_transients == 3
    assert spec.seed == 5
    with pytest.raises(StorageError):
        FaultInjector.from_env({"REPRO_FAULTS": "bogus=1"})
    with pytest.raises(StorageError):
        FaultInjector.from_env({"REPRO_FAULTS": "read0.5"})


# ----------------------------------------------------------------------
# pager: checksums and typed errors
# ----------------------------------------------------------------------
def test_checksum_round_trip_and_rot_detection():
    pager = Pager()
    rid = pager.allocate({"n": 1}, 100)
    assert pager.verify(rid)
    assert pager.read(rid) == {"n": 1}
    pager.update(rid, {"n": 2}, 100)
    assert pager.verify(rid)
    assert pager.read(rid) == {"n": 2}
    # Simulate bit rot the way the injector does: flip the stored stamp.
    pager._records[rid].stored_checksum ^= 0xFFFFFFFF
    assert not pager.verify(rid)
    failures_before = pager.stats.checksum_failures
    with pytest.raises(CorruptRecordError) as excinfo:
        pager.read(rid)
    assert excinfo.value.record_id == rid
    with pytest.raises(CorruptRecordError):
        pager.peek(rid)
    assert pager.stats.checksum_failures == failures_before + 2


def test_missing_record_raises_typed_error():
    pager = Pager()
    with pytest.raises(RecordNotFoundError) as excinfo:
        pager.read(1234)
    # Legacy compat: the typed error is both a StorageError and a KeyError.
    assert isinstance(excinfo.value, StorageError)
    assert isinstance(excinfo.value, KeyError)
    assert excinfo.value.record_id == 1234
    with pytest.raises(RecordNotFoundError):
        BufferPool(Pager(), capacity_bytes=4096).fetch(7)


def test_failed_reads_charge_no_io():
    schedule = FaultSchedule(transient_read_rate=1.0, max_consecutive_transients=1)
    pager = Pager(faults=FaultInjector(schedule, seed=1))
    rid = pager.allocate("x", 10)
    reads_before = pager.stats.page_reads
    with pytest.raises(TransientIOError):
        pager.read(rid)
    assert pager.stats.page_reads == reads_before
    assert pager.read(rid) == "x"  # cap=1: the retry succeeds
    assert pager.stats.page_reads == reads_before + 1


# ----------------------------------------------------------------------
# buffer pool: bounded retries
# ----------------------------------------------------------------------
def test_retries_absorb_transients_and_are_accounted():
    # Aggressive transient noise, but the consecutive cap (2) stays
    # below RETRY_LIMIT, so no TransientIOError may escape the pool.
    schedule = FaultSchedule(
        transient_read_rate=0.5, transient_write_rate=0.5
    )
    injector = FaultInjector(schedule, seed=13)
    pool = BufferPool.create(
        page_size=4096, capacity_bytes=2 * 4096, faults=injector
    )
    stats = pool.stats
    records = [pool.allocate(i, 4096) for i in range(20)]
    for _ in range(5):
        for rid in records:
            assert pool.fetch(rid) == records.index(rid)
    assert injector.transients_injected > 0
    # Every transient the pager raised was absorbed by exactly one
    # counted retry — both sides of the ledger agree.
    assert (
        stats.read_retries + stats.write_retries == stats.transient_faults
    )
    snapshot = stats.snapshot()
    assert snapshot.read_retries == stats.read_retries
    assert snapshot.write_retries == stats.write_retries


def test_retry_limit_is_bounded():
    # A record that faults more times in a row than the pool will
    # retry: the error must escape as TransientIOError, not hang.
    schedule = FaultSchedule(
        transient_read_rate=1.0, max_consecutive_transients=RETRY_LIMIT + 5
    )
    pool = BufferPool.create(
        page_size=4096,
        capacity_bytes=4096,
        faults=FaultInjector(schedule, seed=2),
    )
    rid = None
    for _ in range(RETRY_LIMIT + 5):
        try:
            rid = pool.allocate("v", 10)
            break
        except TransientIOError:
            continue
    assert rid is not None, "allocation never landed"
    retries_before = pool.stats.read_retries
    with pytest.raises(TransientIOError):
        pool.fetch(rid)
    assert pool.stats.read_retries == retries_before + RETRY_LIMIT - 1


# ----------------------------------------------------------------------
# engine lifecycle under faults
# ----------------------------------------------------------------------
def _make_world():
    """A small deterministic dataset plus a query workload over it."""
    dataset, _ = make_euro_like(400, seed=11)
    queries = []
    for obj in dataset.objects[::17]:
        doc = frozenset(list(obj.doc)[:3])
        if len(doc) < 2:
            continue
        queries.append(
            SpatialKeywordQuery(loc=obj.loc, doc=doc, k=5, alpha=0.5)
        )
        if len(queries) == 8:
            break
    return dataset, queries


@pytest.fixture(scope="module")
def fault_world():
    """Read-only world: a fault-free baseline engine and its workload."""
    dataset, queries = _make_world()
    return dataset, WhyNotEngine(dataset), queries


# Seeds are chosen so the scaled schedule actually trips at least one
# degradation against the current storage-operation stream; re-probe
# when the op sequence changes (e.g. new per-leaf records).
@pytest.mark.parametrize("seed", [5, 23, 101])
def test_lifecycle_no_unflagged_deviations(seed):
    """The core containment property, per ISSUE: under a seeded mixed
    schedule, every query either succeeds on the index or degrades with
    a flag — and in both cases the results match the fault-free
    baseline exactly.  Only typed ``ReproError`` subclasses may escape.

    Each engine gets its own (identical) dataset copy because
    ``insert``/``remove`` mutate the dataset as well as the indexes.
    """
    dataset_a, queries = _make_world()
    dataset_b, _ = _make_world()
    baseline = WhyNotEngine(dataset_a)
    injector = FaultInjector(MIXED.scaled(60.0), seed=seed)
    chaotic = WhyNotEngine(dataset_b, faults=injector)
    degraded_seen = 0
    for round_no in range(3):
        for query in queries:
            expected = baseline.top_k(query)
            try:
                outcome = chaotic.run_top_k(query)
            except ReproError as exc:  # typed, but still a crash here
                pytest.fail(f"typed error escaped the engine: {exc!r}")
            if outcome.degraded:
                degraded_seen += 1
                assert outcome.events, "degraded outcome carries no events"
            assert outcome.results == expected, (
                "results deviated from baseline "
                f"(degraded={outcome.degraded}, round={round_no})"
            )
        # Mutations mid-lifecycle must not crash either: remove and
        # re-insert one object on both sides, keeping the worlds equal.
        oid = dataset_a.objects[round_no].oid
        obj_a, obj_b = dataset_a.get(oid), dataset_b.get(oid)
        baseline.remove(oid)
        chaotic.remove(oid)
        baseline.insert(obj_a)
        chaotic.insert(obj_b)
    assert degraded_seen > 0, "schedule too gentle: nothing degraded"
    # health() must report the quarantine and the injection ledger.
    health = chaotic.health()
    assert health["injector"]["transients_injected"] >= 0
    for name in chaotic.quarantined:
        report = health["corruption"][name]
        assert all(v.kind in CORRUPTION_KINDS for v in report.violations)


def test_degraded_answers_match_baseline(fault_world):
    dataset, baseline, queries = fault_world
    chaotic = WhyNotEngine(
        dataset, faults=FaultInjector(MIXED.scaled(60.0), seed=5)
    )
    checked = 0
    for query in queries:
        extended = baseline.top_k(query.with_k(21))
        missing = extended[-1][1]
        question = WhyNotQuestion(query, (missing,), lam=0.5)
        expected = baseline.answer(question, method="kcr")
        actual = chaotic.answer(question, method="kcr")
        assert actual.refined.penalty == pytest.approx(
            expected.refined.penalty, abs=1e-9
        )
        if actual.degraded:
            assert actual.fault_events
            assert actual.algorithm.endswith("/degraded-scan")
        checked += 1
    assert checked == len(queries)


def test_recover_rebuilds_quarantined_trees(fault_world):
    dataset, baseline, queries = fault_world
    chaotic = WhyNotEngine(
        dataset, faults=FaultInjector(MIXED.scaled(80.0), seed=9)
    )
    for _ in range(4):
        for query in queries:
            chaotic.run_top_k(query)
        if chaotic.quarantined:
            break
    assert chaotic.quarantined, "schedule too gentle: nothing quarantined"
    cleared = chaotic.recover()
    assert cleared
    assert not chaotic.quarantined
    # Rebuilt trees answer correctly again (fresh fault forks mean the
    # breaking schedule is not replayed verbatim, though new faults may
    # still degrade flagged — never deviate).
    for query in queries:
        outcome = chaotic.run_top_k(query)
        assert outcome.results == baseline.top_k(query)


@pytest.mark.skipif(
    os.environ.get("REPRO_FAULTS", "0") not in ("", "0"),
    reason="suite-wide fault injection makes the baseline non-fault-free",
)
def test_noop_schedule_preserves_io_counts(fault_world):
    """With a no-op schedule attached the fault machinery must not
    perturb the reproduced metric: page/buffer counters bit-identical
    to running with no injector at all."""
    dataset, baseline, queries = fault_world
    noop = WhyNotEngine(
        dataset, faults=FaultInjector(FaultSchedule(), seed=7)
    )
    for query in queries:
        baseline.reset_buffers()
        noop.reset_buffers()
        before_b = baseline.setr_tree.stats.snapshot()
        before_n = noop.setr_tree.stats.snapshot()
        expected = baseline.top_k(query)
        assert noop.top_k(query) == expected
        delta_b = baseline.setr_tree.stats.snapshot() - before_b
        delta_n = noop.setr_tree.stats.snapshot() - before_n
        assert delta_n == delta_b


def test_scan_corruption_spots_injected_rot(fault_world):
    dataset, _, _ = fault_world
    engine = WhyNotEngine(dataset)
    tree = engine.setr_tree
    # Rot one live node record behind the sanitizer's back.
    pager = tree.buffer.pager
    rid = next(iter(pager._records))
    pager._records[rid].stored_checksum ^= 0xFFFFFFFF
    report = scan_corruption(tree)
    assert report.violations
    assert {v.kind for v in report.violations} <= CORRUPTION_KINDS


# ----------------------------------------------------------------------
# persistence: atomic, checksummed, versioned
# ----------------------------------------------------------------------
def test_checked_json_round_trip(tmp_path):
    path = tmp_path / "doc.json"
    save_checked_json(path, {"a": [1, 2, 3]}, version=2)
    payload = load_checked_json(
        path, kind="doc", supported_versions=(1, 2), checksum_required_from=2
    )
    assert payload["a"] == [1, 2, 3]
    # No temp droppings from the atomic writer.
    assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


def test_truncated_file_is_rejected(tmp_path):
    path = tmp_path / "doc.json"
    save_checked_json(path, {"a": 1}, version=2)
    text = path.read_text(encoding="utf-8")
    path.write_text(text[: len(text) // 2], encoding="utf-8")
    with pytest.raises(PersistenceError, match="truncated"):
        load_checked_json(
            path,
            kind="doc",
            supported_versions=(1, 2),
            checksum_required_from=2,
        )


def test_tampered_file_fails_checksum(tmp_path):
    path = tmp_path / "doc.json"
    save_checked_json(path, {"a": 1}, version=2)
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["a"] = 2  # tamper without re-stamping
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(PersistenceError, match="checksum"):
        load_checked_json(
            path,
            kind="doc",
            supported_versions=(1, 2),
            checksum_required_from=2,
        )


def test_legacy_version_loads_without_checksum(tmp_path):
    path = tmp_path / "doc.json"
    path.write_text(json.dumps({"a": 1, "format_version": 1}), encoding="utf-8")
    payload = load_checked_json(
        path, kind="doc", supported_versions=(1, 2), checksum_required_from=2
    )
    assert payload["a"] == 1
    # ...but a checksumless v2 file is a torn tail.
    path.write_text(json.dumps({"a": 1, "format_version": 2}), encoding="utf-8")
    with pytest.raises(PersistenceError, match="checksum"):
        load_checked_json(
            path,
            kind="doc",
            supported_versions=(1, 2),
            checksum_required_from=2,
        )


def test_dataset_and_index_round_trip_checked(tmp_path):
    dataset, vocabulary = make_euro_like(120, seed=3)
    dpath = tmp_path / "data.json"
    save_dataset(dataset, vocabulary, dpath)
    loaded, vocab2 = load_dataset(dpath)
    assert len(loaded) == len(dataset)
    assert list(vocab2.words) == list(vocabulary.words)

    engine = WhyNotEngine(dataset)
    ipath = tmp_path / "index.json"
    save_index(engine.setr_tree, ipath)
    tree = load_index(ipath, dataset)
    assert tree.height == engine.setr_tree.height
    # Tampering with either file must be caught on load.
    payload = json.loads(ipath.read_text(encoding="utf-8"))
    payload["height"] = 99
    ipath.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(PersistenceError, match="checksum"):
        load_index(ipath, dataset)
    save_checked_json(dpath, {"x": 1}, version=3)
    with pytest.raises(PersistenceError, match="unsupported format version"):
        load_dataset(dpath)
