"""Property test: the heap-based greedy makespan is *exactly* the
least-loaded-scan schedule it replaced — same worker choice at every
step (including the lowest-index tie rule), hence bit-identical float
accumulation and result."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import makespan


def _scan_makespan(unit_times, n_workers):
    """The original O(T·W) reference: assign each unit to the
    least-loaded worker, lowest index winning ties."""
    loads = [0.0] * n_workers
    for unit in unit_times:
        loads[loads.index(min(loads))] += unit
    return max(loads)


durations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=300,
)


class TestMakespanHeapEqualsScan:
    @given(times=durations, workers=st.integers(min_value=1, max_value=32))
    @settings(max_examples=300, deadline=None)
    def test_heap_matches_scan_exactly(self, times, workers):
        # Bit-exact equality, not approx: both algorithms must make the
        # same assignment at every step, so the per-worker float sums
        # are computed in the same order.
        assert makespan(times, workers) == _scan_makespan(times, workers)

    @given(times=durations, workers=st.integers(min_value=1, max_value=32))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, times, workers):
        span = makespan(times, workers)
        total = sum(times)
        longest = max(times) if times else 0.0
        assert span >= longest
        assert span >= total / workers - 1e-9 * max(1.0, total)
        assert span <= total + 1e-9 * max(1.0, total)
