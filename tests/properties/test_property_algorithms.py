"""Property-based end-to-end test: on random micro instances, all
three exact algorithms return the brute-force-optimal penalty."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdvancedAlgorithm,
    BasicAlgorithm,
    Dataset,
    KcRAlgorithm,
    KcRTree,
    MissingObjectError,
    Oracle,
    PenaltyModel,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    WhyNotQuestion,
)
from repro.core.candidates import CandidateEnumerator


@st.composite
def whynot_instances(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    objects = []
    for i in range(n):
        x = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        y = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        doc = draw(st.frozensets(st.integers(0, 5), min_size=1, max_size=3))
        objects.append(SpatialObject(oid=i, loc=(x, y), doc=doc))
    dataset = Dataset(objects, diagonal=2.0**0.5)
    qdoc = draw(st.frozensets(st.integers(0, 5), min_size=1, max_size=3))
    alpha = draw(st.floats(min_value=0.1, max_value=0.9, allow_nan=False))
    lam = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    k = draw(st.integers(min_value=1, max_value=max(1, n // 3)))
    qx = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qy = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    query = SpatialKeywordQuery(loc=(qx, qy), doc=qdoc, k=k, alpha=alpha)
    missing = draw(st.integers(min_value=0, max_value=n - 1))
    return dataset, WhyNotQuestion(query, (missing,), lam=lam)


def _brute_optimum(dataset, question):
    oracle = Oracle(dataset)
    query = question.query
    initial_rank = oracle.rank_of_set(question.missing, query)
    if initial_rank <= query.k:
        return None
    missing_doc = frozenset().union(
        *(dataset.get(m).doc for m in question.missing)
    )
    pm = PenaltyModel(
        k0=query.k,
        initial_rank=initial_rank,
        doc_universe_size=len(query.doc | missing_doc),
        lam=question.lam,
    )
    best = pm.basic_penalty
    enumerator = CandidateEnumerator(query.doc, missing_doc)
    for candidate in enumerator.iter_naive():
        rank = oracle.rank_of_set(question.missing, query, candidate.keywords)
        best = min(best, pm.penalty(candidate.delta_doc, rank))
    return best


class TestEndToEndOptimality:
    @given(whynot_instances())
    @settings(max_examples=40, deadline=None)
    def test_all_algorithms_optimal(self, instance):
        dataset, question = instance
        expected = _brute_optimum(dataset, question)
        if expected is None:
            # the drawn object is not actually missing: the algorithms
            # must refuse, matching the validation contract
            setr = SetRTree(dataset, capacity=4)
            with pytest.raises(MissingObjectError):
                BasicAlgorithm(setr).answer(question)
            return
        setr = SetRTree(dataset, capacity=4)
        kcr = KcRTree(dataset, capacity=4)
        for algorithm in (
            BasicAlgorithm(setr),
            AdvancedAlgorithm(setr),
            KcRAlgorithm(kcr),
        ):
            answer = algorithm.answer(question)
            assert answer.refined.penalty == pytest.approx(expected), (
                algorithm.name,
                question,
            )

    @given(whynot_instances())
    @settings(max_examples=25, deadline=None)
    def test_refined_query_revives(self, instance):
        dataset, question = instance
        expected = _brute_optimum(dataset, question)
        if expected is None:
            return
        kcr = KcRTree(dataset, capacity=4)
        answer = KcRAlgorithm(kcr).answer(question)
        oracle = Oracle(dataset)
        refined = answer.refined.as_query(question.query)
        rank = oracle.rank_of_set(question.missing, refined, refined.doc)
        assert rank <= refined.k
