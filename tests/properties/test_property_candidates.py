"""Property-based tests for candidate enumeration."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CandidateEnumerator, Dataset, ParticularityIndex, SpatialObject


@st.composite
def universes(draw):
    doc0 = draw(st.frozensets(st.integers(0, 9), min_size=1, max_size=4))
    missing_doc = draw(st.frozensets(st.integers(0, 9), min_size=1, max_size=5))
    return doc0, missing_doc


def _reference_space(doc0, missing_doc):
    """All legal refined keyword sets by brute-force subset algebra."""
    addable = sorted(missing_doc - doc0)
    removable = sorted(doc0)
    seen = set()
    for add_r in range(len(addable) + 1):
        for added in itertools.combinations(addable, add_r):
            for del_r in range(len(removable) + 1):
                for removed in itertools.combinations(removable, del_r):
                    if not added and not removed:
                        continue
                    keywords = (doc0 - frozenset(removed)) | frozenset(added)
                    if keywords:
                        seen.add((frozenset(added), frozenset(removed)))
    return seen


class TestEnumerationProperties:
    @given(universes())
    @settings(max_examples=150)
    def test_naive_matches_reference(self, universe):
        doc0, missing_doc = universe
        enumerator = CandidateEnumerator(doc0, missing_doc)
        got = {(c.added, c.removed) for c in enumerator.iter_naive()}
        assert got == _reference_space(doc0, missing_doc)

    @given(universes())
    @settings(max_examples=150)
    def test_total_candidates_formula(self, universe):
        doc0, missing_doc = universe
        enumerator = CandidateEnumerator(doc0, missing_doc)
        assert enumerator.total_candidates() == len(
            _reference_space(doc0, missing_doc)
        )

    @given(universes())
    @settings(max_examples=100)
    def test_delta_doc_consistency(self, universe):
        doc0, missing_doc = universe
        enumerator = CandidateEnumerator(doc0, missing_doc)
        for candidate in enumerator.iter_naive():
            assert candidate.delta_doc == len(candidate.added) + len(
                candidate.removed
            )
            # edit distance really transforms doc0 into keywords
            assert candidate.keywords == (doc0 - candidate.removed) | candidate.added
            assert candidate.added.isdisjoint(doc0)
            assert candidate.removed <= doc0

    @given(universes())
    @settings(max_examples=75)
    def test_distance_batches_partition_paper_order(self, universe):
        doc0, missing_doc = universe
        enumerator = CandidateEnumerator(doc0, missing_doc)
        batched = [
            (c.added, c.removed)
            for d in range(1, enumerator.edit_universe + 1)
            for c in enumerator.at_distance(d, with_gain=False)
        ]
        # frozensets have no total order, so compare as sets + counts
        assert set(batched) == {
            (c.added, c.removed) for c in enumerator.iter_naive()
        }
        assert len(batched) == len(set(batched))


@st.composite
def universes_with_particularity(draw):
    doc0, missing_doc = draw(universes())
    n_objects = draw(st.integers(min_value=2, max_value=8))
    objects = [
        SpatialObject(
            oid=0, loc=(0.0, 0.0), doc=missing_doc or frozenset({0})
        )
    ]
    for i in range(1, n_objects):
        doc = draw(st.frozensets(st.integers(0, 9), min_size=1, max_size=4))
        objects.append(SpatialObject(oid=i, loc=(i / 10.0, 0.0), doc=doc))
    dataset = Dataset(objects)
    particularity = ParticularityIndex(dataset, [dataset.get(0)])
    return CandidateEnumerator(doc0, missing_doc, particularity=particularity)


class TestTopByGainProperties:
    @given(universes_with_particularity(), st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_top_t_matches_exhaustive(self, enumerator, t):
        total = enumerator.total_candidates()
        sample = enumerator.top_by_gain(t)
        assert len(sample) == min(t, total)
        assert len({c.keywords for c in sample}) == len(sample)
        exhaustive = sorted(
            (c for c in enumerator.iter_paper_order()), key=lambda c: -c.gain
        )
        got = sorted(round(c.gain, 9) for c in sample)
        want = sorted(round(c.gain, 9) for c in exhaustive[: len(sample)])
        assert got == want
