"""Property-based tests for dynamic insertion.

Whatever the insertion order and split pattern, a tree grown
incrementally must validate structurally and answer queries exactly
like a bulk-loaded tree over the same objects.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    KcRTree,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
)


@st.composite
def insertion_scenarios(draw):
    n_initial = draw(st.integers(min_value=1, max_value=6))
    n_inserted = draw(st.integers(min_value=1, max_value=14))
    objects = []
    for i in range(n_initial + n_inserted):
        x = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        y = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        doc = draw(st.frozensets(st.integers(0, 6), min_size=1, max_size=4))
        objects.append(SpatialObject(oid=i, loc=(x, y), doc=doc))
    qx = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qy = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    qdoc = draw(st.frozensets(st.integers(0, 6), min_size=1, max_size=3))
    k = draw(st.integers(min_value=1, max_value=n_initial + n_inserted))
    query = SpatialKeywordQuery(loc=(qx, qy), doc=qdoc, k=k)
    capacity = draw(st.sampled_from([2, 3, 4]))
    return objects, n_initial, query, capacity


class TestInsertionProperties:
    @given(insertion_scenarios(), st.sampled_from([SetRTree, KcRTree]))
    @settings(max_examples=60, deadline=None)
    def test_grown_tree_equals_bulk_tree(self, scenario, tree_cls):
        objects, n_initial, query, capacity = scenario
        dataset = Dataset(objects[:n_initial], diagonal=2.0**0.5)
        tree = tree_cls(dataset, capacity=capacity)
        for obj in objects[n_initial:]:
            dataset.add(obj)
            tree.insert(obj)
        tree.validate()

        oracle = Oracle(dataset)
        got = [oid for _, oid in TopKSearcher(tree).top_k(query)]
        expected = oracle.top_k_ids(query)
        scores = oracle.scores(query)
        row = {o.oid: i for i, o in enumerate(dataset.objects)}
        assert sorted(round(scores[row[i]], 10) for i in got) == sorted(
            round(scores[row[i]], 10) for i in expected
        )

    @given(insertion_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_rank_search_after_growth(self, scenario):
        objects, n_initial, query, capacity = scenario
        dataset = Dataset(objects[:n_initial], diagonal=2.0**0.5)
        tree = SetRTree(dataset, capacity=capacity)
        for obj in objects[n_initial:]:
            dataset.add(obj)
            tree.insert(obj)
        oracle = Oracle(dataset)
        target = objects[len(objects) // 2]
        result = TopKSearcher(tree).rank_of_missing(query, [target])
        assert result.rank == oracle.rank(target.oid, query)
