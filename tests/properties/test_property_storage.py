"""Stateful property tests for the storage substrate.

A hypothesis rule-based machine drives an arbitrary interleaving of
allocations, fetches, invalidations and clears against a buffer pool,
checking after every step that (a) payloads are never corrupted,
(b) the page accounting never exceeds capacity, and (c) the hit/miss
accounting matches a shadow model of perfect LRU.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import BufferPool, Pager
from repro.storage.packing import PackedWriter, fetch_slot


class BufferPoolMachine(RuleBasedStateMachine):
    CAPACITY_PAGES = 4
    PAGE = 4096

    @initialize()
    def setup(self) -> None:
        self.pager = Pager(page_size=self.PAGE)
        self.pool = BufferPool(
            self.pager, capacity_bytes=self.CAPACITY_PAGES * self.PAGE
        )
        self.expected = {}  # record id -> payload
        self.shadow_lru = []  # record ids, least recent first
        self.shadow_pages = {}  # record id -> span

    @rule(payload=st.integers(), pages=st.integers(min_value=1, max_value=3))
    def allocate(self, payload, pages):
        record = self.pager.allocate(payload, pages * self.PAGE)
        self.expected[record] = payload

    @rule(data=st.data())
    def fetch(self, data):
        if not self.expected:
            return
        record = data.draw(st.sampled_from(sorted(self.expected)))
        hits_before = self.pager.stats.buffer_hits
        reads_before = self.pager.stats.page_reads
        value = self.pool.fetch(record)
        assert value == self.expected[record], "payload corrupted"

        was_cached = record in self.shadow_lru
        if was_cached:
            assert self.pager.stats.buffer_hits == hits_before + 1
            assert self.pager.stats.page_reads == reads_before
            self.shadow_lru.remove(record)
            self.shadow_lru.append(record)
        else:
            span = self.pager.span(record)
            assert self.pager.stats.page_reads == reads_before + span
            if span <= self.CAPACITY_PAGES:
                self.shadow_pages[record] = span
                self.shadow_lru.append(record)
                used = sum(self.shadow_pages[r] for r in self.shadow_lru)
                while used > self.CAPACITY_PAGES:
                    evicted = self.shadow_lru.pop(0)
                    used -= self.shadow_pages.pop(evicted)

    @rule(data=st.data())
    def invalidate(self, data):
        if not self.shadow_lru:
            return
        record = data.draw(st.sampled_from(self.shadow_lru))
        self.pool.invalidate(record)
        self.shadow_lru.remove(record)
        self.shadow_pages.pop(record, None)

    @rule()
    def clear(self):
        self.pool.clear()
        self.shadow_lru.clear()
        self.shadow_pages.clear()

    @invariant()
    def accounting_consistent(self):
        assert self.pool.used_pages <= self.CAPACITY_PAGES
        expected_used = sum(self.shadow_pages.get(r, 0) for r in self.shadow_lru)
        assert self.pool.used_pages == expected_used
        for record in self.shadow_lru:
            assert record in self.pool


BufferPoolMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestBufferPoolStateful = BufferPoolMachine.TestCase


class TestPackedRoundTripProperty:
    """Packed slots must round-trip arbitrary payload sequences."""

    from hypothesis import given

    @given(
        payloads=st.lists(
            st.tuples(
                st.integers(), st.integers(min_value=1, max_value=4096)
            ),
            min_size=1,
            max_size=40,
        ),
        flush_every=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, payloads, flush_every):
        pager = Pager()
        pool = BufferPool(pager, capacity_bytes=64 * 4096)
        writer = PackedWriter(pager)
        indexes = []
        for i, (value, nbytes) in enumerate(payloads):
            indexes.append(writer.add(value, nbytes))
            if (i + 1) % flush_every == 0:
                writer.flush()
        writer.flush()
        for index, (value, _) in zip(indexes, payloads):
            assert fetch_slot(pool, writer.ref(index)) == value
