"""Property-based soundness tests for MaxDom / MinDom.

The strongest invariant in the paper's Section V: for *any* world
(assignment of keywords to objects) consistent with a node's
keyword-count map, the true dominator count under a threshold pair
lies between MinDom and MaxDom.  Hypothesis draws the world first and
derives the count map from it, so consistency is by construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    NodeTextStats,
    max_dom,
    max_dom_scan,
    min_dom,
    min_dom_scan,
)


def _jaccard(a, b):
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@st.composite
def worlds(draw):
    n_objects = draw(st.integers(min_value=1, max_value=7))
    docs = [
        draw(st.frozensets(st.integers(0, 8), max_size=5))
        for _ in range(n_objects)
    ]
    keywords = draw(st.frozensets(st.integers(0, 8), min_size=1, max_size=4))
    threshold = draw(
        st.floats(min_value=-0.2, max_value=1.2, allow_nan=False)
    )
    return docs, keywords, threshold


def _stats_of(docs):
    kcm = {}
    for doc in docs:
        for term in doc:
            kcm[term] = kcm.get(term, 0) + 1
    return NodeTextStats(len(docs), kcm)


class TestBoundsSoundness:
    @given(worlds())
    @settings(max_examples=500)
    def test_max_dom_upper_bounds_truth(self, world):
        docs, keywords, threshold = world
        stats = _stats_of(docs)
        # Theorem 2 semantics: an object *can* dominate only if
        # TSim > L, so the true count of potential dominators is the
        # number of objects with TSim > L in this world.
        truth = sum(1 for d in docs if _jaccard(d, keywords) > threshold)
        assert max_dom(stats, keywords, threshold) >= truth

    @given(worlds())
    @settings(max_examples=500)
    def test_min_dom_lower_bounds_truth(self, world):
        docs, keywords, threshold = world
        stats = _stats_of(docs)
        # Dual semantics: objects with TSim > U surely dominate; the
        # world's count of sure dominators must be >= MinDom.
        truth = sum(1 for d in docs if _jaccard(d, keywords) > threshold)
        assert min_dom(stats, keywords, threshold) <= truth

    @given(worlds())
    @settings(max_examples=300)
    def test_min_never_exceeds_max(self, world):
        docs, keywords, threshold = world
        stats = _stats_of(docs)
        assert min_dom(stats, keywords, threshold) <= max_dom(
            stats, keywords, threshold
        )

    @given(worlds())
    @settings(max_examples=500)
    def test_fast_search_matches_literal_scan(self, world):
        """The ternary/binary-search implementation must return exactly
        what the paper's literal downward scan returns (the concavity
        argument in bounds.py is what this test exercises)."""
        docs, keywords, threshold = world
        stats = _stats_of(docs)
        assert max_dom(stats, keywords, threshold) == max_dom_scan(
            stats, keywords, threshold
        )
        assert min_dom(stats, keywords, threshold) == min_dom_scan(
            stats, keywords, threshold
        )

    @given(worlds())
    @settings(max_examples=300)
    def test_bounds_within_cnt(self, world):
        docs, keywords, threshold = world
        stats = _stats_of(docs)
        for bound in (
            max_dom(stats, keywords, threshold),
            min_dom(stats, keywords, threshold),
        ):
            assert 0 <= bound <= len(docs)
