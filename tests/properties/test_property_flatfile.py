"""Property-based round-trip tests for the flat-file format."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, SpatialObject, Vocabulary, load_flatfile, save_flatfile

_WORD = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def datasets_with_vocab(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    vocabulary = Vocabulary()
    objects = []
    for i in range(n):
        x = draw(
            st.floats(
                min_value=-180.0, max_value=180.0, allow_nan=False, width=32
            )
        )
        y = draw(
            st.floats(min_value=-90.0, max_value=90.0, allow_nan=False, width=32)
        )
        words = draw(st.frozensets(_WORD, min_size=1, max_size=4))
        objects.append(
            SpatialObject(
                oid=i, loc=(float(x), float(y)), doc=vocabulary.encode(words)
            )
        )
    return Dataset(objects, diagonal=1.0, name="prop"), vocabulary


class TestFlatfileRoundTrip:
    @given(pair=datasets_with_vocab())
    @settings(max_examples=60, deadline=None)
    def test_documents_survive(self, pair, tmp_path_factory):
        dataset, vocabulary = pair
        path = tmp_path_factory.mktemp("flat") / "data.txt"
        save_flatfile(dataset, vocabulary, path)
        loaded, loaded_vocab = load_flatfile(path, normalize=False)
        assert len(loaded) == len(dataset)
        for original, reloaded in zip(dataset, loaded):
            assert original.oid == reloaded.oid
            assert sorted(vocabulary.decode(original.doc)) == sorted(
                loaded_vocab.decode(reloaded.doc)
            )

    @given(pair=datasets_with_vocab())
    @settings(max_examples=40, deadline=None)
    def test_coordinates_survive_within_format_precision(
        self, pair, tmp_path_factory
    ):
        dataset, vocabulary = pair
        path = tmp_path_factory.mktemp("flat") / "data.txt"
        save_flatfile(dataset, vocabulary, path)
        loaded, _ = load_flatfile(path, normalize=False)
        for original, reloaded in zip(dataset, loaded):
            assert original.loc[0] == pytest.approx(reloaded.loc[0], abs=1e-7)
            assert original.loc[1] == pytest.approx(reloaded.loc[1], abs=1e-7)

    @given(pair=datasets_with_vocab())
    @settings(max_examples=40, deadline=None)
    def test_normalized_load_is_unit_square(self, pair, tmp_path_factory):
        dataset, vocabulary = pair
        path = tmp_path_factory.mktemp("flat") / "data.txt"
        save_flatfile(dataset, vocabulary, path)
        loaded, _ = load_flatfile(path, normalize=True)
        for obj in loaded:
            assert -1e-9 <= obj.loc[0] <= 1.0 + 1e-9
            assert -1e-9 <= obj.loc[1] <= 1.0 + 1e-9
