"""Property-based tests for the refinement-axis extensions.

On arbitrary small instances, every axis (keywords, α, location, and
the integrated combination) must return a penalty no worse than the
basic refinement's λ, and its refined query must actually revive the
missing object.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    AlphaRefinementAlgorithm,
    Dataset,
    KcRTree,
    LocationRefinementAlgorithm,
    MissingObjectError,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    WhyNotQuestion,
)


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    objects = []
    for i in range(n):
        x = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        y = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        doc = draw(st.frozensets(st.integers(0, 4), min_size=1, max_size=3))
        objects.append(SpatialObject(oid=i, loc=(x, y), doc=doc))
    dataset = Dataset(objects, diagonal=2.0**0.5)
    qdoc = draw(st.frozensets(st.integers(0, 4), min_size=1, max_size=2))
    query = SpatialKeywordQuery(
        loc=(
            draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
            draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        ),
        doc=qdoc,
        k=draw(st.integers(min_value=1, max_value=3)),
        alpha=draw(st.floats(min_value=0.2, max_value=0.8, allow_nan=False)),
    )
    missing = draw(st.integers(min_value=0, max_value=n - 1))
    lam = draw(st.floats(min_value=0.1, max_value=0.9, allow_nan=False))
    return dataset, WhyNotQuestion(query, (missing,), lam=lam)


def _is_actually_missing(dataset, question):
    oracle = Oracle(dataset)
    return (
        oracle.rank_of_set(question.missing, question.query)
        > question.query.k
    )


class TestAxesNeverWorseThanBasic:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_alpha_axis(self, instance):
        dataset, question = instance
        assume(_is_actually_missing(dataset, question))
        tree = SetRTree(dataset, capacity=4)
        answer = AlphaRefinementAlgorithm(tree, n_samples=16).answer(question)
        assert answer.refined.penalty <= question.lam + 1e-9
        refined = answer.refined.as_query(question.query)
        oracle = Oracle(dataset)
        assert (
            oracle.rank_of_set(question.missing, refined) <= refined.k
        )

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_location_axis(self, instance):
        dataset, question = instance
        assume(_is_actually_missing(dataset, question))
        tree = SetRTree(dataset, capacity=4)
        answer = LocationRefinementAlgorithm(tree, n_fractions=6).answer(
            question
        )
        assert answer.refined.penalty <= question.lam + 1e-9
        loc = getattr(answer, "refined_loc", None)
        oracle = Oracle(dataset)
        if loc is None:
            assert answer.refined.k == answer.initial_rank
        else:
            moved = SpatialKeywordQuery(
                loc=loc,
                doc=question.query.doc,
                k=answer.refined.k,
                alpha=question.query.alpha,
            )
            assert (
                oracle.rank_of_set(question.missing, moved)
                <= answer.refined.k
            )
