"""Property-based tests for the penalty model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PenaltyModel


@st.composite
def penalty_models(draw):
    k0 = draw(st.integers(min_value=1, max_value=50))
    initial_rank = draw(st.integers(min_value=k0 + 1, max_value=k0 + 300))
    universe = draw(st.integers(min_value=1, max_value=20))
    lam = draw(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
    )
    return PenaltyModel(
        k0=k0, initial_rank=initial_rank, doc_universe_size=universe, lam=lam
    )


class TestPenaltyProperties:
    @given(penalty_models(), st.integers(0, 20), st.integers(1, 400))
    def test_non_negative(self, model, delta_doc, rank):
        assert model.penalty(delta_doc, rank) >= 0.0

    @given(penalty_models(), st.integers(0, 20), st.integers(1, 399))
    def test_monotone_in_rank(self, model, delta_doc, rank):
        assert model.penalty(delta_doc, rank) <= model.penalty(
            delta_doc, rank + 1
        ) + 1e-12

    @given(penalty_models(), st.integers(0, 19), st.integers(1, 400))
    def test_monotone_in_delta_doc(self, model, delta_doc, rank):
        assert model.penalty(delta_doc, rank) <= model.penalty(
            delta_doc + 1, rank
        ) + 1e-12

    @given(penalty_models())
    def test_basic_refinement_is_lambda(self, model):
        # λ·margin/margin rounds in floats; equality holds to one ulp.
        assert model.penalty(0, model.initial_rank) == pytest.approx(
            model.lam, rel=1e-12
        )

    @given(penalty_models(), st.integers(1, 400))
    def test_refined_k_revives(self, model, rank):
        assert model.refined_k(rank) >= rank or model.refined_k(rank) == model.k0
        assert model.refined_k(rank) >= model.k0


class TestMaxUsefulRankProperty:
    @given(
        penalty_models(),
        st.integers(0, 20),
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=300)
    def test_strict_improvement_boundary(self, model, delta_doc, p_c):
        bound = model.max_useful_rank(p_c, delta_doc)
        if bound is None:
            assert model.keyword_penalty(delta_doc) >= p_c
            return
        if bound >= 10**15:
            # Unbounded sentinel (λ=0 or degenerate tiny λ): the bound
            # may overshoot, which only weakens pruning, never answers.
            return
        assert model.penalty(delta_doc, bound) < p_c
        assert model.penalty(delta_doc, bound + 1) >= p_c
