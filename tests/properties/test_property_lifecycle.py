"""Stateful lifecycle test: arbitrary insert/delete interleavings.

A hypothesis rule-based machine grows and shrinks a SetR-tree with
random objects, checking after every operation that the tree still
validates, agrees with a brute-force oracle on a probe query, and
keeps its root summary consistent with the live membership.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import (
    Dataset,
    Oracle,
    SetRTree,
    SpatialKeywordQuery,
    SpatialObject,
    TopKSearcher,
)

_COORD = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_DOC = st.frozensets(st.integers(0, 5), min_size=1, max_size=3)


class IndexLifecycleMachine(RuleBasedStateMachine):
    @initialize(
        x=_COORD,
        y=_COORD,
        doc=_DOC,
    )
    def setup(self, x, y, doc):
        first = SpatialObject(oid=0, loc=(x, y), doc=doc)
        self.dataset = Dataset([first], diagonal=2.0**0.5)
        self.tree = SetRTree(self.dataset, capacity=3)
        self.next_oid = 1

    @rule(x=_COORD, y=_COORD, doc=_DOC)
    def insert(self, x, y, doc):
        obj = SpatialObject(oid=self.next_oid, loc=(x, y), doc=doc)
        self.next_oid += 1
        self.dataset.add(obj)
        self.tree.insert(obj)

    @rule(data=st.data())
    def delete(self, data):
        if len(self.dataset) <= 1:
            return
        oid = data.draw(
            st.sampled_from(sorted(o.oid for o in self.dataset.objects))
        )
        self.tree.delete(self.dataset.get(oid))
        self.dataset.remove(oid)

    @rule(x=_COORD, y=_COORD, doc=_DOC, k=st.integers(1, 5))
    def probe_query(self, x, y, doc, k):
        query = SpatialKeywordQuery(loc=(x, y), doc=doc, k=k)
        got = [oid for _, oid in TopKSearcher(self.tree).top_k(query)]
        oracle = Oracle(self.dataset)
        expected = oracle.top_k_ids(query)
        scores = oracle.scores(query)
        row = {o.oid: i for i, o in enumerate(self.dataset.objects)}
        assert sorted(round(scores[row[i]], 10) for i in got) == sorted(
            round(scores[row[i]], 10) for i in expected
        )

    @invariant()
    def structure_valid(self):
        self.tree.validate()

    @invariant()
    def root_summary_tracks_membership(self):
        union, intersection = self.tree.fetch_set_pair(
            self.tree.root_summary_record
        )
        docs = [o.doc for o in self.dataset.objects]
        assert union == frozenset().union(*docs)
        assert intersection == frozenset.intersection(*docs)


IndexLifecycleMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestIndexLifecycle = IndexLifecycleMachine.TestCase
