"""Public API surface checks.

Deliverable-level guarantees: everything exported from the package
root exists, is documented, and the exported ``__all__`` sets are
accurate.  These tests fail the moment an export is added without a
doc comment — keeping the "doc comments on every public item"
contract honest.
"""

import inspect

import pytest

import repro


class TestAllExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_version_present(self):
        assert repro.__version__

    def test_key_classes_exported(self):
        for name in (
            "WhyNotEngine",
            "SetRTree",
            "KcRTree",
            "BasicAlgorithm",
            "AdvancedAlgorithm",
            "KcRAlgorithm",
            "ApproximateAlgorithm",
            "SpatialKeywordQuery",
            "WhyNotQuestion",
            "PenaltyModel",
            "save_index",
            "load_index",
        ):
            assert name in repro.__all__


class TestDocumentation:
    def _public_objects(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield name, obj

    def test_every_export_documented(self):
        undocumented = [
            name
            for name, obj in self._public_objects()
            if not (obj.__doc__ or "").strip()
        ]
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_public_method_documented(self):
        undocumented = []
        for name, obj in self._public_objects():
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (attr.__doc__ or "").strip():
                    undocumented.append(f"{name}.{attr_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_every_module_documented(self):
        import pkgutil

        undocumented = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = __import__(module_info.name, fromlist=["_"])
            if not (module.__doc__ or "").strip():
                undocumented.append(module_info.name)
        assert not undocumented, f"modules without docstrings: {undocumented}"


class TestEngineMethodRegistry:
    def test_methods_list_matches_dispatch(self, euro_engine, euro_cases):
        from repro.core.engine import METHODS

        question = euro_cases[0]
        for method in METHODS:
            answer = euro_engine.answer(question, method=method)
            assert answer.refined.penalty <= question.lam + 1e-9
