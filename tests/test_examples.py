"""Every example script must run to completion.

The examples are the quickstart documentation; a broken example is a
broken deliverable, so each one executes as a subprocess (slow-marked)
and its key output lines are asserted.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

_EXPECTED_SNIPPETS = {
    "quickstart.py": ["top-1 result", "penalty=0.4167", "m=0 revived: True"],
    "hotel_whynot.py": ["the expected hotel", "Suggested refinement"],
    "merchant_advertising.py": [
        "inserted into the live indexes",
        "Reverse keyword search",
        "finds me: True",
    ],
    "multi_missing_and_approximate.py": ["all revived=True", "T=800"],
    "integrated_refinement.py": ["winner", "keyword adaption wins"],
    "bring_your_own_data.py": ["persisted and reloaded", "why-not answer"],
}


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr}"
    return result.stdout


class TestExamplesPresent:
    def test_all_examples_have_expectations(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert scripts == set(_EXPECTED_SNIPPETS)

    def test_examples_have_docstrings(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            source = path.read_text(encoding="utf-8")
            assert '"""' in source.split("\n", 3)[1] + source, path.name


@pytest.mark.slow
@pytest.mark.parametrize("script", sorted(_EXPECTED_SNIPPETS))
def test_example_runs(script):
    output = _run(script)
    for snippet in _EXPECTED_SNIPPETS[script]:
        assert snippet in output, f"{script} output missing {snippet!r}"
