"""Unit tests for keyword interning."""

import pytest

from repro import Vocabulary


class TestInterning:
    def test_ids_are_dense_and_stable(self):
        vocab = Vocabulary()
        assert vocab.intern("hotel") == 0
        assert vocab.intern("clean") == 1
        assert vocab.intern("hotel") == 0  # repeated intern is stable

    def test_constructor_seeds_words(self):
        vocab = Vocabulary(["a", "b", "a"])
        assert len(vocab) == 2
        assert vocab.id_of("b") == 1

    def test_id_of_unknown_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.id_of("zzz")

    def test_word_of(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.word_of(1) == "y"
        with pytest.raises(IndexError):
            vocab.word_of(5)
        with pytest.raises(IndexError):
            vocab.word_of(-1)


class TestEncodeDecode:
    def test_roundtrip(self):
        vocab = Vocabulary()
        doc = vocab.encode(["sichuan", "cuisine", "restaurant"])
        assert isinstance(doc, frozenset)
        assert vocab.decode(doc) == ["cuisine", "restaurant", "sichuan"]

    def test_encode_interns_new_words(self):
        vocab = Vocabulary(["a"])
        vocab.encode(["a", "b"])
        assert "b" in vocab

    def test_container_protocol(self):
        vocab = Vocabulary(["a", "b"])
        assert list(vocab) == ["a", "b"]
        assert vocab.words == ("a", "b")
        assert "a" in vocab and "c" not in vocab
