"""Tests for keyword normalisation."""

import pytest

from repro.data.text import DEFAULT_STOPWORDS, normalize_keywords, tokenize


class TestTokenize:
    def test_lowercases_and_splits_on_punctuation(self):
        assert tokenize("Joe's Café-Grill") == ["joe", "s", "caf", "grill"]

    def test_keeps_digits(self):
        assert tokenize("open 24hr, route 66") == ["open", "24hr", "route", "66"]

    def test_empty(self):
        assert tokenize("... --- !!!") == []


class TestNormalizeKeywords:
    def test_docstring_example(self):
        assert normalize_keywords(
            "Joe's Café & Grill — the BEST 24hr diner!"
        ) == ("joe", "caf", "grill", "24hr", "diner")

    def test_stopwords_dropped(self):
        result = normalize_keywords("the hotel near the station")
        assert "the" not in result
        assert "near" not in result
        assert result == ("hotel", "station")

    def test_custom_stopwords(self):
        result = normalize_keywords("hotel station", stopwords={"hotel"})
        assert result == ("station",)

    def test_no_stopwords(self):
        result = normalize_keywords("the hotel", stopwords=())
        assert result == ("the", "hotel")

    def test_short_tokens_dropped_unless_digit(self):
        assert normalize_keywords("a b 5 cd") == ("5", "cd")

    def test_deduplication_keeps_first_order(self):
        assert normalize_keywords("spa hotel spa pool hotel") == (
            "spa",
            "hotel",
            "pool",
        )

    def test_token_iterable_input(self):
        result = normalize_keywords(["Clean Rooms!", "Free WIFI"])
        assert result == ("clean", "rooms", "free", "wifi")

    def test_feeds_vocabulary(self):
        from repro import Vocabulary

        vocab = Vocabulary()
        doc = vocab.encode(normalize_keywords("Sichuan HOTPOT, spicy!!!"))
        assert vocab.decode(doc) == ["hotpot", "sichuan", "spicy"]

    def test_min_length_knob(self):
        assert normalize_keywords("go to spa", min_length=3, stopwords=()) == (
            "spa",
        )

    def test_default_stopwords_frozen(self):
        assert "the" in DEFAULT_STOPWORDS
        assert isinstance(DEFAULT_STOPWORDS, frozenset)
