"""Tests for the EURO/GN-style flat-file loader."""

import math

import pytest

from repro import (
    DatasetError,
    load_flatfile,
    make_euro_like,
    save_flatfile,
)
from repro.data.vocabulary import Vocabulary


@pytest.fixture()
def sample_file(tmp_path):
    path = tmp_path / "pois.txt"
    path.write_text(
        "\n".join(
            [
                "# a comment line",
                "0 -8.61 41.15 hotel clean comfortable",
                "1 2.35 48.85 restaurant sichuan",
                "",
                "2 12.49 41.89 museum",
            ]
        ),
        encoding="utf-8",
    )
    return path


class TestLoading:
    def test_basic_parse(self, sample_file):
        dataset, vocab = load_flatfile(sample_file)
        assert len(dataset) == 3
        assert dataset.name == "pois"
        assert vocab.decode(dataset.get(0).doc) == [
            "clean",
            "comfortable",
            "hotel",
        ]

    def test_normalised_into_unit_square(self, sample_file):
        dataset, _ = load_flatfile(sample_file)
        for obj in dataset:
            assert 0.0 <= obj.loc[0] <= 1.0
            assert 0.0 <= obj.loc[1] <= 1.0
        assert dataset.diagonal == pytest.approx(math.sqrt(2.0))

    def test_raw_coordinates_mode(self, sample_file):
        dataset, _ = load_flatfile(sample_file, normalize=False)
        assert dataset.get(1).loc == (2.35, 48.85)

    def test_shared_vocabulary(self, sample_file):
        vocab = Vocabulary(["hotel"])
        dataset, out = load_flatfile(sample_file, vocabulary=vocab)
        assert out is vocab
        assert vocab.id_of("hotel") == 0  # pre-seeded id preserved


class TestErrors:
    def test_too_few_fields(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1.0 2.0\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="expected"):
            load_flatfile(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 east north hotel\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_flatfile(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="no objects"):
            load_flatfile(path)


class TestRoundTrip:
    def test_synthetic_roundtrip(self, tmp_path):
        dataset, vocab = make_euro_like(150, seed=9)
        path = tmp_path / "euro.txt"
        save_flatfile(dataset, vocab, path)
        loaded, loaded_vocab = load_flatfile(path, normalize=False)
        assert len(loaded) == len(dataset)
        for a, b in zip(dataset, loaded):
            assert a.oid == b.oid
            assert a.loc[0] == pytest.approx(b.loc[0], abs=1e-7)
            # documents survive via decoded words
            assert sorted(vocab.decode(a.doc)) == sorted(
                loaded_vocab.decode(b.doc)
            )
