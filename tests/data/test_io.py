"""Unit tests for dataset persistence."""

import json

import pytest

from repro import load_dataset, make_euro_like, save_dataset


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        dataset, vocab = make_euro_like(200, seed=3)
        path = tmp_path / "euro.json"
        save_dataset(dataset, vocab, path)
        loaded, loaded_vocab = load_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.diagonal == dataset.diagonal
        assert len(loaded) == len(dataset)
        for a, b in zip(dataset, loaded):
            assert a.oid == b.oid
            assert a.loc == b.loc
            assert a.doc == b.doc
        assert loaded_vocab.words == vocab.words

    def test_doc_frequency_recomputed(self, tmp_path):
        dataset, vocab = make_euro_like(150, seed=4)
        path = tmp_path / "d.json"
        save_dataset(dataset, vocab, path)
        loaded, _ = load_dataset(path)
        assert dict(loaded.doc_frequency) == dict(dataset.doc_frequency)


class TestFormatGuard:
    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_dataset(path)
