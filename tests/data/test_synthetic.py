"""Unit tests for the synthetic dataset generators."""

import math

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticConfig,
    generate,
    make_euro_like,
    make_gn_like,
    make_micro_example,
)


class TestConfigValidation:
    def test_bad_n_objects(self):
        with pytest.raises(ValueError):
            SyntheticConfig(0, 0.2, (2, 8), 0.5, 4, 0.02)

    def test_bad_doc_length_range(self):
        with pytest.raises(ValueError):
            SyntheticConfig(10, 0.2, (0, 8), 0.5, 4, 0.02)
        with pytest.raises(ValueError):
            SyntheticConfig(10, 0.2, (5, 2), 0.5, 4, 0.02)

    def test_bad_cluster_fraction(self):
        with pytest.raises(ValueError):
            SyntheticConfig(10, 0.2, (2, 8), 1.5, 4, 0.02)

    def test_vocab_size_floor(self):
        config = SyntheticConfig(10, 0.0001, (2, 8), 0.5, 4, 0.02)
        assert config.vocab_size >= 9  # at least max doc length + 1


class TestGeneratedProperties:
    @pytest.fixture(scope="class")
    def euro(self):
        return make_euro_like(1500, seed=11)

    def test_cardinality(self, euro):
        dataset, _ = euro
        assert len(dataset) == 1500

    def test_locations_in_unit_square(self, euro):
        dataset, _ = euro
        for obj in dataset:
            assert 0.0 <= obj.loc[0] <= 1.0
            assert 0.0 <= obj.loc[1] <= 1.0

    def test_doc_lengths_in_range(self, euro):
        dataset, _ = euro
        lengths = [len(o.doc) for o in dataset]
        assert min(lengths) >= 2
        assert max(lengths) <= 8

    def test_diagonal_pinned_to_space(self, euro):
        dataset, _ = euro
        assert dataset.diagonal == pytest.approx(math.sqrt(2.0))

    def test_keyword_skew_is_zipfian(self, euro):
        """The most frequent term should dwarf the median term."""
        dataset, _ = euro
        freqs = sorted(dataset.doc_frequency.values(), reverse=True)
        assert freqs[0] > 10 * freqs[len(freqs) // 2]

    def test_determinism(self):
        a, _ = make_euro_like(300, seed=5)
        b, _ = make_euro_like(300, seed=5)
        assert [o.loc for o in a] == [o.loc for o in b]
        assert [o.doc for o in a] == [o.doc for o in b]

    def test_different_seeds_differ(self):
        a, _ = make_euro_like(300, seed=5)
        b, _ = make_euro_like(300, seed=6)
        assert [o.loc for o in a] != [o.loc for o in b]


class TestGnLike:
    def test_shorter_docs_than_euro(self):
        gn, _ = make_gn_like(800, seed=1)
        lengths = [len(o.doc) for o in gn]
        assert max(lengths) <= 4
        assert gn.name == "gn-like"

    def test_same_space_diagonal_across_sizes(self):
        """Fig 13 requires identical normalisation across cardinalities."""
        small, _ = make_gn_like(200, seed=1)
        large, _ = make_gn_like(800, seed=1)
        assert small.diagonal == large.diagonal


class TestMicroExample:
    def test_matches_fig1_geometry(self):
        dataset, vocab = make_micro_example()
        assert len(dataset) == 4
        assert dataset.diagonal == 1.0
        # 1 - SDist values from Fig 1(b)
        expected = {0: 0.5, 1: 0.2, 2: 0.9, 3: 0.4}
        for oid, one_minus in expected.items():
            d = dataset.normalized_distance(dataset.get(oid).loc, (0.0, 0.0))
            assert 1.0 - d == pytest.approx(one_minus)

    def test_documents_match_fig1(self):
        dataset, vocab = make_micro_example()
        t = {w: vocab.id_of(w) for w in ("t1", "t2", "t3")}
        assert dataset.get(0).doc == {t["t1"], t["t2"], t["t3"]}
        assert dataset.get(1).doc == {t["t1"]}
        assert dataset.get(2).doc == {t["t1"], t["t3"]}
        assert dataset.get(3).doc == {t["t1"], t["t2"]}
