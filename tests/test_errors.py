"""Tests for the exception taxonomy."""

import pytest

from repro import (
    DatasetError,
    IndexStructureError,
    InvalidParameterError,
    InvalidQueryError,
    MissingObjectError,
    ReproError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DatasetError,
            IndexStructureError,
            InvalidParameterError,
            InvalidQueryError,
            MissingObjectError,
            StorageError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_also_value_errors(self):
        """Callers using plain ``except ValueError`` still catch input
        validation failures — the dual inheritance contract."""
        for exc in (
            DatasetError,
            InvalidParameterError,
            InvalidQueryError,
            MissingObjectError,
        ):
            assert issubclass(exc, ValueError)

    def test_runtime_families(self):
        assert issubclass(StorageError, RuntimeError)
        assert issubclass(IndexStructureError, RuntimeError)

    def test_one_base_catches_everything(self, euro_engine, euro_cases):
        with pytest.raises(ReproError):
            euro_engine.answer(euro_cases[0], method="not-a-method")


class TestSurfacesAtBoundaries:
    def test_engine_rejects_dice_for_kcr(self, euro_small):
        """The KcR bounds are Jaccard-specific; the engine surfaces the
        rejection instead of silently returning wrong bounds."""
        from repro import WhyNotEngine

        dataset, _ = euro_small
        engine = WhyNotEngine(dataset, similarity="dice")
        query_obj = dataset.objects[0]
        from repro import SpatialKeywordQuery, WhyNotQuestion

        doc = frozenset(list(query_obj.doc)[:2]) or frozenset({0})
        question = WhyNotQuestion(
            SpatialKeywordQuery(loc=query_obj.loc, doc=doc, k=3), (999,)
        )
        with pytest.raises(ValueError):
            engine.answer(question, method="kcr")
