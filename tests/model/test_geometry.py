"""Unit tests for geometry primitives."""

import math

import pytest

from repro.model.geometry import Point, Rect, bounding_rect, euclidean, space_diagonal


class TestEuclidean:
    def test_zero_distance(self):
        assert euclidean((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_pythagorean_triple(self):
        assert euclidean((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_symmetry(self):
        a, b = (0.3, 0.9), (0.7, 0.1)
        assert euclidean(a, b) == euclidean(b, a)


class TestRectConstruction:
    def test_from_point_is_degenerate(self):
        rect = Rect.from_point((2.0, 3.0))
        assert rect.min_x == rect.max_x == 2.0
        assert rect.min_y == rect.max_y == 3.0
        assert rect.area() == 0.0

    def test_malformed_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_center_width_height(self):
        rect = Rect(0.0, 0.0, 4.0, 2.0)
        assert rect.center == (2.0, 1.0)
        assert rect.width == 4.0
        assert rect.height == 2.0
        assert rect.perimeter() == 12.0


class TestRectPredicates:
    def test_contains_point_boundary(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains_point((0.0, 0.0))
        assert rect.contains_point((1.0, 1.0))
        assert not rect.contains_point((1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        inner = Rect(1.0, 1.0, 2.0, 2.0)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        c = Rect(5.0, 5.0, 6.0, 6.0)
        touching = Rect(2.0, 0.0, 4.0, 2.0)
        assert a.intersects(b)
        assert not a.intersects(c)
        assert a.intersects(touching)  # shared edge counts

    def test_union(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(2.0, -1.0, 3.0, 0.5)
        u = a.union(b)
        assert u == Rect(0.0, -1.0, 3.0, 1.0)


class TestMinMaxDist:
    def test_min_dist_inside_is_zero(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.min_dist((1.0, 1.0)) == 0.0

    def test_min_dist_axis_aligned(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.min_dist((5.0, 1.0)) == pytest.approx(3.0)
        assert rect.min_dist((1.0, -2.0)) == pytest.approx(2.0)

    def test_min_dist_corner(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.min_dist((4.0, 5.0)) == pytest.approx(5.0)

    def test_max_dist_dominates_min_dist(self):
        rect = Rect(0.0, 0.0, 2.0, 3.0)
        for point in [(-1.0, -1.0), (1.0, 1.0), (5.0, 0.0), (0.5, 10.0)]:
            assert rect.max_dist(point) >= rect.min_dist(point)

    def test_max_dist_is_farthest_corner(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        point = (-1.0, -1.0)
        expected = max(euclidean(point, c) for c in rect.corners())
        assert rect.max_dist(point) == pytest.approx(expected)

    def test_max_dist_point_inside(self):
        rect = Rect(0.0, 0.0, 4.0, 4.0)
        # from the center, farthest corner is at distance 2*sqrt(2)
        assert rect.max_dist((2.0, 2.0)) == pytest.approx(2.0 * math.sqrt(2.0))


class TestBoundingRect:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_rect([])

    def test_single(self):
        rect = Rect(0.0, 1.0, 2.0, 3.0)
        assert bounding_rect([rect]) == rect

    def test_many(self):
        rects = [Rect.from_point((float(i), float(-i))) for i in range(5)]
        mbr = bounding_rect(rects)
        assert mbr == Rect(0.0, -4.0, 4.0, 0.0)


class TestSpaceDiagonal:
    def test_empty_defaults_to_one(self):
        assert space_diagonal([]) == 1.0

    def test_single_point_defaults_to_one(self):
        assert space_diagonal([(3.0, 3.0)]) == 1.0

    def test_unit_square(self):
        points = [(0.0, 0.0), (1.0, 1.0), (0.5, 0.5)]
        assert space_diagonal(points) == pytest.approx(math.sqrt(2.0))
