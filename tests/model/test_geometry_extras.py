"""Supplementary geometry tests (corners, degenerate shapes)."""

import pytest

from repro.model.geometry import Rect


class TestCorners:
    def test_four_corners(self):
        rect = Rect(0.0, 1.0, 2.0, 3.0)
        corners = set(rect.corners())
        assert corners == {(0.0, 1.0), (0.0, 3.0), (2.0, 1.0), (2.0, 3.0)}

    def test_degenerate_point_corners_collapse(self):
        rect = Rect.from_point((0.5, 0.5))
        assert set(rect.corners()) == {(0.5, 0.5)}

    def test_max_dist_equals_farthest_corner_everywhere(self):
        rect = Rect(0.25, 0.0, 0.75, 0.5)
        import math

        for point in [(0.0, 0.0), (0.5, 0.25), (1.0, 1.0), (0.25, 0.5)]:
            expected = max(
                math.hypot(point[0] - cx, point[1] - cy)
                for cx, cy in rect.corners()
            )
            assert rect.max_dist(point) == pytest.approx(expected)


class TestZeroAreaSegments:
    def test_horizontal_segment_rect(self):
        rect = Rect(0.0, 0.5, 1.0, 0.5)
        assert rect.area() == 0.0
        assert rect.min_dist((0.5, 0.0)) == pytest.approx(0.5)
        assert rect.contains_point((0.7, 0.5))
        assert not rect.contains_point((0.7, 0.51))

    def test_union_of_disjoint_points(self):
        a = Rect.from_point((0.0, 0.0))
        b = Rect.from_point((1.0, 2.0))
        u = a.union(b)
        assert u == Rect(0.0, 0.0, 1.0, 2.0)
        assert u.contains_rect(a) and u.contains_rect(b)
