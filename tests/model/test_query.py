"""Unit tests for query types."""

import pytest

from repro import (
    InvalidParameterError,
    InvalidQueryError,
    SpatialKeywordQuery,
    WhyNotQuestion,
)


class TestSpatialKeywordQuery:
    def test_valid_query(self):
        q = SpatialKeywordQuery(loc=(0.1, 0.2), doc=frozenset({1, 2}), k=5, alpha=0.3)
        assert q.k == 5
        assert q.alpha == 0.3
        assert q.doc == frozenset({1, 2})

    def test_doc_coerced(self):
        q = SpatialKeywordQuery(loc=(0.0, 0.0), doc=[1, 1, 2], k=1)
        assert q.doc == frozenset({1, 2})

    @pytest.mark.parametrize("k", [0, -3])
    def test_nonpositive_k_rejected(self, k):
        with pytest.raises(InvalidQueryError):
            SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1}), k=k)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5])
    def test_alpha_open_interval(self, alpha):
        with pytest.raises(InvalidQueryError):
            SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1}), k=1, alpha=alpha)

    def test_non_int_keywords_rejected(self):
        with pytest.raises(InvalidQueryError):
            SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({"hotel"}), k=1)

    def test_with_keywords_preserves_rest(self):
        q = SpatialKeywordQuery(loc=(0.1, 0.2), doc=frozenset({1}), k=7, alpha=0.4)
        q2 = q.with_keywords({2, 3})
        assert q2.doc == frozenset({2, 3})
        assert (q2.loc, q2.k, q2.alpha) == (q.loc, q.k, q.alpha)

    def test_with_k(self):
        q = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1}), k=1)
        assert q.with_k(9).k == 9

    def test_frozen(self):
        q = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1}), k=1)
        with pytest.raises(AttributeError):
            q.k = 3


class TestWhyNotQuestion:
    def _query(self):
        return SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({1}), k=1)

    def test_missing_deduplicated_in_order(self):
        question = WhyNotQuestion(self._query(), (5, 3, 5, 3))
        assert question.missing == (5, 3)

    def test_empty_missing_rejected(self):
        with pytest.raises(InvalidQueryError):
            WhyNotQuestion(self._query(), ())

    @pytest.mark.parametrize("lam", [-0.01, 1.01])
    def test_lambda_out_of_range(self, lam):
        with pytest.raises(InvalidParameterError):
            WhyNotQuestion(self._query(), (1,), lam=lam)

    @pytest.mark.parametrize("lam", [0.0, 0.5, 1.0])
    def test_lambda_endpoints_allowed(self, lam):
        assert WhyNotQuestion(self._query(), (1,), lam=lam).lam == lam
