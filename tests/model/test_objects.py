"""Unit tests for SpatialObject and Dataset."""

import pytest

from repro import Dataset, DatasetError, SpatialObject


def _obj(oid, x=0.0, y=0.0, doc=(1,)):
    return SpatialObject(oid=oid, loc=(x, y), doc=frozenset(doc))


class TestSpatialObject:
    def test_doc_coerced_to_frozenset(self):
        obj = SpatialObject(oid=1, loc=(0.0, 0.0), doc=[3, 3, 4])
        assert obj.doc == frozenset({3, 4})

    def test_bad_location_rejected(self):
        with pytest.raises(DatasetError):
            SpatialObject(oid=1, loc=(0.0, 0.0, 0.0), doc=frozenset())


class TestDatasetConstruction:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([_obj(1), _obj(1)])

    def test_len_iter_contains(self):
        ds = Dataset([_obj(1), _obj(2), _obj(5)])
        assert len(ds) == 3
        assert {o.oid for o in ds} == {1, 2, 5}
        assert 5 in ds
        assert 4 not in ds

    def test_get_unknown_raises(self):
        ds = Dataset([_obj(1)])
        with pytest.raises(DatasetError):
            ds.get(99)

    def test_bad_diagonal_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([_obj(1)], diagonal=0.0)


class TestDerivedStatistics:
    def test_doc_frequency(self):
        ds = Dataset(
            [
                _obj(1, doc=(10, 11)),
                _obj(2, doc=(10,)),
                _obj(3, doc=(12,)),
            ]
        )
        assert ds.frequency(10) == 2
        assert ds.frequency(11) == 1
        assert ds.frequency(999) == 0
        assert ds.vocabulary_size == 3

    def test_diagonal_computed_from_extent(self):
        ds = Dataset([_obj(1, 0.0, 0.0), _obj(2, 3.0, 4.0)])
        assert ds.diagonal == pytest.approx(5.0)

    def test_diagonal_override(self):
        ds = Dataset([_obj(1, 0.0, 0.0), _obj(2, 3.0, 4.0)], diagonal=10.0)
        assert ds.diagonal == 10.0
        assert ds.normalized_distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(0.5)

    def test_normalized_distance_clamped(self):
        ds = Dataset([_obj(1, 0.0, 0.0), _obj(2, 1.0, 0.0)], diagonal=1.0)
        assert ds.normalized_distance((0.0, 0.0), (9.0, 0.0)) == 1.0

    def test_summary_shape(self):
        ds = Dataset([_obj(1, doc=(1, 2)), _obj(2, doc=(2,))], name="demo")
        summary = ds.summary()
        assert summary["name"] == "demo"
        assert summary["total_objects"] == 2
        assert summary["total_distinct_words"] == 2
        assert summary["avg_doc_length"] == pytest.approx(1.5)
