"""Unit tests for the Scorer (Eqns 1-3 reference semantics)."""

import pytest

from repro import Scorer, SpatialKeywordQuery
from repro.model.similarity import DICE


class TestFig1Scores:
    """The complete score table of the paper's Fig 1(b)."""

    @pytest.fixture()
    def setup(self, micro):
        dataset, vocab = micro
        scorer = Scorer(dataset)
        t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
        query = SpatialKeywordQuery(
            loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1, alpha=0.5
        )
        return dataset, scorer, query

    def test_spatial_scores(self, setup):
        dataset, scorer, query = setup
        expected = {0: 0.5, 1: 0.8, 2: 0.1, 3: 0.6}  # SDist (1 - col of Fig 1b)
        for oid, sdist in expected.items():
            assert scorer.sdist(dataset.get(oid), query) == pytest.approx(sdist)

    def test_st_scores(self, setup):
        dataset, scorer, query = setup
        expected = {0: 0.58333, 1: 0.35, 2: 0.61667, 3: 0.7}
        for oid, st in expected.items():
            assert scorer.st(dataset.get(oid), query) == pytest.approx(st, abs=1e-4)

    def test_missing_object_rank_is_3(self, setup):
        dataset, scorer, query = setup
        assert scorer.rank(dataset.get(0), query) == 3

    def test_top_k(self, setup):
        dataset, scorer, query = setup
        top2 = scorer.top_k(query, k=2)
        assert [obj.oid for _, obj in top2] == [3, 2]

    def test_dominators(self, setup):
        dataset, scorer, query = setup
        dominators = scorer.dominators(dataset.get(0), query)
        assert {o.oid for o in dominators} == {2, 3}


class TestRankSemantics:
    def test_ties_do_not_dominate(self, micro):
        dataset, vocab = micro
        scorer = Scorer(dataset)
        t1 = vocab.id_of("t1")
        # With keywords {t1} every object has TSim in {1, 1/2, 1/3};
        # build a query where at least the top object is unique.
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({t1}), k=1)
        for obj in dataset:
            rank = scorer.rank(obj, query)
            strictly_better = sum(
                1 for o in dataset if scorer.st(o, query) > scorer.st(obj, query)
            )
            assert rank == strictly_better + 1

    def test_rank_of_set_is_max(self, micro):
        dataset, vocab = micro
        scorer = Scorer(dataset)
        t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1)
        objs = [dataset.get(0), dataset.get(2)]
        assert scorer.rank_of_set(objs, query) == max(
            scorer.rank(o, query) for o in objs
        )

    def test_rank_of_empty_set_rejected(self, micro):
        dataset, _ = micro
        scorer = Scorer(dataset)
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({0}), k=1)
        with pytest.raises(ValueError):
            scorer.rank_of_set([], query)


class TestAlternativeModels:
    def test_dice_model_changes_scores(self, micro):
        dataset, vocab = micro
        t1, t2 = vocab.id_of("t1"), vocab.id_of("t2")
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1)
        jac = Scorer(dataset)
        dice = Scorer(dataset, model=DICE)
        m = dataset.get(0)
        assert dice.tsim(m, query.doc) == pytest.approx(4 / 5)
        assert jac.tsim(m, query.doc) == pytest.approx(2 / 3)
        assert dice.st(m, query) > jac.st(m, query)

    def test_st_with_keywords_override(self, micro):
        dataset, vocab = micro
        scorer = Scorer(dataset)
        t1, t3 = vocab.id_of("t1"), vocab.id_of("t3")
        query = SpatialKeywordQuery(loc=(0.0, 0.0), doc=frozenset({t1}), k=1)
        m = dataset.get(0)
        override = scorer.st_with_keywords(m, query, frozenset({t1, t3}))
        direct = scorer.st(m, query.with_keywords({t1, t3}))
        assert override == pytest.approx(direct)
