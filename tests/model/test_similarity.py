"""Unit tests for the similarity models and their node bounds."""

import math

import pytest

from repro.model.similarity import COSINE, DICE, JACCARD, get_model

A = frozenset({1, 2, 3})
B = frozenset({2, 3, 4, 5})


class TestJaccard:
    def test_identical_sets(self):
        assert JACCARD.similarity(A, A) == 1.0

    def test_disjoint_sets(self):
        assert JACCARD.similarity(A, frozenset({9})) == 0.0

    def test_partial_overlap(self):
        # |{2,3}| / |{1,2,3,4,5}| = 2/5
        assert JACCARD.similarity(A, B) == pytest.approx(0.4)

    def test_empty_both(self):
        assert JACCARD.similarity(frozenset(), frozenset()) == 0.0

    def test_empty_query(self):
        assert JACCARD.similarity(A, frozenset()) == 0.0

    def test_paper_fig1_values(self):
        """The TSim column of Fig 1(b)."""
        q = frozenset({1, 2})
        assert JACCARD.similarity(frozenset({1, 2, 3}), q) == pytest.approx(2 / 3)
        assert JACCARD.similarity(frozenset({1}), q) == pytest.approx(0.5)
        assert JACCARD.similarity(frozenset({1, 3}), q) == pytest.approx(1 / 3)
        assert JACCARD.similarity(frozenset({1, 2}), q) == 1.0


class TestDice:
    def test_identical(self):
        assert DICE.similarity(A, A) == 1.0

    def test_partial(self):
        # 2*2 / (3+4)
        assert DICE.similarity(A, B) == pytest.approx(4 / 7)

    def test_empty(self):
        assert DICE.similarity(frozenset(), frozenset()) == 0.0


class TestCosine:
    def test_identical(self):
        assert COSINE.similarity(A, A) == pytest.approx(1.0)

    def test_partial(self):
        assert COSINE.similarity(A, B) == pytest.approx(2 / math.sqrt(12))

    def test_empty(self):
        assert COSINE.similarity(A, frozenset()) == 0.0


class TestNodeUpperBounds:
    """Theorem 1-style admissibility: the node bound must dominate the
    similarity of every document between intersection and union."""

    @pytest.mark.parametrize("model", [JACCARD, DICE, COSINE])
    def test_bound_admissible_enumerated(self, model):
        union = frozenset({1, 2, 3, 4})
        intersection = frozenset({1})
        query = frozenset({2, 3, 9})
        # every doc with intersection ⊆ doc ⊆ union
        import itertools

        optional = sorted(union - intersection)
        for r in range(len(optional) + 1):
            for extra in itertools.combinations(optional, r):
                doc = intersection | frozenset(extra)
                bound = model.node_upper_bound(union, intersection, query)
                assert model.similarity(doc, query) <= bound + 1e-12

    def test_jaccard_bound_exact_formula(self):
        union = frozenset({1, 2, 3})
        intersection = frozenset({1, 2})
        query = frozenset({2, 3, 4})
        # |N∪ ∩ q| / |N∩ ∪ q| = 2 / 4
        assert JACCARD.node_upper_bound(union, intersection, query) == pytest.approx(0.5)

    def test_zero_overlap_bound_is_zero(self):
        assert JACCARD.node_upper_bound(A, frozenset(), frozenset({99})) == 0.0


class TestRegistry:
    def test_lookup(self):
        assert get_model("jaccard") is JACCARD
        assert get_model("dice") is DICE
        assert get_model("cosine") is COSINE

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_model("bm25")


class TestEmptyOperandConvention:
    """Regression pin for the module's empty-set convention: a
    similarity (or bound) involving an empty operand is 0.0 — including
    ``sim(∅, ∅)``, which a "two identical sets" shortcut would wrongly
    report as 1.0.  The vectorized kernels
    (:mod:`repro.core.vectorized`) share this convention; their parity
    suite cross-checks it against these scalar values.
    """

    MODELS = [JACCARD, DICE, COSINE]
    EMPTY = frozenset()

    @pytest.mark.parametrize("model", MODELS)
    def test_empty_doc(self, model):
        assert model.similarity(self.EMPTY, B) == 0.0

    @pytest.mark.parametrize("model", MODELS)
    def test_empty_query(self, model):
        assert model.similarity(A, self.EMPTY) == 0.0

    @pytest.mark.parametrize("model", MODELS)
    def test_empty_both_is_zero_not_one(self, model):
        assert model.similarity(self.EMPTY, self.EMPTY) == 0.0

    @pytest.mark.parametrize("model", MODELS)
    def test_bound_empty_union(self, model):
        assert model.node_upper_bound(self.EMPTY, self.EMPTY, B) == 0.0

    @pytest.mark.parametrize("model", MODELS)
    def test_bound_empty_query(self, model):
        assert model.node_upper_bound(A, self.EMPTY, self.EMPTY) == 0.0

    @pytest.mark.parametrize("model", MODELS)
    def test_no_division_errors_on_any_empty_combination(self, model):
        for union in (self.EMPTY, A):
            for inter in (self.EMPTY, union):
                for query in (self.EMPTY, B):
                    sim = model.node_upper_bound(union, inter, query)
                    assert 0.0 <= sim <= 1.0
