"""Unit tests for the numpy brute-force oracle against the Scorer."""

import numpy as np
import pytest

from repro import Oracle, Scorer, SpatialKeywordQuery


@pytest.fixture(scope="module")
def setup(euro_small):
    dataset, _ = euro_small
    return dataset, Oracle(dataset), Scorer(dataset)


def _some_query(dataset, seed=0, k=5):
    rng = np.random.default_rng(seed)
    obj = dataset.objects[int(rng.integers(0, len(dataset)))]
    doc = frozenset(list(obj.doc)[:3]) or frozenset({0})
    return SpatialKeywordQuery(loc=obj.loc, doc=doc, k=k, alpha=0.5)


class TestScoresAgainstScorer:
    def test_scores_match_scorer(self, setup):
        dataset, oracle, scorer = setup
        query = _some_query(dataset, seed=1)
        scores = oracle.scores(query)
        for i, obj in enumerate(dataset.objects[::97]):
            expected = scorer.st(obj, query)
            row = list(dataset.objects).index(obj)
            assert scores[row] == pytest.approx(expected)

    def test_rank_matches_scorer(self, setup):
        dataset, oracle, scorer = setup
        query = _some_query(dataset, seed=2)
        for obj in dataset.objects[::211]:
            assert oracle.rank(obj.oid, query) == scorer.rank(obj, query)

    def test_rank_with_keyword_override(self, setup):
        dataset, oracle, scorer = setup
        query = _some_query(dataset, seed=3)
        other = frozenset(list(query.doc)[:1])
        obj = dataset.objects[5]
        assert oracle.rank(obj.oid, query, other) == scorer.rank(
            obj, query.with_keywords(other)
        )


class TestTopK:
    def test_top_k_ids_match_scorer(self, setup):
        dataset, oracle, scorer = setup
        query = _some_query(dataset, seed=4, k=10)
        expected = [obj.oid for _, obj in scorer.top_k(query)]
        assert oracle.top_k_ids(query) == expected

    def test_top_k_scores_descending(self, setup):
        dataset, oracle, _ = setup
        query = _some_query(dataset, seed=5, k=20)
        ids = oracle.top_k_ids(query)
        scores = oracle.scores(query)
        row_of = {o.oid: i for i, o in enumerate(dataset.objects)}
        values = [scores[row_of[oid]] for oid in ids]
        assert all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))


class TestObjectAtRank:
    def test_returned_object_has_exact_rank(self, setup):
        dataset, oracle, scorer = setup
        query = _some_query(dataset, seed=6)
        for rank in (1, 7, 26):
            try:
                oid = oracle.object_at_rank(query, rank)
            except ValueError:
                continue  # tie group straddles the rank: allowed
            assert oracle.rank(oid, query) == rank

    def test_out_of_range_rank(self, setup):
        dataset, oracle, _ = setup
        query = _some_query(dataset, seed=7)
        with pytest.raises(ValueError):
            oracle.object_at_rank(query, 0)
        with pytest.raises(ValueError):
            oracle.object_at_rank(query, len(dataset) + 1)

    def test_rank_of_set_max_semantics(self, setup):
        dataset, oracle, _ = setup
        query = _some_query(dataset, seed=8)
        oids = [dataset.objects[10].oid, dataset.objects[20].oid]
        assert oracle.rank_of_set(oids, query) == max(
            oracle.rank(o, query) for o in oids
        )
