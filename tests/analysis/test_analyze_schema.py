"""Golden schema for ``analyze --json``: every ruleset's findings are
present with stable field names, and the seeded fixture trips at least
one finding per new rule class (the CI negative control in miniature)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

from .flow.conftest import SEEDED_REGRESSION

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "flow-baseline.json"

TAINT_LIFETIME_FIELDS = {
    "rule",
    "key",
    "function",
    "module",
    "path",
    "line",
    "message",
    "chain",
    "waived",
    "baselined",
}


@pytest.fixture(scope="module")
def seeded_payload():
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(["analyze", "--all", str(SEEDED_REGRESSION), "--json"])
    assert code == 1, "seeded fixture must block"
    return json.loads(buf.getvalue())


class TestTopLevelShape:
    def test_header_fields(self, seeded_payload):
        for field in (
            "rulesets",
            "modules",
            "functions",
            "blocking",
            "suppressed",
            "elapsed_seconds",
            "errors",
            "findings",
        ):
            assert field in seeded_payload, field
        assert seeded_payload["rulesets"] == [
            "lint",
            "flow",
            "taint",
            "lifetime",
        ]
        assert seeded_payload["errors"] == []
        assert seeded_payload["blocking"] > 0

    def test_findings_cover_every_ruleset(self, seeded_payload):
        assert set(seeded_payload["findings"]) == {
            "lint",
            "flow",
            "taint",
            "lifetime",
            "stale-waiver",
        }


class TestPerRulesetSchema:
    def test_lint_findings(self, seeded_payload):
        findings = seeded_payload["findings"]["lint"]
        assert findings, "seeded fixture must trip lint"
        for finding in findings:
            assert set(finding) == {
                "rule",
                "path",
                "line",
                "col",
                "message",
                "waived",
            }
        assert "bare-assert" in {f["rule"] for f in findings}

    def test_flow_findings_and_sidecar(self, seeded_payload):
        findings = seeded_payload["findings"]["flow"]
        assert {f["rule"] for f in findings} >= {
            "worker-read-only",
            "io-through-pool",
            "exception-safety",
        }
        # The flow sidecar keeps coverage but not the violation list.
        assert "violations" not in seeded_payload["flow"]
        assert "coverage" in seeded_payload["flow"]

    def test_taint_findings(self, seeded_payload):
        findings = seeded_payload["findings"]["taint"]
        assert findings, "seeded fixture must trip taint"
        for finding in findings:
            assert set(finding) == TAINT_LIFETIME_FIELDS
            assert finding["rule"] == "taint-to-sink"
            assert finding["key"].startswith("taint::")
            assert finding["chain"], "taint findings carry a witness chain"
        kinds = {f["key"].rsplit("::", 1)[-1] for f in findings}
        assert {"unordered-iter", "time"} <= kinds

    def test_lifetime_findings(self, seeded_payload):
        findings = seeded_payload["findings"]["lifetime"]
        rules = {f["rule"] for f in findings}
        assert rules == {
            "lifetime-leak",
            "lifetime-double-release",
            "lifetime-use-after-quarantine",
        }
        for finding in findings:
            assert set(finding) == TAINT_LIFETIME_FIELDS
            assert finding["key"].startswith("lifetime::")

    def test_stale_waiver_findings(self, seeded_payload):
        findings = seeded_payload["findings"]["stale-waiver"]
        assert {f["comment_kind"] for f in findings} == {"lint", "flow"}
        for finding in findings:
            assert set(finding) == {"comment_kind", "path", "line", "rule"}


class TestRepoIsClean:
    def test_repo_wide_all_rulesets_exit_zero(self, capsys):
        code = main(
            [
                "analyze",
                "--all",
                str(SRC),
                "--baseline",
                str(BASELINE),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out

    def test_taint_lifetime_only_exit_zero(self, capsys):
        code = main(
            [
                "analyze",
                "--rules",
                "taint,lifetime",
                str(SRC),
                "--baseline",
                str(BASELINE),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out

    def test_unknown_ruleset_exits_two(self, capsys):
        assert main(["analyze", "--rules", "nope", str(SRC)]) == 2
        capsys.readouterr()
