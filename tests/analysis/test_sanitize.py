"""Invariant-sanitizer tests: clean trees validate, corrupted trees don't.

The big fixture is a 10,000-object EURO-like SetR-tree at the paper's
node capacity (100).  Corruption tests tamper with one record through
the pool's sanctioned write path, assert the sanitizer pinpoints the
damage, then restore the original payload (records store live objects,
so restoring the reference restores the tree bit-for-bit).
"""

from __future__ import annotations

import pytest

from repro import make_euro_like
from repro.analysis import check_buffer_pool, check_tree
from repro.errors import InvariantViolationError
from repro.index.kcr_tree import KcRTree
from repro.index.setr_tree import SetRTree


@pytest.fixture(scope="module")
def big_setr():
    dataset, _ = make_euro_like(10_000, seed=13)
    return SetRTree(dataset, capacity=100)


def kinds_of(report):
    return {v.kind for v in report.violations}


def first_branch_entry(tree):
    """A (node, entry) pair where entry points at a child node."""
    node = tree.root()
    assert not node.is_leaf, "fixture tree must have at least two levels"
    return node, node.entries[0]


class TestCleanTrees:
    def test_10k_setr_tree_validates(self, big_setr):
        report = check_tree(big_setr)
        assert report.ok, report.format()
        assert report.objects_seen == 10_000
        assert report.nodes_checked == big_setr.node_count

    def test_kcr_tree_validates(self):
        dataset, _ = make_euro_like(1_000, seed=29)
        report = check_tree(KcRTree(dataset, capacity=16))
        assert report.ok, report.format()

    def test_clean_after_dynamic_churn(self):
        dataset, _ = make_euro_like(800, seed=31)
        tree = SetRTree(dataset, capacity=8)
        victims = dataset.objects[:40]
        for obj in victims:
            tree.delete(obj)
            dataset.remove(obj.oid)
        for obj in victims:
            dataset.add(obj)
            tree.insert(obj)
        report = check_tree(tree)
        assert report.ok, report.format()
        assert report.objects_seen == 800


class TestCorruptionDetection:
    def test_union_set_corruption_is_detected(self, big_setr):
        _, entry = first_branch_entry(big_setr)
        union, inter = big_setr.buffer.peek(entry.aux_record)
        dropped = next(iter(union - inter))  # keep the pair consistent
        big_setr.buffer.update(
            entry.aux_record, (union - {dropped}, inter), 8
        )
        try:
            report = check_tree(big_setr)
            assert "union-set" in kinds_of(report)
        finally:
            big_setr.buffer.update(entry.aux_record, (union, inter), 8)
        assert check_tree(big_setr).ok

    def test_intersection_set_corruption_is_detected(self, big_setr):
        _, entry = first_branch_entry(big_setr)
        union, inter = big_setr.buffer.peek(entry.aux_record)
        bogus = max(union) + 1  # a term no descendant document holds
        big_setr.buffer.update(
            entry.aux_record, (union, inter | {bogus}), 8
        )
        try:
            report = check_tree(big_setr)
            assert "intersection-set" in kinds_of(report)
        finally:
            big_setr.buffer.update(entry.aux_record, (union, inter), 8)
        assert check_tree(big_setr).ok

    def test_mbr_corruption_is_detected(self, big_setr):
        _, entry = first_branch_entry(big_setr)
        child = big_setr.buffer.peek(entry.child_id)
        original = child.rect
        child.rect = type(original)(
            original.min_x, original.min_y, original.min_x, original.min_y
        )
        try:
            report = check_tree(big_setr)
            # The shrunken rect no longer matches the entries below it,
            # and the parent entry's copy now disagrees with the child.
            assert "stored-mbr" in kinds_of(report)
            assert "entry-mbr" in kinds_of(report)
        finally:
            child.rect = original
        assert check_tree(big_setr).ok

    def test_kcr_count_corruption_is_detected(self):
        dataset, _ = make_euro_like(600, seed=37)
        tree = KcRTree(dataset, capacity=8)
        node = tree.root()
        entry = node.entries[0]
        cnt, kcm = tree.buffer.peek(entry.aux_record)
        tree.buffer.update(entry.aux_record, (cnt + 1, kcm), 8)
        report = check_tree(tree)
        assert "count-map" in kinds_of(report)

    def test_fanout_violation_is_detected(self):
        dataset, _ = make_euro_like(400, seed=41)
        tree = SetRTree(dataset, capacity=8)
        node = tree.root()
        leaf_id = node.entries[0].child_id
        while not tree.buffer.peek(leaf_id).is_leaf:
            leaf_id = tree.buffer.peek(leaf_id).entries[0].child_id
        leaf = tree.buffer.peek(leaf_id)
        leaf.entries.extend(leaf.entries * 3)  # overflow + duplicates
        report = check_tree(tree)
        assert "fan-out" in kinds_of(report)
        assert "object-coverage" in kinds_of(report)

    def test_raise_if_violations_raises(self):
        dataset, _ = make_euro_like(400, seed=43)
        tree = SetRTree(dataset, capacity=8)
        node = tree.root()
        entry = node.entries[0]
        union, inter = tree.buffer.peek(entry.aux_record)
        tree.buffer.update(entry.aux_record, (frozenset(), frozenset()), 8)
        report = check_tree(tree)
        with pytest.raises(InvariantViolationError):
            report.raise_if_violations()

    def test_clean_report_raises_nothing(self, big_setr):
        check_tree(big_setr).raise_if_violations()


class TestBufferAccounting:
    def test_ledger_balances_after_traffic(self, big_setr):
        big_setr.reset_buffer()
        for _ in range(5):
            big_setr.root()
        report = check_buffer_pool(big_setr.buffer)
        assert report.ok, report.format()
        pool = big_setr.buffer
        assert pool.fetch_count == pool.hit_count + pool.miss_count

    def test_tampered_hit_count_is_detected(self, big_setr):
        pool = big_setr.buffer
        pool.fetch(big_setr.root_id)
        pool.hit_count += 1
        try:
            report = check_buffer_pool(pool)
            assert kinds_of(report) == {"buffer-accounting"}
        finally:
            pool.hit_count -= 1
        assert check_buffer_pool(pool).ok

    def test_stale_cache_entry_is_detected(self, big_setr):
        pool = big_setr.buffer
        pool.fetch(big_setr.root_id)
        # Drop the record behind the cache's back (bypassing the
        # write-through free() that would invalidate the frame).
        record = pool.pager._records.pop(big_setr.root_id)
        try:
            report = check_buffer_pool(pool)
            assert "buffer-accounting" in kinds_of(report)
        finally:
            pool.pager._records[big_setr.root_id] = record
        assert check_buffer_pool(pool).ok
