"""Stale-waiver detection: a waiver comment that suppresses nothing is
itself a blocking finding — but only on full ``--all`` runs, where every
rule the comment could name has actually had its chance to fire."""

from __future__ import annotations

import pytest

from repro.analysis import run_analysis

from .flow.conftest import write_package


def analyze(tmp_path, files, rulesets=None):
    tree = write_package(tmp_path, files)
    kwargs = {} if rulesets is None else {"rulesets": rulesets}
    return run_analysis([str(tree)], **kwargs)


class TestStaleDetection:
    def test_stale_lint_waiver_is_reported(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/core/quiet.py": """
                def helper(x: int) -> int:  # lint: no-print
                    return x + 1
                """
            },
        )
        (stale,) = report.stale_waivers
        assert stale.comment_kind == "lint"
        assert stale.rule == "no-print"
        assert report.blocking_count == 1
        assert "suppresses nothing" in stale.format()

    def test_stale_flow_waiver_is_reported(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/core/quiet.py": """
                def helper(x: int) -> int:
                    # flow: waiver(worker-read-only)
                    return x + 1
                """
            },
        )
        (stale,) = report.stale_waivers
        assert stale.comment_kind == "flow"
        assert stale.rule == "worker-read-only"

    def test_live_lint_waiver_is_not_stale(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/core/noisy.py": """
                def debug(x: int) -> None:
                    print(x)  # lint: no-print
                """
            },
        )
        assert report.stale_waivers == []
        assert report.blocking_count == 0
        assert [f.rule for f in report.lint if f.waived] == ["no-print"]

    def test_live_taint_waiver_is_not_stale(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/core/stamp.py": """
                import time


                def persist(path: str) -> None:
                    # flow: waiver(taint-to-sink)
                    save_checked_json(path, {"at": time.time()}, version=2)
                """
            },
        )
        assert report.stale_waivers == []
        assert report.blocking_count == 0
        assert [f.waived for f in report.taint] == [True]

    def test_misspelled_rule_name_is_stale_even_next_to_finding(
        self, tmp_path
    ):
        # The waiver names the wrong rule, so the finding still blocks
        # AND the comment is reported stale: two findings, one line.
        report = analyze(
            tmp_path,
            {
                "repro/core/stamp.py": """
                import time


                def persist(path: str) -> None:
                    # flow: waiver(taint-to-skin)
                    save_checked_json(path, {"at": time.time()}, version=2)
                """
            },
        )
        assert len(report.stale_waivers) == 1
        assert report.stale_waivers[0].rule == "taint-to-skin"
        assert [f.waived for f in report.taint] == [False]
        assert report.blocking_count == 2


class TestGating:
    def test_partial_runs_never_report_stale(self, tmp_path):
        files = {
            "repro/core/quiet.py": """
            def helper(x: int) -> int:  # lint: no-print
                # flow: waiver(worker-read-only)
                return x + 1
            """
        }
        for rulesets in (("lint",), ("flow",), ("taint", "lifetime")):
            report = analyze(tmp_path / "-".join(rulesets), files, rulesets)
            assert report.stale_waivers == [], rulesets

    def test_wildcard_waiver_counts_as_used_when_it_suppresses(
        self, tmp_path
    ):
        report = analyze(
            tmp_path,
            {
                "repro/core/noisy.py": """
                def debug(x: int) -> None:
                    print(x)  # lint: *
                """
            },
        )
        assert report.stale_waivers == []
        assert report.blocking_count == 0
