"""Repo-wide invariants: the shipped library is contract-clean, fully
signed, and the CLI verb exposes the right exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.flow import analyze_paths, load_baseline
from repro.cli import main

from .conftest import SEEDED_REGRESSION

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "flow-baseline.json"


class TestRepoWide:
    def test_no_blocking_violations(self):
        report = analyze_paths([str(SRC)], baseline=load_baseline(str(BASELINE)))
        assert not report.errors
        assert report.blocking == [], "\n" + report.format_text()

    def test_every_function_has_a_signature(self):
        report = analyze_paths([str(SRC)])
        assert report.n_functions > 0
        for package, stats in report.coverage.items():
            assert stats["signed"] == stats["functions"], package
        assert len(report.signatures) == report.n_functions

    def test_known_signatures(self):
        report = analyze_paths([str(SRC)])
        sigs = report.signatures
        # The sanctioned writer is lock-guarded: no shared-write escapes.
        record = sigs["repro.core.dominator_cache.DominatorCache.record_dominators"]
        assert "shared-write" not in record
        # BufferPool.fetch is the blessed I/O surface.
        assert "buffer-io" in sigs["repro.storage.buffer_pool.BufferPool.fetch"]
        # The parallel worker path stays read-only on shared state.
        worker_entry = "repro.core.parallel.ParallelAdvanced._evaluate_candidate"
        assert "shared-write" not in sigs[worker_entry]

    def test_checked_in_baseline_is_empty(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert payload == {"version": 1, "violations": []}


class TestAnalyzeCli:
    def test_clean_repo_exits_zero(self):
        assert main(["analyze", str(SRC), "--baseline", str(BASELINE)]) == 0

    def test_seeded_fixture_exits_one_with_witness(self, capsys):
        code = main(["analyze", str(SEEDED_REGRESSION)])
        captured = capsys.readouterr()
        assert code == 1
        assert "[worker-read-only]" in captured.out
        assert "[io-through-pool]" in captured.out
        assert "[exception-safety]" in captured.out
        assert "-> repro.core.dominator_cache.DominatorCache.ingest_unguarded" in (
            captured.out
        )

    def test_json_output(self, capsys):
        code = main(["analyze", str(SEEDED_REGRESSION), "--json"])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert {v["rule"] for v in payload["findings"]["flow"]} == {
            "worker-read-only",
            "io-through-pool",
            "exception-safety",
        }
        assert "signatures" not in payload["flow"]

    def test_json_with_signatures(self, capsys):
        code = main(["analyze", str(SEEDED_REGRESSION), "--json", "--signatures"])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert "signatures" in payload["flow"]
        assert payload["flow"]["signatures"], "signature map must not be empty"

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["analyze", str(tmp_path / "nope")]) == 2

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        baseline_file = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "analyze",
                    str(SEEDED_REGRESSION),
                    "--write-baseline",
                    str(baseline_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # With the freshly written baseline, the same tree passes.
        assert (
            main(
                [
                    "analyze",
                    str(SEEDED_REGRESSION),
                    "--baseline",
                    str(baseline_file),
                ]
            )
            == 0
        )
