"""Shared helpers for the flow-engine tests.

Fixture packages are written under ``tmp_path`` with every directory
getting an ``__init__.py``, so module names anchor exactly like the
shipped library (``repro.core...``) and land in the same contract
scopes.  Fixtures are parsed by the analyser, never imported.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
SEEDED_REGRESSION = FIXTURES / "seeded_regression" / "repro"


def write_package(root: Path, files: dict) -> Path:
    """Write ``files`` (relpath -> source) under ``root``; create
    ``__init__.py`` in every package directory; return the tree root."""
    tops = set()
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        parts = Path(relpath).parts
        tops.add(parts[0])
        for i in range(1, len(parts)):
            package_dir = root.joinpath(*parts[:i])
            init = package_dir / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    assert len(tops) == 1, "fixture must have a single top-level package"
    return root / tops.pop()


@pytest.fixture
def make_tree(tmp_path):
    def _make(files: dict) -> Path:
        return write_package(tmp_path, files)

    return _make
