"""Contract checking, waiver handling, and baseline ratchet semantics."""

from __future__ import annotations

import json

from repro.analysis.flow import (
    FlowConfig,
    analyze_paths,
    collect_waivers,
    load_baseline,
)

from .conftest import SEEDED_REGRESSION


def rules_of(report):
    return {violation.rule for violation in report.violations}


class TestSeededRegression:
    """The checked-in fixture must trip all three contracts."""

    def test_all_three_rules_fire(self):
        report = analyze_paths([str(SEEDED_REGRESSION)])
        assert rules_of(report) == {
            "worker-read-only",
            "io-through-pool",
            "exception-safety",
        }
        assert report.blocking == report.violations
        assert not report.errors

    def test_worker_chain_witness(self):
        report = analyze_paths([str(SEEDED_REGRESSION)])
        by_entry = {
            violation.entry: violation
            for violation in report.violations
            if violation.rule == "worker-read-only"
        }
        nested_worker = "repro.core.parallel.ParallelAdvanced._run_threads.worker"
        assert nested_worker in by_entry
        chain = by_entry[nested_worker].chain
        assert len(chain) == 3
        assert chain[0].startswith(nested_worker)
        assert chain[1].startswith(
            "repro.core.parallel.ParallelAdvanced._evaluate_candidate"
        )
        assert chain[2].startswith(
            "repro.core.dominator_cache.DominatorCache.ingest_unguarded"
        )

    def test_exception_safety_names_both_lines(self):
        report = analyze_paths([str(SEEDED_REGRESSION)])
        findings = [
            violation
            for violation in report.violations
            if violation.rule == "exception-safety"
        ]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.function == "repro.core.engine.WhyNotEngine.run_top_k"
        assert "mutates" in finding.message
        assert "possibly-raising storage call" in finding.message

    def test_json_payload_roundtrips(self):
        report = analyze_paths([str(SEEDED_REGRESSION)])
        payload = json.loads(report.to_json())
        assert payload["functions"] == report.n_functions
        keys = {entry["key"] for entry in payload["violations"]}
        assert keys == {violation.key for violation in report.violations}


PAGER_FIXTURE = {
    "repro/storage/pager.py": """
    class Pager:
        def read(self, record_id: int) -> bytes:
            return b""
    """,
    "repro/index/search.py": """
    from ..storage.pager import Pager


    class TopKSearcher:
        def top_k(self, query: object) -> list:
            pager = Pager()
            return [pager.read(0)]
    """,
}


def with_search_body(body: str) -> dict:
    files = dict(PAGER_FIXTURE)
    files["repro/index/search.py"] = body
    return files


class TestWaivers:
    def test_unwaived_fixture_blocks(self, make_tree):
        tree = make_tree(PAGER_FIXTURE)
        report = analyze_paths([str(tree)])
        assert any(v.rule == "io-through-pool" for v in report.blocking)

    def test_waiver_on_offending_line(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:
                        pager = Pager()  # flow: waiver(io-through-pool)
                        return [pager.read(0)]  # flow: waiver(io-through-pool)
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert all(v.waived for v in report.violations)
        assert report.blocking == []

    def test_waiver_on_line_above(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:
                        # flow: waiver(io-through-pool)
                        pager = Pager()
                        # flow: waiver(io-through-pool)
                        return [pager.read(0)]
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert report.blocking == []

    def test_waiver_on_def_line_covers_whole_function(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:  # flow: waiver(io-through-pool)
                        pager = Pager()
                        return [pager.read(0)]
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert report.violations, "waived findings are still reported"
        assert report.blocking == []

    def test_star_waives_everything(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:  # flow: waiver(*)
                        pager = Pager()
                        return [pager.read(0)]
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert report.blocking == []

    def test_wrong_rule_does_not_waive(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:  # flow: waiver(worker-read-only)
                        pager = Pager()
                        return [pager.read(0)]
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert report.blocking, "unrelated waiver must not clear io-through-pool"

    def test_legacy_lint_comment_is_retired(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:  # lint: pager-access
                        pager = Pager()
                        return [pager.read(0)]
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert report.blocking, (
            "the one-time '# lint: pager-access' alias no longer waives "
            "io-through-pool; use '# flow: waiver(io-through-pool)'"
        )

    def test_collect_waivers_parses_comments(self):
        source = "\n".join(
            [
                "x = 1  # flow: waiver(io-through-pool, worker-read-only)",
                "y = 2  # lint: pager-access",
                "z = 3  # unrelated comment",
            ]
        )
        waivers = collect_waivers("<mem>", source=source)
        assert waivers[1] == {"io-through-pool", "worker-read-only"}
        assert 2 not in waivers, "lint comments are not flow waivers"
        assert 3 not in waivers


class TestBaseline:
    def test_baselined_keys_stop_blocking(self, make_tree, tmp_path):
        tree = make_tree(PAGER_FIXTURE)
        first = analyze_paths([str(tree)])
        assert first.blocking

        baseline_file = tmp_path / "flow-baseline.json"
        baseline_file.write_text(
            json.dumps(first.baseline_payload()), encoding="utf-8"
        )
        baseline = load_baseline(str(baseline_file))
        assert baseline == {v.key for v in first.violations}

        second = analyze_paths([str(tree)], baseline=baseline)
        assert second.violations, "baselined findings remain visible"
        assert second.blocking == []

    def test_new_violation_still_blocks(self, make_tree, tmp_path):
        tree = make_tree(PAGER_FIXTURE)
        baseline = {v.key for v in analyze_paths([str(tree)]).violations}

        # A new offender appears in another module: the ratchet catches it.
        extra = tree / "index" / "scan.py"
        extra.write_text(
            "from ..storage.pager import Pager\n"
            "\n"
            "\n"
            "def scan() -> bytes:\n"
            "    return Pager().read(1)\n",
            encoding="utf-8",
        )
        report = analyze_paths([str(tree)], baseline=baseline)
        blocking = report.blocking
        assert blocking
        assert all("scan" in v.function for v in blocking)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()

    def test_waived_findings_stay_out_of_baseline(self, make_tree):
        tree = make_tree(
            with_search_body(
                """
                from ..storage.pager import Pager


                class TopKSearcher:
                    def top_k(self, query: object) -> list:  # flow: waiver(io-through-pool)
                        pager = Pager()
                        return [pager.read(0)]
                """
            )
        )
        report = analyze_paths([str(tree)])
        assert report.baseline_payload() == {"version": 1, "violations": []}


class TestContractBoundaries:
    def test_guarded_worker_write_is_clean(self, make_tree):
        tree = make_tree(
            {
                "repro/core/dominator_cache.py": """
                class DominatorCache:
                    def record(self, oids: list) -> None:
                        with self._lock:
                            self._docs.extend(oids)
                """,
                "repro/core/parallel.py": """
                from .dominator_cache import DominatorCache


                class ParallelAdvanced:
                    def __init__(self, cache: DominatorCache) -> None:
                        self.cache = cache

                    def _evaluate_candidate(self, candidate: object) -> None:
                        self.cache.record([1, 2])
                """,
            }
        )
        report = analyze_paths([str(tree)])
        assert report.blocking == []

    def test_mutation_after_raise_is_safe(self, make_tree):
        tree = make_tree(
            {
                "repro/core/engine.py": """
                class StorageError(Exception):
                    pass


                class WhyNotEngine:
                    def _load_root(self) -> bytes:
                        raise StorageError("bad page")

                    def run_top_k(self) -> bytes:
                        data = self._load_root()
                        self._quarantined["ok"] = True
                        return data
                """
            }
        )
        report = analyze_paths([str(tree)])
        assert not any(
            v.rule == "exception-safety" for v in report.violations
        )

    def test_storage_module_may_touch_pager(self, make_tree):
        tree = make_tree(
            {
                "repro/storage/pager.py": """
                class Pager:
                    def read(self, record_id: int) -> bytes:
                        return b""
                """,
                "repro/storage/buffer_pool.py": """
                from .pager import Pager


                class BufferPool:
                    def fetch(self, record_id: int) -> bytes:
                        pager = Pager()
                        return pager.read(record_id)
                """,
            }
        )
        report = analyze_paths([str(tree)])
        assert not any(
            v.rule == "io-through-pool" for v in report.violations
        )

    def test_entry_patterns_scope_worker_rule(self, make_tree):
        # Same write, but no function matches an entry pattern: only the
        # worker contract stays quiet; nothing else applies either.
        tree = make_tree(
            {
                "repro/core/offline.py": """
                class Rebuilder:
                    def rebuild(self, index: object) -> None:
                        index.nodes = []
                """
            }
        )
        config = FlowConfig()
        report = analyze_paths([str(tree)], config=config)
        assert report.blocking == []
