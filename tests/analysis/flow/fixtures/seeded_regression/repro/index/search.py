"""Fixture: top-k search doing raw pager I/O outside the pool."""

from ..storage.pager import Pager


class TopKSearcher:
    def top_k(self, query: object) -> list:
        pager = Pager()
        return [pager.read(0)]
