"""Fixture: a quarantined shard served again without recovery.

``serve_after_fault`` marks a shard down and then routes the next
request straight back through it (``lifetime-use-after-quarantine``).
"""


class DegradedRouter:
    def serve_after_fault(self, idx: object, exc: Exception) -> object:
        shard = idx.shards[0]
        idx.mark_down(shard, "setr", "top_k", exc)
        return idx.request(shard, ("top_k",))
