"""Fixture: quarantine bookkeeping mutated before a raising call."""

from typing import Dict


class StorageError(Exception):
    pass


class WhyNotEngine:
    def __init__(self) -> None:
        self._quarantined: Dict[str, bool] = {}

    def _load_root(self) -> int:
        raise StorageError("disk gone")

    def run_top_k(self, query: object) -> int:
        # Exception-safety violation: shared state mutated before a
        # possibly-raising storage call, with no handler in sight.
        self._quarantined["setr"] = True
        return self._load_root()
