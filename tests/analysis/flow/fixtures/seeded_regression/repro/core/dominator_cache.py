"""Fixture: a dominator cache whose ingest skips the lock."""

from typing import Dict, Iterable


class DominatorCache:
    def __init__(self) -> None:
        self._docs: Dict[int, int] = {}

    def ingest_unguarded(self, oids: Iterable[int]) -> None:
        # The violation the checker must catch: worker-reachable code
        # writing shared cache state with no lock and no sanction.
        for oid in oids:
            self._docs[oid] = oid
