"""Fixture: nondeterminism reaching the result sink, plus lint bait.

Seeds for the negative control: one ``taint-to-sink`` per flavor
(set-iteration order into ``TopKOutcome.results``, wall-clock into the
checksummed writer), one ``bare-assert`` lint finding, and two waiver
comments that suppress nothing (``stale-waiver``).
"""

import time


def emit_summary(run_id: int) -> object:
    tags = {"b", "a"}
    order = [t for t in tags]
    assert order
    return TopKOutcome(results=order, degraded=False, events=())


def persist(path: str) -> None:
    # flow: waiver(worker-read-only)
    save_checked_json(path, {"at": time.time()}, version=2)


def helper(value: int) -> int:
    return value + 1  # lint: no-print
