"""Fixture: a worker entry point that reaches the unguarded ingest."""

from .dominator_cache import DominatorCache


class ParallelAdvanced:
    def __init__(self, cache: DominatorCache) -> None:
        self.cache = cache

    def _evaluate_candidate(self, candidate: object) -> object:
        self.cache.ingest_unguarded([1, 2])
        return candidate

    def _run_threads(self) -> None:
        def worker(candidate: object) -> None:
            self._evaluate_candidate(candidate)

        worker(None)
