"""Fixture: spill-file lifecycle bugs for the lifetime checker.

``spill_batch`` leaks its handle across the exception edge of a
storage-raising call (``lifetime-leak``); ``close_twice`` releases an
already-released handle (``lifetime-double-release``).
"""


class StorageError(Exception):
    pass


def risky_read(path: str) -> bytes:
    raise StorageError(path)


def spill_batch(path: str) -> None:
    fh = open(path, "wb")
    fh.write(risky_read(path))
    fh.close()


def close_twice(path: str) -> None:
    fh = open(path)
    fh.close()
    fh.close()
