"""Fixture storage layer: the pager the search layer must not touch."""


class Pager:
    def read(self, record_id: int) -> bytes:
        return b""
