# Seeded-regression fixture: a miniature ``repro`` package that
# violates all three flow contracts.  Parsed by the analyser, never
# imported; CI injects it to prove the analyze job still catches
# regressions.
