"""Effect extraction + fixpoint propagation over fixture packages.

Each test writes a tiny ``repro``-rooted package to ``tmp_path`` and
asserts the inferred effect signature of specific functions.
"""

from __future__ import annotations

from repro.analysis.callgraph import build_graph
from repro.analysis.flow import FlowAnalysis, FlowConfig


def analyze_tree(tree):
    graph = build_graph([str(tree)])
    analysis = FlowAnalysis(graph, FlowConfig()).run()
    assert not graph.errors
    return analysis


def sig(analysis, key):
    assert key in analysis.signatures, sorted(analysis.signatures)
    return analysis.signatures[key]


class TestLocalEffects:
    def test_mutates_param(self, make_tree):
        tree = make_tree(
            {
                "repro/core/util.py": """
                def bump(items: list) -> None:
                    items.append(1)

                def pure(items: list) -> int:
                    return len(items)
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "mutates-param" in sig(analysis, "repro.core.util.bump")
        assert sig(analysis, "repro.core.util.pure") == set()

    def test_mutates_self_and_init_exemption(self, make_tree):
        tree = make_tree(
            {
                "repro/core/state.py": """
                class Tracker:
                    def __init__(self) -> None:
                        self.items = []

                    def reset(self) -> None:
                        self.items = []
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "mutates-self" in sig(analysis, "repro.core.state.Tracker.reset")
        assert sig(analysis, "repro.core.state.Tracker.__init__") == set()

    def test_accounting_attr_exempt(self, make_tree):
        tree = make_tree(
            {
                "repro/core/acct.py": """
                class Engine:
                    def tick(self) -> None:
                        self.stats["ticks"] = 1

                    def corrupt(self) -> None:
                        self.state["x"] = 1
                """
            }
        )
        analysis = analyze_tree(tree)
        assert sig(analysis, "repro.core.acct.Engine.tick") == set()
        assert "mutates-self" in sig(analysis, "repro.core.acct.Engine.corrupt")

    def test_mutates_global_is_shared_write(self, make_tree):
        tree = make_tree(
            {
                "repro/core/registry.py": """
                REGISTRY = {}

                def register(name: str) -> None:
                    REGISTRY[name] = True
                """
            }
        )
        analysis = analyze_tree(tree)
        atoms = sig(analysis, "repro.core.registry.register")
        assert "mutates-global" in atoms
        assert "shared-write" in atoms

    def test_mutates_closure(self, make_tree):
        tree = make_tree(
            {
                "repro/core/closures.py": """
                def outer() -> int:
                    count = 0

                    def inner() -> None:
                        nonlocal count
                        count += 1

                    inner()
                    return count
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "mutates-closure" in sig(
            analysis, "repro.core.closures.outer.inner"
        )

    def test_shared_write_needs_shared_class(self, make_tree):
        tree = make_tree(
            {
                # repro.index.* is a shared module prefix; repro.core is not.
                "repro/index/node.py": """
                class Node:
                    def attach(self, child: object) -> None:
                        self.child = child
                """,
                "repro/core/scratch.py": """
                class Scratch:
                    def attach(self, child: object) -> None:
                        self.child = child
                """,
            }
        )
        analysis = analyze_tree(tree)
        assert "shared-write" in sig(analysis, "repro.index.node.Node.attach")
        assert "shared-write" not in sig(
            analysis, "repro.core.scratch.Scratch.attach"
        )


class TestIOAndRaises:
    def test_buffer_io_and_raw_io(self, make_tree):
        tree = make_tree(
            {
                "repro/storage/pager.py": """
                class Pager:
                    def read(self, record_id: int) -> bytes:
                        return b""
                """,
                "repro/storage/buffer_pool.py": """
                from .pager import Pager


                class BufferPool:
                    def fetch(self, record_id: int) -> bytes:
                        return self.pager.read(record_id)
                """,
                "repro/core/consumer.py": """
                from ..storage.buffer_pool import BufferPool
                from ..storage.pager import Pager


                def through_pool(pool: BufferPool) -> bytes:
                    return pool.fetch(0)

                def around_pool(pager: Pager) -> bytes:
                    return pager.read(0)
                """,
            }
        )
        analysis = analyze_tree(tree)
        assert "buffer-io" in sig(analysis, "repro.core.consumer.through_pool")
        assert "raw-io" in sig(analysis, "repro.core.consumer.around_pool")

    def test_file_io(self, make_tree):
        tree = make_tree(
            {
                "repro/core/loader.py": """
                def slurp(path: str) -> str:
                    with open(path) as handle:
                        return handle.read()
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "file-io" in sig(analysis, "repro.core.loader.slurp")

    def test_raises_storage_and_masking(self, make_tree):
        tree = make_tree(
            {
                "repro/core/faults.py": """
                class StorageError(Exception):
                    pass


                def load() -> bytes:
                    raise StorageError("bad page")

                def unguarded() -> bytes:
                    return load()

                def guarded() -> bytes:
                    try:
                        return load()
                    except StorageError:
                        return b""
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "raises-storage" in sig(analysis, "repro.core.faults.load")
        assert "raises-storage" in sig(analysis, "repro.core.faults.unguarded")
        assert "raises-storage" not in sig(analysis, "repro.core.faults.guarded")


class TestGuardsAndMasks:
    def test_lock_guard_masks_shared_write(self, make_tree):
        tree = make_tree(
            {
                "repro/index/cache.py": """
                class Cache:
                    def put_guarded(self, key: str) -> None:
                        with self._lock:
                            self._docs[key] = True

                    def put_bare(self, key: str) -> None:
                        self._docs[key] = True
                """
            }
        )
        analysis = analyze_tree(tree)
        guarded = sig(analysis, "repro.index.cache.Cache.put_guarded")
        assert "shared-write" not in guarded
        assert "mutates-self" not in guarded
        bare = sig(analysis, "repro.index.cache.Cache.put_bare")
        assert "shared-write" in bare

    def test_lock_guard_masks_propagated_write(self, make_tree):
        tree = make_tree(
            {
                "repro/index/cache.py": """
                class Cache:
                    def _ingest(self, key: str) -> None:
                        self._docs[key] = True

                    def record(self, key: str) -> None:
                        with self._lock:
                            self._ingest(key)

                    def leak(self, key: str) -> None:
                        self._ingest(key)
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "shared-write" not in sig(
            analysis, "repro.index.cache.Cache.record"
        )
        assert "shared-write" in sig(analysis, "repro.index.cache.Cache.leak")

    def test_constructor_escape(self, make_tree):
        tree = make_tree(
            {
                "repro/index/fresh.py": """
                class Shared:
                    def __init__(self) -> None:
                        self._reset()

                    def _reset(self) -> None:
                        self.items = []


                def build() -> Shared:
                    return Shared()
                """
            }
        )
        analysis = analyze_tree(tree)
        # __init__ picks up its callee's self-write through propagation...
        assert "mutates-self" in sig(
            analysis, "repro.index.fresh.Shared.__init__"
        )
        # ...but instantiating a fresh object is not a shared write.
        built = sig(analysis, "repro.index.fresh.build")
        assert "mutates-self" not in built
        assert "shared-write" not in built


class TestNondet:
    def test_random_and_time(self, make_tree):
        tree = make_tree(
            {
                "repro/core/rand.py": """
                import random
                import time


                def roll() -> float:
                    return random.random()

                def stamp() -> float:
                    return time.time()

                def nap() -> None:
                    time.sleep(0.01)
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "nondet" in sig(analysis, "repro.core.rand.roll")
        assert "nondet" in sig(analysis, "repro.core.rand.stamp")
        # time.sleep affects wall-clock only, not computed values.
        assert "nondet" not in sig(analysis, "repro.core.rand.nap")


class TestFixpoint:
    def test_direct_recursion_converges(self, make_tree):
        tree = make_tree(
            {
                "repro/core/rec.py": """
                def drain(items: list) -> None:
                    if items:
                        items.pop()
                        drain(items)
                """
            }
        )
        analysis = analyze_tree(tree)
        assert "mutates-param" in sig(analysis, "repro.core.rec.drain")

    def test_mutual_recursion_converges(self, make_tree):
        tree = make_tree(
            {
                "repro/core/mutual.py": """
                STATE = {}


                def ping(n: int) -> None:
                    if n > 0:
                        pong(n - 1)

                def pong(n: int) -> None:
                    STATE[n] = True
                    ping(n - 1)
                """
            }
        )
        analysis = analyze_tree(tree)
        for name in ("ping", "pong"):
            atoms = sig(analysis, f"repro.core.mutual.{name}")
            assert "mutates-global" in atoms
            assert "shared-write" in atoms

    def test_chain_witness_points_at_origin(self, make_tree):
        tree = make_tree(
            {
                "repro/core/chainy.py": """
                STATE = {}


                def origin() -> None:
                    STATE["x"] = 1

                def middle() -> None:
                    origin()

                def top() -> None:
                    middle()
                """
            }
        )
        analysis = analyze_tree(tree)
        chain = analysis.chain("repro.core.chainy.top", "mutates-global")
        assert [key for key, _line in chain] == [
            "repro.core.chainy.top",
            "repro.core.chainy.middle",
            "repro.core.chainy.origin",
        ]
