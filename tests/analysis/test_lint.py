"""Per-rule fixture tests for the repo-specific AST linter.

Each test writes a small snippet under ``tmp_path/repro/...`` — module
names are resolved by anchoring at the ``repro`` path component, so the
fixtures land in the same rule scopes as real library code — and
asserts exactly which rules fire.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.lint import Linter, default_linter

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_snippet(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path])


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestFloatEquality:
    def test_flags_equality_against_float_literal(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/snippet.py",
            """
            def f(lam: float) -> bool:
                return lam == 0.0
            """,
        )
        assert rules_of(findings) == ["exact-float"]
        assert findings[0].line == 3

    def test_flags_not_equal_and_negative_literals(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/model/snippet.py",
            """
            def f(x: float) -> bool:
                return x != -1.0
            """,
        )
        assert rules_of(findings) == ["exact-float"]

    def test_int_literal_comparison_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/snippet.py",
            """
            def f(n: int) -> bool:
                return n == 0
            """,
        )
        assert findings == []

    def test_out_of_scope_module_not_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/snippet.py",
            """
            def f(x: float) -> bool:
                return x == 0.5
            """,
        )
        assert findings == []

    def test_waiver_on_same_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/snippet.py",
            """
            def f(x: float) -> bool:
                return x == 0.0  # lint: exact-float
            """,
        )
        assert findings == []

    def test_waiver_on_line_above(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/snippet.py",
            """
            def f(x: float) -> bool:
                # lint: exact-float
                return x == 0.0
            """,
        )
        assert findings == []

    def test_waive_all_star(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/snippet.py",
            """
            def f(x: float) -> bool:
                return x == 0.0  # lint: *
            """,
        )
        assert findings == []


class TestBareAssert:
    def test_flags_assert_in_runtime_code(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/snippet.py",
            """
            def f(x: int) -> int:
                assert x > 0
                return x
            """,
        )
        assert rules_of(findings) == ["bare-assert"]

    def test_code_outside_repro_package_is_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "plain/snippet.py",
            """
            def f(x):
                assert x > 0
                print(x == 0.5)
            """,
        )
        assert findings == []


class TestPagerAccessRetirement:
    """The syntactic rule was retired in favour of the call-graph-aware
    io-through-pool contract (repro.analysis.flow); the class stays
    importable for bespoke linter configurations."""

    def test_not_in_default_rules(self):
        assert "pager-access" not in {r.name for r in default_linter().rules}

    def test_default_lint_no_longer_flags_pager_access(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/index/snippet.py",
            """
            def f(tree: object) -> object:
                return tree.pager.read(0)
            """,
        )
        assert findings == []

    def test_rule_class_still_works_when_opted_in(self, tmp_path):
        from repro.analysis.lint import PagerAccessRule

        path = tmp_path / "repro" / "index" / "snippet.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "def f(tree: object) -> object:\n    return tree.pager.read(0)\n",
            encoding="utf-8",
        )
        findings = Linter([PagerAccessRule()]).lint([path])
        assert rules_of(findings) == ["pager-access"]


class TestMutableDefault:
    def test_flags_list_literal_default(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/snippet.py",
            """
            def f(items: list = []) -> list:
                return items
            """,
        )
        assert rules_of(findings) == ["mutable-default"]

    def test_flags_constructor_call_default(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/snippet.py",
            """
            from collections import Counter

            def f(*, counts: Counter = Counter()) -> Counter:
                return counts
            """,
        )
        assert rules_of(findings) == ["mutable-default"]

    def test_none_default_is_fine(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/snippet.py",
            """
            from typing import Optional

            def f(items: Optional[list] = None) -> list:
                return items if items is not None else []
            """,
        )
        assert findings == []


class TestPublicAnnotations:
    def test_flags_unannotated_public_function(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/model/snippet.py",
            """
            def score(a, b):
                return a + b
            """,
        )
        assert rules_of(findings) == ["public-annotations"]
        assert len(findings) == 2  # parameters + return

    def test_init_is_covered_despite_underscores(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/index/snippet.py",
            """
            class Thing:
                def __init__(self, tree) -> None:
                    self.tree = tree
            """,
        )
        assert rules_of(findings) == ["public-annotations"]

    def test_private_and_nested_functions_are_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/model/snippet.py",
            """
            def _helper(a, b):
                return a + b

            def public(x: int) -> int:
                def inner(y):
                    return y + 1
                return inner(x)
            """,
        )
        assert findings == []

    def test_out_of_scope_package_not_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/experiments/snippet.py",
            """
            def run(a, b):
                return a
            """,
        )
        assert findings == []


class TestNoPrint:
    def test_flags_print_in_library_code(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/index/snippet.py",
            """
            def f(x: int) -> None:
                print(x)
            """,
        )
        assert rules_of(findings) == ["no-print"]

    def test_cli_and_reporting_are_exempt(self, tmp_path):
        for relpath in ("repro/cli.py", "repro/experiments/reporting.py"):
            findings = lint_snippet(
                tmp_path,
                relpath,
                """
                def f(x: int) -> None:
                    print(x)
                """,
            )
            assert findings == [], relpath


class TestEngine:
    def test_syntax_error_becomes_a_finding(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/core/broken.py", "def f(:\n    pass\n"
        )
        assert rules_of(findings) == ["syntax"]

    def test_directory_expansion_and_sorting(self, tmp_path):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        for name in ("b.py", "a.py"):
            (tmp_path / "repro" / "core" / name).write_text(
                "def f(x: float) -> bool:\n    return x == 0.5\n",
                encoding="utf-8",
            )
        findings = lint_paths([tmp_path / "repro"])
        assert [Path(f.path).name for f in findings] == ["a.py", "b.py"]

    def test_duplicate_rule_names_rejected(self):
        rule = default_linter().rules[0]
        try:
            Linter([rule, rule])
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("duplicate rule names must be rejected")

    def test_finding_format_is_path_line_col_rule(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/snippet.py",
            """
            def f(x: float) -> bool:
                return x == 0.0
            """,
        )
        text = findings[0].format()
        assert "[exact-float]" in text
        assert text.startswith(findings[0].path + ":3:")


def test_library_tree_is_lint_clean():
    """The shipped library must carry zero unwaived findings — the same
    gate CI enforces, kept in-suite so it cannot rot locally."""
    findings = lint_paths([REPO_SRC])
    assert findings == [], "\n".join(f.format() for f in findings)
