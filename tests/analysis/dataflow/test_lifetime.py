"""Resource-lifetime checker: leaks (normal and exception paths),
double release, escapes, and the subject-arg quarantine family."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lifetime import check_lifetime

RAISING_PRELUDE = """
class StorageError(Exception):
    pass


def risky_read(path):
    raise StorageError(path)
"""


def findings_for(
    make_graph,
    body: str,
    module: str = "repro/storage/sp.py",
    raising: bool = False,
):
    source = textwrap.dedent(body)
    if raising:
        source = RAISING_PRELUDE + source
    return check_lifetime(make_graph({module: source}))


def rules(findings):
    return {f.rule for f in findings}


class TestSpillFiles:
    def test_leak_on_normal_exit(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def spill(path, payload):
                fh = open(path, "w")
                fh.write(payload)
            """,
        )
        assert rules(findings) == {"lifetime-leak"}

    def test_leak_on_exception_edge_despite_trailing_close(self, make_graph):
        findings = findings_for(
            make_graph,
            raising=True,
            body="""
            def spill(path):
                fh = open(path, "w")
                fh.write(risky_read(path))
                fh.close()
            """,
        )
        assert rules(findings) == {"lifetime-leak"}
        (finding,) = findings
        assert "exception" in finding.message

    def test_try_finally_close_is_clean(self, make_graph):
        findings = findings_for(
            make_graph,
            raising=True,
            body="""
            def spill(path):
                fh = open(path, "w")
                try:
                    fh.write(risky_read(path))
                finally:
                    fh.close()
            """,
        )
        assert findings == []

    def test_with_block_auto_releases(self, make_graph):
        findings = findings_for(
            make_graph,
            raising=True,
            body="""
            def spill(path):
                with open(path, "w") as fh:
                    fh.write(risky_read(path))
            """,
        )
        assert findings == []

    def test_double_close(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def spill(path):
                fh = open(path, "w")
                fh.close()
                fh.close()
            """,
        )
        assert rules(findings) == {"lifetime-double-release"}

    def test_escaped_handle_is_not_tracked(self, make_graph):
        # Passing the handle to another function transfers ownership;
        # whoever received it is responsible for the close.
        findings = findings_for(
            make_graph,
            """
            def spill(path, registry):
                fh = open(path, "w")
                registry.adopt(fh)
            """,
        )
        assert findings == []

    def test_returned_handle_is_not_a_leak(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def make_spill(path):
                fh = open(path, "w")
                return fh
            """,
        )
        assert findings == []


class TestPipesAndWorkers:
    def test_pipe_tuple_leaks_unclosed_half(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def start(ctx):
                rx, tx = ctx.Pipe()
                tx.close()
            """,
        )
        assert rules(findings) == {"lifetime-leak"}
        assert findings[0].var == "rx"

    def test_worker_joined_is_clean(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def run(ctx, target):
                worker = ctx.Process(target=target)
                worker.start()
                worker.join()
            """,
        )
        assert findings == []

    def test_worker_never_joined_leaks(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def run(ctx, target):
                worker = ctx.Process(target=target)
                worker.start()
            """,
        )
        assert rules(findings) == {"lifetime-leak"}


class TestLocks:
    def test_release_twice(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import threading


            def guard(work):
                lk = threading.Lock()
                lk.acquire()
                work()
                lk.release()
                lk.release()
            """,
        )
        assert rules(findings) == {"lifetime-double-release"}

    def test_acquire_without_release_leaks(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import threading


            def guard(work):
                lk = threading.Lock()
                lk.acquire()
                work()
            """,
        )
        assert rules(findings) == {"lifetime-leak"}


class TestQuarantine:
    def test_use_after_mark_down(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def serve(index, exc):
                shard = index.shards[0]
                index.mark_down(shard, "setr", "top_k", exc)
                return index.request(shard, ("top_k",))
            """,
            module="repro/index/rt.py",
        )
        assert rules(findings) == {"lifetime-use-after-quarantine"}

    def test_recover_clears_quarantine(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def serve(index, exc):
                shard = index.shards[0]
                index.mark_down(shard, "setr", "top_k", exc)
                index.recover()
                return index.request(shard, ("top_k",))
            """,
            module="repro/index/rt.py",
        )
        assert findings == []

    def test_targeted_recover_clears_only_its_subject(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def serve(index, exc):
                a = index.shards[0]
                b = index.shards[1]
                index.mark_down(a, "setr", "top_k", exc)
                index.mark_down(b, "setr", "top_k", exc)
                index.recover(a)
                index.request(a, ("top_k",))
                index.request(b, ("top_k",))
            """,
            module="repro/index/rt.py",
        )
        assert rules(findings) == {"lifetime-use-after-quarantine"}
        assert findings[0].var == "b"

    def test_other_shards_stay_usable(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def serve(index, exc):
                bad = index.shards[0]
                good = index.shards[1]
                index.mark_down(bad, "setr", "top_k", exc)
                return index.request(good, ("top_k",))
            """,
            module="repro/index/rt.py",
        )
        assert findings == []

    def test_quarantine_never_reports_leak(self, make_graph):
        # Marking a shard down and returning is a legitimate degraded
        # state, not a resource leak.
        findings = findings_for(
            make_graph,
            """
            def degrade(index, shard, exc):
                index.mark_down(shard, "setr", "top_k", exc)
            """,
            module="repro/index/rt.py",
        )
        assert findings == []
