"""Shared helpers for the CFG/dataflow/taint/lifetime tests.

Same contract as the flow-test conftest: fixture packages are written
under ``tmp_path`` with ``__init__.py`` everywhere, parsed by the
analyzers, never imported.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.callgraph import CodeGraph, build_graph

from ..flow.conftest import write_package


@pytest.fixture
def make_graph(tmp_path):
    """Write a fixture package and return its parsed :class:`CodeGraph`."""

    def _make(files: dict) -> CodeGraph:
        tree = write_package(tmp_path, files)
        graph = build_graph([str(tree)])
        assert not graph.errors, graph.errors
        return graph

    return _make
