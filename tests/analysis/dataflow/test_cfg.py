"""CFG construction: branch/loop/try/with shapes and exception edges."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import build_cfg


def cfg_for(source: str, may_raise=None):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func, may_raise=may_raise)


def node_lines(cfg):
    return {n.index: n.line for n in cfg.nodes}


def reachable(cfg, start, edges):
    seen = {start}
    stack = [start]
    while stack:
        cur = stack.pop()
        for dst in edges.get(cur, ()):
            if dst not in seen:
                seen.add(dst)
                stack.append(dst)
    return seen


class TestShapes:
    def test_linear_body_chains_to_exit(self):
        cfg = cfg_for(
            """
            def f(x):
                a = x
                b = a
                return b
            """
        )
        assert cfg.exit in reachable(cfg, cfg.entry, cfg.succ)
        # No exception edges anywhere: nothing may raise.
        assert all(not dsts for dsts in cfg.exc_succ.values())

    def test_if_has_two_arms_that_rejoin(self):
        cfg = cfg_for(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        head = next(n for n in cfg.nodes if n.label == "head")
        assert len(cfg.succ[head.index]) == 2

    def test_loop_back_edge_and_break_exit(self):
        cfg = cfg_for(
            """
            def f(xs):
                for x in xs:
                    if x:
                        break
                return 1
            """
        )
        head = next(n for n in cfg.nodes if n.label == "head")
        # The body's dangling end loops back to the head.
        preds = {src for src, dsts in cfg.succ.items() if head.index in dsts}
        assert any(src != cfg.entry for src in preds)
        assert cfg.exit in reachable(cfg, cfg.entry, cfg.succ)

    def test_with_gets_synthetic_exit_node(self):
        cfg = cfg_for(
            """
            def f(path):
                with open(path) as fh:
                    fh.read()
                return 1
            """
        )
        exits = [n for n in cfg.nodes if n.label == "with-exit"]
        assert len(exits) == 1
        assert exits[0].with_stmt is not None

    def test_return_goes_straight_to_exit(self):
        cfg = cfg_for(
            """
            def f(x):
                return x
            """
        )
        ret = next(n for n in cfg.nodes if isinstance(n.stmt, ast.Return))
        assert cfg.succ[ret.index] == {cfg.exit}


class TestExceptionEdges:
    def raising_calls_boom(self, stmt):
        return any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "boom"
            for n in ast.walk(stmt)
        )

    def test_may_raise_sprouts_edge_to_exc_exit(self):
        cfg = cfg_for(
            """
            def f(x):
                y = boom(x)
                return y
            """,
            may_raise=self.raising_calls_boom,
        )
        assign = next(n for n in cfg.nodes if isinstance(n.stmt, ast.Assign))
        assert cfg.exc_succ[assign.index] == {cfg.exc_exit}

    def test_handler_intercepts_storage_family(self):
        cfg = cfg_for(
            """
            def f(x):
                try:
                    y = boom(x)
                except StorageError:
                    y = 0
                return y
            """,
            may_raise=self.raising_calls_boom,
        )
        assign = next(n for n in cfg.nodes if isinstance(n.stmt, ast.Assign))
        # The raising statement's exception edge targets the dispatch
        # node, not the function's exceptional exit.
        assert cfg.exc_succ[assign.index] != {cfg.exc_exit}
        dispatch = next(iter(cfg.exc_succ[assign.index]))
        assert cfg.nodes[dispatch].label == "except-dispatch"
        # A catching handler exists, so dispatch does NOT re-raise.
        assert cfg.exc_succ[dispatch] == set()

    def test_unrelated_handler_lets_storage_escape(self):
        cfg = cfg_for(
            """
            def f(x):
                try:
                    y = boom(x)
                except ValueError:
                    y = 0
                return y
            """,
            may_raise=self.raising_calls_boom,
        )
        assign = next(n for n in cfg.nodes if isinstance(n.stmt, ast.Assign))
        dispatch = next(iter(cfg.exc_succ[assign.index]))
        assert cfg.exc_succ[dispatch] == {cfg.exc_exit}

    def test_finally_reraise_carries_post_finally_state(self):
        cfg = cfg_for(
            """
            def f(path):
                fh = open(path)
                try:
                    fh.write(boom(path))
                finally:
                    fh.close()
            """,
            may_raise=self.raising_calls_boom,
        )
        # The re-raise continuation is a synthetic node AFTER the
        # finally body — the close() transfer applies before the
        # exception leaves the frame (the clean_finally fix).
        reraise = [n for n in cfg.nodes if n.label == "reraise"]
        assert len(reraise) == 1
        assert cfg.exc_succ[reraise[0].index] == {cfg.exc_exit}
        close = next(
            n
            for n in cfg.nodes
            if n.stmt is not None
            and isinstance(n.stmt, ast.Expr)
            and "close" in ast.dump(n.stmt)
        )
        assert reraise[0].index in cfg.succ[close.index]
        # The close statement itself has no direct exception edge out.
        assert cfg.exc_exit not in cfg.exc_succ[close.index]
