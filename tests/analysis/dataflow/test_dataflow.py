"""Forward worklist solver: fixpoint, reachability, edge-state policy."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ForwardSolver


def solve(source, transfer, may_raise=None, entry_state=None):
    tree = ast.parse(textwrap.dedent(source))
    cfg = build_cfg(tree.body[0], may_raise=may_raise)
    solver = ForwardSolver(
        cfg,
        initial=frozenset,
        join=lambda a, b: a | b,
        transfer=transfer,
        entry_state=entry_state,
    )
    return cfg, solver.solve()


def assigned_name(node):
    stmt = node.stmt
    if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    return None


class TestSolver:
    def test_collects_facts_along_straight_line(self):
        def transfer(node, state):
            name = assigned_name(node)
            return state | {name} if name else state

        cfg, states = solve(
            """
            def f():
                a = 1
                b = 2
                return a + b
            """,
            transfer,
        )
        assert states[cfg.exit] == {"a", "b"}

    def test_branches_join_at_merge_point(self):
        def transfer(node, state):
            name = assigned_name(node)
            return state | {name} if name else state

        cfg, states = solve(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                return 0
            """,
            transfer,
        )
        # May-analysis: both arm facts survive the merge.
        assert states[cfg.exit] == {"a", "b"}

    def test_every_node_visited_even_with_empty_states(self):
        """The reached-set regression: with a bottom entry state and a
        transfer that never changes state, checks living inside the
        transfer must still run once per node."""
        visited = []

        def transfer(node, state):
            visited.append(node.index)
            return state

        cfg, _ = solve(
            """
            def f():
                a = 1
                b = 2
            """,
            transfer,
        )
        statement_nodes = {
            n.index for n in cfg.nodes if n.stmt is not None
        }
        assert statement_nodes <= set(visited)

    def test_exception_edge_carries_pre_state(self):
        """An exception may fire before the statement's effect lands, so
        exc-exit must see the PRE-state of the raising statement."""

        def transfer(node, state):
            name = assigned_name(node)
            return state | {name} if name else state

        def may_raise(stmt):
            return any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id == "boom"
                for n in ast.walk(stmt)
            )

        cfg, states = solve(
            """
            def f(x):
                a = 1
                b = boom(x)
                return b
            """,
            transfer,
            may_raise=may_raise,
        )
        assert states[cfg.exc_exit] == {"a"}  # b's effect never landed
        assert states[cfg.exit] == {"a", "b"}

    def test_loop_reaches_fixpoint(self):
        def transfer(node, state):
            name = assigned_name(node)
            return state | {name} if name else state

        cfg, states = solve(
            """
            def f(xs):
                total = 0
                for x in xs:
                    total = 1
                return total
            """,
            transfer,
        )
        assert "total" in states[cfg.exit]

    def test_entry_state_seeds_the_solve(self):
        def transfer(node, state):
            return state

        cfg, states = solve(
            """
            def f():
                return 1
            """,
            transfer,
            entry_state=frozenset({"seed"}),
        )
        assert states[cfg.exit] == {"seed"}
