"""Determinism-taint checker: one positive and one negative per rule
flavor, plus exemptions, sanitizers, and interprocedural witnesses."""

from __future__ import annotations

import pytest

from repro.analysis.taint import check_taint


def findings_for(make_graph, body: str):
    return check_taint(make_graph({"repro/core/emit.py": body}))


def kinds(findings):
    return {f.kind for f in findings}


class TestSources:
    def test_time_reaches_checksummed_writer(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def persist(path):
                save_checked_json(path, {"at": time.time()}, version=2)
            """,
        )
        assert kinds(findings) == {"time"}
        assert findings[0].sink == "save_checked_json"

    def test_random_reaches_result_ctor(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import random


            def emit():
                return TopKOutcome(results=[random.random()])
            """,
        )
        assert kinds(findings) == {"random"}

    def test_seeded_generator_is_not_a_source(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import random


            def emit(seed):
                rng = random.Random(seed)
                return TopKOutcome(results=[rng])
            """,
        )
        assert findings == []

    def test_fs_order_reaches_sink(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import os


            def emit(path):
                names = os.listdir(path)
                return TopKOutcome(results=names)
            """,
        )
        assert kinds(findings) == {"fs-order"}

    def test_path_iterdir_is_fs_order(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def emit(root):
                names = [p.name for p in root.iterdir()]
                return TopKOutcome(results=names)
            """,
        )
        assert "fs-order" in kinds(findings)

    def test_set_iteration_taints_elements(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def emit():
                tags = {"b", "a"}
                order = [t for t in tags]
                return TopKOutcome(results=order)
            """,
        )
        assert kinds(findings) == {"unordered-iter"}

    def test_unordered_container_itself_is_clean(self, make_graph):
        # Holding a set is fine; only iteration order taints.
        findings = findings_for(
            make_graph,
            """
            def emit():
                tags = {"b", "a"}
                return TopKOutcome(results=len(tags))
            """,
        )
        assert findings == []

    def test_hash_id_reaches_sink(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def emit(obj):
                return TopKOutcome(results=[hash(obj)])
            """,
        )
        assert kinds(findings) == {"hash-id"}


class TestSanitizers:
    def test_sorted_clears_iteration_order(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            def emit():
                tags = {"b", "a"}
                return TopKOutcome(results=sorted(tags))
            """,
        )
        assert findings == []

    def test_sorted_does_not_clear_time(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def persist(path):
                save_checked_json(path, sorted([time.time()]), version=2)
            """,
        )
        assert kinds(findings) == {"time"}

    def test_quantize_blesses_everything(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def persist(path):
                save_checked_json(path, quantize(time.time()), version=2)
            """,
        )
        assert findings == []


class TestSinkExemptions:
    def test_elapsed_seconds_accepts_time(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def answer(t0):
                return WhyNotAnswer(
                    refined=None, initial_rank=1, algorithm="x",
                    elapsed_seconds=time.perf_counter() - t0, io=None,
                )
            """,
        )
        assert findings == []

    def test_other_answer_fields_reject_time(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def answer():
                return WhyNotAnswer(
                    refined=None, initial_rank=1, algorithm="x",
                    elapsed_seconds=0.0, io=None,
                    counters=time.perf_counter(),
                )
            """,
        )
        assert kinds(findings) == {"time"}

    def test_bench_emitter_accepts_time_but_not_order(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import json
            import time


            def bench_ok(fh):
                json.dump({"p50": time.perf_counter()}, fh)


            def bench_bad(fh):
                tags = {"b", "a"}
                json.dump([t for t in tags], fh)
            """,
        )
        assert kinds(findings) == {"unordered-iter"}
        assert all(f.function.endswith("bench_bad") for f in findings)


class TestInterprocedural:
    def test_taint_flows_through_local_helper(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def stamp():
                return time.time()


            def persist(path):
                save_checked_json(path, {"at": stamp()}, version=2)
            """,
        )
        assert kinds(findings) == {"time"}
        chain = "\n".join(findings[0].chain)
        assert "stamp" in chain, "witness must name the helper hop"

    def test_param_to_sink_summary(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def write_out(path, payload):
                save_checked_json(path, payload, version=2)


            def persist(path):
                write_out(path, time.time())
            """,
        )
        assert kinds(findings) == {"time"}

    def test_tuple_return_keeps_halves_apart(self, make_graph):
        # The (payload, busy-time) convention: a time-tainted second
        # element must not contaminate the first.
        findings = findings_for(
            make_graph,
            """
            import time


            def measure(x):
                t0 = time.perf_counter()
                return x, time.perf_counter() - t0


            def emit(x):
                part, busy = measure(x)
                return TopKOutcome(results=part)
            """,
        )
        assert findings == []


class TestWaiversKeys:
    def test_finding_key_is_line_independent(self, make_graph):
        findings = findings_for(
            make_graph,
            """
            import time


            def persist(path):
                save_checked_json(path, {"at": time.time()}, version=2)
            """,
        )
        (finding,) = findings
        assert finding.key == (
            "taint::taint-to-sink::repro.core.emit.persist"
            "::save_checked_json::time"
        )
