#!/usr/bin/env python
"""Example 1 from the paper: the missing conference hotel.

A traveller searches for the top-3 hotels near a conference venue
described as "clean" and "comfortable", and is surprised that a
well-known international hotel is missing from the result.  This
script builds a synthetic city of hotels with realistic amenity
keywords, reproduces the situation, and shows how each algorithm
adapts the keywords so the expected hotel (and other similar hotels)
enters the result.

Run:  python examples/hotel_whynot.py
"""

import numpy as np

from repro import (
    Dataset,
    Oracle,
    SpatialKeywordQuery,
    SpatialObject,
    Vocabulary,
    WhyNotEngine,
    WhyNotQuestion,
    explain,
)

AMENITIES = [
    "clean", "comfortable", "luxury", "international", "wifi", "pool",
    "breakfast", "spa", "business", "boutique", "budget", "hostel",
    "parking", "gym", "bar", "rooftop", "quiet", "central",
]


def build_city(seed: int = 20) -> tuple:
    """A few hundred hotels clustered around a conference venue."""
    rng = np.random.default_rng(seed)
    vocabulary = Vocabulary(AMENITIES)
    hotels = []
    for oid in range(400):
        loc = tuple(np.clip(rng.normal(0.5, 0.18, size=2), 0.0, 1.0))
        n_amenities = int(rng.integers(2, 6))
        words = list(rng.choice(AMENITIES, size=n_amenities, replace=False))
        hotels.append(
            SpatialObject(oid=oid, loc=(float(loc[0]), float(loc[1])),
                          doc=vocabulary.encode(words))
        )
    # The well-known international hotel the traveller expects: close
    # to the venue, but its listing says "luxury international spa",
    # not "clean comfortable".
    expected = SpatialObject(
        oid=400,
        loc=(0.52, 0.51),
        doc=vocabulary.encode(["luxury", "international", "spa", "central"]),
    )
    hotels.append(expected)
    return Dataset(hotels, name="hotel-city"), vocabulary, expected


def main() -> None:
    dataset, vocabulary, expected = build_city()
    engine = WhyNotEngine(dataset)
    oracle = Oracle(dataset)

    venue = (0.5, 0.5)
    query = SpatialKeywordQuery(
        loc=venue, doc=vocabulary.encode(["clean", "comfortable"]), k=3, alpha=0.5
    )
    print("=== Initial query: top-3 'clean comfortable' hotels near the venue ===")
    for score, oid in engine.top_k(query):
        words = ", ".join(vocabulary.decode(dataset.get(oid).doc))
        print(f"  hotel #{oid}  score={score:.3f}  [{words}]")

    rank = oracle.rank(expected.oid, query)
    print(f"\nThe expected hotel #{expected.oid} "
          f"[{', '.join(vocabulary.decode(expected.doc))}] ranks {rank}. Why not?")

    question = WhyNotQuestion(query, missing=(expected.oid,), lam=0.5)
    print("\n=== Keyword-adapted answers ===")
    for method in ("advanced", "kcr"):
        answer = engine.answer(question, method=method)
        print(f"  {answer.algorithm:>10}: {answer.refined.describe(vocabulary)}")

    answer = engine.answer(question, method="kcr")
    refined = answer.refined.as_query(query)
    print(f"\n=== Refined top-{refined.k} with keywords "
          f"{vocabulary.decode(refined.doc)} ===")
    for score, oid in engine.top_k(refined):
        marker = " <-- the expected hotel" if oid == expected.oid else ""
        words = ", ".join(vocabulary.decode(dataset.get(oid).doc))
        print(f"  hotel #{oid}  score={score:.3f}  [{words}]{marker}")

    print("\n=== Full why-not report ===")
    report = explain(dataset, question, answer, vocabulary=vocabulary)
    print(report.render())


if __name__ == "__main__":
    main()
