#!/usr/bin/env python
"""Example 2 from the paper: the merchant refining advertised keywords.

A restaurateur opens a Sichuan restaurant near a landmark and lists it
with the keywords "sichuan cuisine".  Customers searching nearby do
not see it in the top-10.  The merchant poses a why-not question *about
their own listing*: how should the advertised keywords be adapted (and
how far would k have to stretch) so the restaurant enters the top-10?

This inverts the perspective of Example 1 — the missing object is the
merchant's own business — but the machinery is identical.  The script
also sweeps the λ preference to show the trade-off the paper's penalty
model exposes: λ→1 favours "just rank lower" (enlarge k), λ→0 favours
aggressive keyword editing.

Run:  python examples/merchant_advertising.py
"""

import numpy as np

from repro import (
    Dataset,
    Oracle,
    SpatialKeywordQuery,
    SpatialObject,
    Vocabulary,
    WhyNotEngine,
    WhyNotQuestion,
)

CUISINE_WORDS = [
    "sichuan", "cuisine", "restaurant", "spicy", "hotpot", "noodles",
    "dumplings", "cantonese", "dimsum", "seafood", "vegetarian", "bbq",
    "authentic", "family", "late-night", "delivery", "cheap", "fine-dining",
]


def build_food_scene(seed: int = 33):
    rng = np.random.default_rng(seed)
    vocabulary = Vocabulary(CUISINE_WORDS)
    places = []
    for oid in range(500):
        loc = tuple(np.clip(rng.normal(0.5, 0.2, size=2), 0.0, 1.0))
        n_words = int(rng.integers(2, 6))
        words = list(rng.choice(CUISINE_WORDS, size=n_words, replace=False))
        places.append(
            SpatialObject(oid=oid, loc=(float(loc[0]), float(loc[1])),
                          doc=vocabulary.encode(words))
        )
    # The merchant's restaurant: a bit off the landmark, listed with
    # dish-level keywords rather than the generic "cuisine" customers
    # search for - the question is which keywords to *advertise* so a
    # "sichuan cuisine" search surfaces it.  Created separately: the
    # demo *opens* the restaurant after the catalog's indexes exist,
    # exercising dynamic insertion.
    mine = SpatialObject(
        oid=500,
        loc=(0.62, 0.40),
        doc=vocabulary.encode(["sichuan", "spicy", "hotpot", "authentic"]),
    )
    return Dataset(places, name="food-scene"), vocabulary, mine


def main() -> None:
    dataset, vocabulary, mine = build_food_scene()
    engine = WhyNotEngine(dataset)
    _ = engine.setr_tree, engine.kcr_tree  # catalog indexes already live
    print(f"catalog online: {len(dataset)} restaurants indexed")
    engine.insert(mine)  # the new restaurant opens: dynamic insertion
    print(f"restaurant #{mine.oid} opened and inserted into the live indexes\n")
    oracle = Oracle(dataset)

    landmark = (0.5, 0.5)
    query = SpatialKeywordQuery(
        loc=landmark, doc=vocabulary.encode(["sichuan", "cuisine"]), k=10, alpha=0.5
    )
    rank = oracle.rank(mine.oid, query)
    print("=== Customer search: top-10 'sichuan cuisine' near the landmark ===")
    top = [oid for _, oid in engine.top_k(query)]
    print(f"result ids: {top}")
    print(f"my restaurant (#{mine.oid}) ranks {rank} -> not in the top-10\n")

    print("=== How should the advertised keywords change? (λ sweep) ===")
    for lam in (0.1, 0.5, 0.9):
        question = WhyNotQuestion(query, missing=(mine.oid,), lam=lam)
        answer = engine.answer(question, method="kcr")
        r = answer.refined
        print(
            f"  λ={lam:.1f}: advertise {vocabulary.decode(r.keywords)} "
            f"(Δdoc={r.delta_doc}, k'={r.k}, penalty={r.penalty:.3f})"
        )

    question = WhyNotQuestion(query, missing=(mine.oid,), lam=0.5)
    answer = engine.answer(question, method="kcr")
    refined = answer.refined.as_query(query)
    revived = [oid for _, oid in engine.top_k(refined)]
    print(
        f"\nWith keywords {vocabulary.decode(refined.doc)} and k={refined.k}, "
        f"my restaurant is in the result: {mine.oid in revived}"
    )

    # The reverse question ([22], the KcR-tree's original use): which
    # searches near the landmark find my restaurant in the top-10 at all?
    from repro import ReverseKeywordSearch

    print("\n=== Reverse keyword search: which top-10 searches find me? ===")
    reverse = ReverseKeywordSearch(engine.setr_tree)
    report = reverse.search(mine.oid, landmark, k=10, max_size=2)
    for match in report.matches[:5]:
        print(
            f"  {vocabulary.decode(match.keywords)} -> rank {match.rank} "
            f"(score {match.score:.3f})"
        )
    best = report.best()
    if best is not None:
        print(
            f"cheapest winning advertisement: {vocabulary.decode(best.keywords)}"
        )

    # Close the loop: apply the why-not suggestion to the live listing.
    engine.update_keywords(mine.oid, refined.doc)
    now = [oid for _, oid in engine.top_k(query.with_k(refined.k))]
    print(
        f"\nafter updating the listing, the original search "
        f"(k={refined.k}) finds me: {mine.oid in now}"
    )


if __name__ == "__main__":
    main()
