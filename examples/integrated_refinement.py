#!/usr/bin/env python
"""Extension demo: keyword adaption vs α-refinement vs the integrated
framework (the paper's future-work sketch).

For a batch of why-not questions this script answers each three ways —
adapting the keywords (the paper's contribution), adapting the
spatial/textual preference α (the authors' earlier approach), and the
integrated framework that picks whichever axis penalises less — and
tabulates when each axis wins.

Run:  python examples/integrated_refinement.py
"""

import numpy as np

from repro import (
    Oracle,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
    make_euro_like,
)


def draw_questions(dataset, oracle, n=8, seed=55):
    rng = np.random.default_rng(seed)
    questions = []
    while len(questions) < n:
        seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(seed_obj.doc)[:3])
        if len(doc) < 2:
            continue
        query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=5, alpha=0.5)
        try:
            missing = oracle.object_at_rank(query, 26)
        except ValueError:
            continue
        if len(dataset.get(missing).doc - query.doc) > 5:
            continue
        questions.append(WhyNotQuestion(query, (missing,), lam=0.5))
    return questions


def main() -> None:
    dataset, vocabulary = make_euro_like(3000, seed=21)
    engine = WhyNotEngine(dataset)
    oracle = Oracle(dataset)
    questions = draw_questions(dataset, oracle)

    print(f"{'#':>2}  {'keyword':>8}  {'alpha':>8}  {'integrated':>10}  winner")
    print("-" * 52)
    keyword_wins = alpha_wins = 0
    for i, question in enumerate(questions):
        kw = engine.answer(question, method="kcr").refined.penalty
        al = engine.answer(question, method="alpha").refined.penalty
        integrated = engine.answer(question, method="integrated")
        winner = integrated.algorithm.split("(", 1)[1].rstrip(")")
        if kw <= al:
            keyword_wins += 1
        else:
            alpha_wins += 1
        print(
            f"{i:>2}  {kw:>8.4f}  {al:>8.4f}  "
            f"{integrated.refined.penalty:>10.4f}  {winner}"
        )
    print("-" * 52)
    print(
        f"keyword adaption wins {keyword_wins}/{len(questions)}, "
        f"alpha refinement wins {alpha_wins}/{len(questions)}"
    )
    print(
        "\nKeyword adaption usually wins (it has exponentially many "
        "refinement candidates to choose from), but when the missing "
        "object is near-dominant on one score axis a small alpha shift "
        "is cheaper - exactly the complementarity the integrated "
        "framework exploits."
    )


if __name__ == "__main__":
    main()
