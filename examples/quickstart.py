#!/usr/bin/env python
"""Quickstart: the paper's Fig 1 / Table I example, end to end.

Builds the four-object micro dataset from the paper's running example,
issues the initial top-1 query with keywords {t1, t2}, observes that
the expected object ``m`` is missing (it ranks 3rd), poses the why-not
question, and prints the optimal refined query each algorithm returns.

Run:  python examples/quickstart.py
"""

from repro import (
    Scorer,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
    make_micro_example,
)


def main() -> None:
    dataset, vocabulary = make_micro_example()
    engine = WhyNotEngine(dataset, capacity=4)
    scorer = Scorer(dataset)

    t1, t2 = vocabulary.id_of("t1"), vocabulary.id_of("t2")
    query = SpatialKeywordQuery(
        loc=(0.0, 0.0), doc=frozenset({t1, t2}), k=1, alpha=0.5
    )

    print("=== Initial query (Fig 1) ===")
    print(f"keywords: {vocabulary.decode(query.doc)}, k={query.k}, alpha={query.alpha}")
    print("\nScore table (Fig 1b):")
    names = {0: "m ", 1: "o1", 2: "o2", 3: "o3"}
    for obj in dataset:
        spatial = 1.0 - scorer.sdist(obj, query)
        textual = scorer.tsim(obj, query.doc)
        print(
            f"  {names[obj.oid]}  1-SDist={spatial:.2f}  "
            f"TSim={textual:.2f}  ST={scorer.st(obj, query):.3f}"
        )

    result = engine.top_k(query)
    print(f"\ntop-1 result: {[oid for _, oid in result]} (object o3)")
    print(f"rank of m: {scorer.rank(dataset.get(0), query)} -> m is missing!")

    print("\n=== Why-not question: why is m not in the top-1? ===")
    question = WhyNotQuestion(query, missing=(0,), lam=0.5)
    for method in ("basic", "advanced", "kcr"):
        answer = engine.answer(question, method=method)
        print(f"  {answer.algorithm:>10}: {answer.refined.describe(vocabulary)}")

    answer = engine.answer(question, method="kcr")
    refined = answer.refined.as_query(query)
    revived = [oid for _, oid in engine.top_k(refined)]
    print(f"\nrefined top-{refined.k} result: {revived} (m=0 revived: {0 in revived})")
    print(
        "\nNote: the optimum is q4 = (2, {t1,t2,t3}) with penalty 5/12; the "
        "paper's Table I row for q2 is inconsistent with its own Fig 1(b) "
        "scores (see DESIGN.md)."
    )


if __name__ == "__main__":
    main()
