#!/usr/bin/env python
"""Bring-your-own-dataset walkthrough.

Shows the full data-management surface around the why-not algorithms:

1. export a dataset to the EURO/GN-style flat-file format (the format
   the community circulates the real datasets in) and load it back;
2. build indexes, persist one, and reload it without rebuilding;
3. compare the hybrid SetR-tree against the pre-hybrid R-tree +
   inverted-file baseline on the same query;
4. run a why-not question end to end on the loaded data.

If you hold the real EURO or GN files, point ``load_flatfile`` at them
and everything below runs unchanged.

Run:  python examples/bring_your_own_data.py
"""

import tempfile
from pathlib import Path

from repro import (
    InvertedFileIndex,
    Oracle,
    SpatialKeywordQuery,
    TopKSearcher,
    WhyNotEngine,
    WhyNotQuestion,
    load_flatfile,
    load_index,
    make_euro_like,
    save_flatfile,
    save_index,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-byod-"))

    # 1. Export / reload the flat-file format.
    original, vocabulary = make_euro_like(1500, seed=99)
    flat_path = workdir / "pois.txt"
    save_flatfile(original, vocabulary, flat_path)
    print(f"wrote {flat_path} ({flat_path.stat().st_size // 1024} KiB)")
    dataset, vocabulary = load_flatfile(flat_path, normalize=False)
    print(f"loaded {len(dataset)} objects, {dataset.vocabulary_size} words\n")

    # 2. Build, persist, reload.
    engine = WhyNotEngine(dataset)
    tree = engine.setr_tree
    index_path = workdir / "setr.json"
    save_index(tree, index_path)
    reloaded = load_index(index_path, dataset)
    reloaded.validate()
    print(
        f"persisted and reloaded the SetR-tree: height={reloaded.height}, "
        f"{reloaded.node_count} nodes, structure verified\n"
    )

    # 3. Hybrid vs inverted-file baseline on one rank determination.
    oracle = Oracle(dataset)
    probe = dataset.objects[123]
    query = SpatialKeywordQuery(
        loc=probe.loc, doc=frozenset(list(probe.doc)[:3]), k=10
    )
    deep = dataset.objects[777]
    baseline = InvertedFileIndex(dataset)
    for name, runner, stats, reset in (
        ("SetR-tree", TopKSearcher(reloaded).rank_of_missing, reloaded.stats,
         reloaded.reset_buffer),
        ("InvertedFile", baseline.rank_of_missing, baseline.stats,
         baseline.reset_buffer),
    ):
        reset()
        before = stats.snapshot()
        result = runner(query, [deep])
        delta = stats.snapshot() - before
        print(
            f"{name:>12}: rank(deep object) = {result.rank}  "
            f"[{delta.page_reads} page reads]"
        )
        assert result.rank == oracle.rank(deep.oid, query)

    # 4. A why-not question against the loaded data.
    try:
        missing = oracle.object_at_rank(query, 26)
    except ValueError:
        print("\n(no object at exact rank 26 for this probe; done)")
        return
    question = WhyNotQuestion(query, (missing,), lam=0.5)
    answer = engine.answer(question, method="kcr")
    print(f"\nwhy-not answer: {answer.refined.describe(vocabulary)}")


if __name__ == "__main__":
    main()
