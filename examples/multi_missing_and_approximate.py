#!/usr/bin/env python
"""Section VI features: multiple missing objects + the approximate
algorithm's quality/time trade-off.

Part 1 poses a why-not question with several missing objects at once
(the Section VI-A extension): all of them must enter the refined
result, and the penalty normalises against the worst-ranked one.

Part 2 runs the sampling-based approximate algorithm (Section VI-B) at
increasing sample sizes against the exact optimum, printing the
trade-off curve the paper's Fig 12 plots.

Run:  python examples/multi_missing_and_approximate.py
"""

import time

import numpy as np

from repro import (
    Oracle,
    SpatialKeywordQuery,
    WhyNotEngine,
    WhyNotQuestion,
    make_euro_like,
)


def find_question(dataset, oracle, rng, n_missing, n_keywords=4, k0=10):
    """Draw a query and missing objects per the paper's Fig 9 protocol."""
    while True:
        seed_obj = dataset.objects[int(rng.integers(0, len(dataset)))]
        doc = frozenset(list(seed_obj.doc)[:n_keywords])
        if len(doc) < n_keywords:
            continue
        query = SpatialKeywordQuery(loc=seed_obj.loc, doc=doc, k=k0, alpha=0.5)
        pool = [
            oid
            for oid in oracle.top_k_ids(query, k=51)[k0:]
            if len(dataset.get(oid).doc - query.doc) <= 5
        ]
        if len(pool) >= n_missing:
            chosen = tuple(pool[:n_missing])
            return WhyNotQuestion(query, chosen, lam=0.5)


def main() -> None:
    dataset, vocabulary = make_euro_like(4000, seed=10)
    engine = WhyNotEngine(dataset)
    oracle = Oracle(dataset)
    rng = np.random.default_rng(77)

    print("=== Part 1: multiple missing objects (Section VI-A) ===")
    for n_missing in (1, 2, 3):
        question = find_question(dataset, oracle, rng, n_missing)
        answer = engine.answer(question, method="kcr")
        refined = answer.refined.as_query(question.query)
        result_ids = {oid for _, oid in engine.top_k(refined)}
        revived = all(m in result_ids for m in question.missing)
        print(
            f"  |M|={n_missing}: R(M,q)={answer.initial_rank}  "
            f"refined Δdoc={answer.refined.delta_doc} k'={answer.refined.k}  "
            f"penalty={answer.refined.penalty:.3f}  all revived={revived}"
        )

    print("\n=== Part 2: approximate algorithm (Section VI-B / Fig 12) ===")
    question = find_question(dataset, oracle, rng, 1, n_keywords=6)
    exact_started = time.perf_counter()
    exact = engine.answer(question, method="kcr")
    exact_time = time.perf_counter() - exact_started
    print(f"  exact:    penalty={exact.refined.penalty:.4f}  time={exact_time:.3f}s")
    for sample_size in (10, 50, 200, 800):
        started = time.perf_counter()
        approx = engine.answer(
            question, method="approximate", sample_size=sample_size, strategy="kcr"
        )
        elapsed = time.perf_counter() - started
        gap = approx.refined.penalty - exact.refined.penalty
        print(
            f"  T={sample_size:<5d} penalty={approx.refined.penalty:.4f} "
            f"(+{gap:.4f})  time={elapsed:.3f}s"
        )


if __name__ == "__main__":
    main()
