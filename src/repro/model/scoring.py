"""The ranking function ``ST`` (Eqn 1) and object ranks (Eqn 3).

:class:`Scorer` binds a dataset and a similarity model and evaluates
scores for arbitrary ``(object, query)`` pairs.  It is the single
source of truth for Eqn 1 in the library — the tree searches, the
bound estimators, and the brute-force oracle all route through it (or
reproduce its arithmetic under test).

Rank semantics follow Eqn 3 exactly: the rank of ``o`` is one plus the
number of objects with *strictly* greater score.  Objects tied with
``o`` do not dominate it, so a refined query revives ``m`` as soon as
``R(m, q') <= k'``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from .objects import Dataset, SpatialObject
from .query import SpatialKeywordQuery
from .similarity import JACCARD, SimilarityModel

__all__ = ["Scorer"]

KeywordSet = FrozenSet[int]


class Scorer:
    """Evaluates ``ST``, ``SDist``, ``TSim`` and ranks for one dataset."""

    def __init__(self, dataset: Dataset, model: SimilarityModel = JACCARD) -> None:
        self.dataset = dataset
        self.model = model

    # ------------------------------------------------------------------
    # score components
    # ------------------------------------------------------------------
    def sdist(self, obj: SpatialObject, query: SpatialKeywordQuery) -> float:
        """Normalised spatial distance ``SDist(o, q)`` in ``[0, 1]``."""
        return self.dataset.normalized_distance(obj.loc, query.loc)

    def tsim(self, obj: SpatialObject, keywords: KeywordSet) -> float:
        """Textual similarity ``TSim(o, q)`` under the bound model."""
        return self.model.similarity(obj.doc, keywords)

    def st(self, obj: SpatialObject, query: SpatialKeywordQuery) -> float:
        """The ranking score of Eqn 1 (higher is better)."""
        spatial = 1.0 - self.sdist(obj, query)
        textual = self.model.similarity(obj.doc, query.doc)
        return query.alpha * spatial + (1.0 - query.alpha) * textual

    def st_with_keywords(
        self, obj: SpatialObject, query: SpatialKeywordQuery, keywords: KeywordSet
    ) -> float:
        """Eqn 1 with the query's keywords replaced by ``keywords``.

        The why-not algorithms evaluate thousands of candidate keyword
        sets against a fixed ``(loc, α)``; this avoids materialising a
        new query object per candidate.
        """
        spatial = 1.0 - self.sdist(obj, query)
        textual = self.model.similarity(obj.doc, keywords)
        return query.alpha * spatial + (1.0 - query.alpha) * textual

    # ------------------------------------------------------------------
    # ranks (linear-scan reference implementations)
    # ------------------------------------------------------------------
    def rank(self, obj: SpatialObject, query: SpatialKeywordQuery) -> int:
        """``R(o, q)`` by full scan — the Eqn 3 reference semantics.

        Index-based searches (:mod:`repro.index.search`) compute the
        same value with far fewer object accesses; tests assert the two
        agree.
        """
        target = self.st(obj, query)
        dominators = sum(1 for other in self.dataset if self.st(other, query) > target)
        return dominators + 1

    def rank_of_set(
        self, objects: Iterable[SpatialObject], query: SpatialKeywordQuery
    ) -> int:
        """``R(M, q) = max_i R(m_i, q)`` for a missing-object set."""
        ranks = [self.rank(obj, query) for obj in objects]
        if not ranks:
            raise ValueError("rank_of_set() needs at least one object")
        return max(ranks)

    def top_k(
        self, query: SpatialKeywordQuery, k: Optional[int] = None
    ) -> Sequence[Tuple[float, SpatialObject]]:
        """Top-``k`` objects by full scan, best first.

        Ties are broken by object id for determinism.  This is the
        reference result for Definition 1; the SetR-tree search must
        return a permutation of it (same score multiset).
        """
        limit = query.k if k is None else k
        scored = sorted(
            ((self.st(obj, query), obj) for obj in self.dataset),
            key=lambda pair: (-pair[0], pair[1].oid),
        )
        return scored[:limit]

    def dominators(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> Sequence[SpatialObject]:
        """All objects that strictly out-score ``obj`` under ``query``."""
        target = self.st(obj, query)
        return [other for other in self.dataset if self.st(other, query) > target]
