"""Spatial web objects and the dataset container.

Section III-A of the paper models the database ``D`` as a set of
objects ``o = (o.loc, o.doc)`` where ``o.loc`` is a point and ``o.doc``
a set of keywords.  This module provides:

* :class:`SpatialObject` — one immutable object;
* :class:`Dataset` — the database, with the derived statistics the
  algorithms need (document frequencies for the particularity weight of
  Eqn 7, the normalisation diagonal for spatial distance, fast id
  lookup).

Keywords are interned integers (see :mod:`repro.data.vocabulary`); all
hot-path set algebra therefore runs on small ``frozenset[int]`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import DatasetError
from .geometry import Point, space_diagonal

__all__ = ["SpatialObject", "Dataset"]

KeywordSet = FrozenSet[int]


@dataclass(frozen=True)
class SpatialObject:
    """A geo-tagged web object: an id, a location, and a document.

    ``oid`` values must be unique within a dataset; algorithms refer to
    objects by id everywhere (results, missing-object sets, dominator
    caches) so equality/hash on the id alone would be ambiguous across
    datasets — we keep full value semantics from the dataclass.
    """

    oid: int
    loc: Point
    doc: KeywordSet

    def __post_init__(self) -> None:
        if not isinstance(self.doc, frozenset):
            # Accept any iterable of ints at construction for
            # ergonomics, but store a frozenset for hashability.
            object.__setattr__(self, "doc", frozenset(self.doc))
        if len(self.loc) != 2:
            raise DatasetError(f"object {self.oid}: location must be a 2-tuple")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        words = ",".join(str(t) for t in sorted(self.doc))
        return f"SpatialObject(oid={self.oid}, loc={self.loc}, doc={{{words}}})"


class Dataset:
    """The spatial-object database ``D`` plus derived statistics.

    The dataset is immutable after construction.  Construction computes:

    * ``diagonal`` — the maximum possible distance between two points,
      used to normalise ``SDist`` in Eqn 1;
    * ``doc_frequency`` — ``n_t`` of Eqn 7, the number of objects whose
      document contains each keyword;
    * an id -> object map for O(1) lookup.

    Parameters
    ----------
    objects:
        The objects of the database.  Ids must be unique.
    diagonal:
        Optional override for the normalisation diagonal.  Synthetic
        generators pass the diagonal of the *generation space* so that
        datasets of different cardinalities drawn from the same space
        normalise identically (needed for the Fig 13 scalability sweep).
    """

    def __init__(
        self,
        objects: Iterable[SpatialObject],
        *,
        diagonal: Optional[float] = None,
        name: str = "dataset",
    ) -> None:
        self._objects: List[SpatialObject] = list(objects)
        self.name = name
        self._by_id: Dict[int, SpatialObject] = {}
        for obj in self._objects:
            if obj.oid in self._by_id:
                raise DatasetError(f"duplicate object id {obj.oid}")
            self._by_id[obj.oid] = obj
        if diagonal is not None:
            if diagonal <= 0:
                raise DatasetError("diagonal must be positive")
            self.diagonal = float(diagonal)
        else:
            self.diagonal = space_diagonal([o.loc for o in self._objects])
        self._doc_frequency: Dict[int, int] = {}
        for obj in self._objects:
            for term in obj.doc:
                self._doc_frequency[term] = self._doc_frequency.get(term, 0) + 1

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects)

    def __contains__(self, oid: object) -> bool:
        return oid in self._by_id

    @property
    def objects(self) -> Sequence[SpatialObject]:
        """The objects in insertion order (read-only view)."""
        return tuple(self._objects)

    def get(self, oid: int) -> SpatialObject:
        """Return the object with id ``oid``.

        Raises :class:`DatasetError` when the id is unknown, which is
        the error surface a why-not question with a bogus missing
        object hits.
        """
        try:
            return self._by_id[oid]
        except KeyError:
            raise DatasetError(f"unknown object id {oid}") from None

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def add(self, obj: SpatialObject) -> None:
        """Append one object (supports the indexes' dynamic insertion).

        The id must be new.  The normalisation diagonal stays fixed at
        its construction-time value — new objects are expected to come
        from the same space; a point outside the original extent would
        silently change every existing score if the diagonal moved.
        Derived structures built *from* this dataset (oracles, trees)
        do not observe the append automatically; the engine's
        ``insert`` keeps the indexes in sync, and oracles must be
        rebuilt.
        """
        if obj.oid in self._by_id:
            raise DatasetError(f"duplicate object id {obj.oid}")
        self._objects.append(obj)
        self._by_id[obj.oid] = obj
        for term in obj.doc:
            self._doc_frequency[term] = self._doc_frequency.get(term, 0) + 1

    def remove(self, oid: int) -> SpatialObject:
        """Remove one object by id and return it.

        Mirrors :meth:`add`; the diagonal stays fixed.  As with adds,
        derived structures (oracles, indexes) built earlier are
        snapshots — ``WhyNotEngine.remove`` keeps its indexes in sync.
        """
        obj = self._by_id.pop(oid, None)
        if obj is None:
            raise DatasetError(f"unknown object id {oid}")
        self._objects.remove(obj)
        for term in obj.doc:
            remaining = self._doc_frequency[term] - 1
            if remaining:
                self._doc_frequency[term] = remaining
            else:
                del self._doc_frequency[term]
        return obj

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def doc_frequency(self) -> Mapping[int, int]:
        """``n_t`` per keyword: the number of objects containing it."""
        return self._doc_frequency

    def frequency(self, term: int) -> int:
        """Document frequency of one keyword (0 when absent)."""
        return self._doc_frequency.get(term, 0)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct keywords across all documents."""
        return len(self._doc_frequency)

    def normalized_distance(self, a: Point, b: Point) -> float:
        """``SDist``: Euclidean distance over the dataset diagonal.

        The result is clamped to ``[0, 1]``; query locations outside
        the data bounding box would otherwise push scores negative and
        break the bound arithmetic of Theorems 1 and 2.
        """
        from .geometry import euclidean

        d = euclidean(a, b) / self.diagonal
        return d if d < 1.0 else 1.0

    def summary(self) -> Dict[str, object]:
        """Dataset statistics in the shape of the paper's Table II."""
        lengths = [len(o.doc) for o in self._objects]
        return {
            "name": self.name,
            "total_objects": len(self._objects),
            "total_distinct_words": self.vocabulary_size,
            "avg_doc_length": (sum(lengths) / len(lengths)) if lengths else 0.0,
            "diagonal": self.diagonal,
        }
