"""Textual similarity models.

Eqn 2 of the paper adopts Jaccard similarity; footnote 1 notes that the
framework extends to other set-based models such as the Dice
coefficient and (set-based) Cosine similarity.  All three are provided
behind one tiny strategy interface so the basic and advanced why-not
algorithms can run under any of them, as the footnote promises.

Only Jaccard has the union/intersection bound structure that the
SetR-tree (Theorem 1) and KcR-tree (Theorem 3) exploit, so the
index-based bounds stay Jaccard-specific; the other models fall back to
a generic, still-admissible upper bound (intersection over the larger
of the two minimum-union estimates).

Empty-set convention
--------------------

Every model pins the same convention, stated once here and guarded
explicitly in every ``similarity``/``node_upper_bound`` entry point:
**a similarity involving an empty operand is 0.0** — an empty query
matches nothing (the candidate space excludes the empty keyword set for
exactly this reason, see :mod:`repro.core.candidates`), and an empty
document matches no query.  In particular ``similarity(∅, ∅) == 0.0``,
*not* 1.0: the ``0/0`` form is resolved to "no match", matching the
oracle's ``np.where(union > 0, ...)`` and keeping every score finite.
Earlier revisions reached these values only through incidental guards
(``x / y if y else 0.0`` on branches whose denominators could not
actually be zero) — the convention is now the first check in each
method so no refactor can reintroduce a division by zero, and the
vectorized kernels (:mod:`repro.core.vectorized`) share the same
guards so scalar and batched scores agree bit for bit.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Protocol

__all__ = [
    "SimilarityModel",
    "JaccardSimilarity",
    "DiceSimilarity",
    "CosineSetSimilarity",
    "JACCARD",
    "DICE",
    "COSINE",
    "get_model",
]

KeywordSet = FrozenSet[int]


class SimilarityModel(Protocol):
    """Strategy interface for set-based textual similarity."""

    name: str

    def similarity(self, doc: KeywordSet, query: KeywordSet) -> float:
        """Similarity in ``[0, 1]`` between a document and a query."""

    def node_upper_bound(
        self, union: KeywordSet, intersection: KeywordSet, query: KeywordSet
    ) -> float:
        """Upper bound on the similarity of any document ``d`` with
        ``intersection ⊆ d ⊆ union`` to ``query``.

        This is the textual half of Theorem 1.  Implementations must
        never under-estimate; looser is allowed (costs pruning power,
        not correctness).
        """


class JaccardSimilarity:
    """Jaccard similarity (Eqn 2): ``|d ∩ q| / |d ∪ q|``."""

    name = "jaccard"

    def similarity(self, doc: KeywordSet, query: KeywordSet) -> float:
        if not doc or not query:
            return 0.0  # empty-operand convention (module docstring)
        inter = len(doc & query)
        union = len(doc) + len(query) - inter
        return inter / union

    def node_upper_bound(
        self, union: KeywordSet, intersection: KeywordSet, query: KeywordSet
    ) -> float:
        if not union or not query:
            return 0.0  # empty-operand convention (module docstring)
        # Theorem 1: |N∪ ∩ q| / |N∩ ∪ q| — the numerator is maximised
        # by the union set, the denominator minimised by the
        # intersection set.
        numerator = len(union & query)
        if numerator == 0:
            return 0.0
        denominator = len(intersection | query)
        return numerator / denominator


class DiceSimilarity:
    """Dice coefficient: ``2|d ∩ q| / (|d| + |q|)``."""

    name = "dice"

    def similarity(self, doc: KeywordSet, query: KeywordSet) -> float:
        if not doc or not query:
            return 0.0  # empty-operand convention (module docstring)
        total = len(doc) + len(query)
        return 2.0 * len(doc & query) / total

    def node_upper_bound(
        self, union: KeywordSet, intersection: KeywordSet, query: KeywordSet
    ) -> float:
        if not union or not query:
            return 0.0  # empty-operand convention (module docstring)
        # Any document contains the node intersection, so |d| >= |N∩|;
        # the intersection with q is at most |N∪ ∩ q|.
        overlap = len(union & query)
        if overlap == 0:
            return 0.0
        numerator = 2.0 * overlap
        # ``query`` is non-empty here, so the denominator is positive
        # even for an empty node intersection.
        denominator = len(intersection) + len(query)
        # A document also has |d ∩ q| <= |d|, so the bound never needs
        # to exceed 1.
        return min(1.0, numerator / denominator)


class CosineSetSimilarity:
    """Set-based cosine: ``|d ∩ q| / sqrt(|d| · |q|)``."""

    name = "cosine"

    def similarity(self, doc: KeywordSet, query: KeywordSet) -> float:
        if not doc or not query:
            return 0.0  # empty-operand convention (module docstring)
        return len(doc & query) / math.sqrt(len(doc) * len(query))

    def node_upper_bound(
        self, union: KeywordSet, intersection: KeywordSet, query: KeywordSet
    ) -> float:
        if not union or not query:
            return 0.0  # empty-operand convention (module docstring)
        numerator = len(union & query)
        if numerator == 0:
            return 0.0
        # |d| >= max(|N∩|, |d ∩ q|); using |N∩| alone is admissible,
        # but when the node intersection is empty we still know
        # |d| >= |d ∩ q| which caps the bound at sqrt(|d∩q| / |q|).
        denom_doc = max(len(intersection), 1)
        bound = numerator / math.sqrt(denom_doc * len(query))
        return min(1.0, bound)


JACCARD = JaccardSimilarity()
DICE = DiceSimilarity()
COSINE = CosineSetSimilarity()

_MODELS = {m.name: m for m in (JACCARD, DICE, COSINE)}


def get_model(name: str) -> SimilarityModel:
    """Look up a similarity model by name (``jaccard``/``dice``/``cosine``)."""
    try:
        return _MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown similarity model {name!r}; expected one of {sorted(_MODELS)}"
        ) from None
