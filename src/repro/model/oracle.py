"""Vectorised brute-force oracle.

A numpy implementation of the ranking function over the *whole*
dataset.  It plays two roles:

* **Ground truth in tests** — every index-based search and every bound
  estimator is cross-checked against it.
* **Fast reference baseline** — the experiment harness uses it to find
  the object at a requested initial rank (the paper places the missing
  object at rank ``5·k₀ + 1``) without paying tree-search cost during
  workload construction.

The oracle deliberately bypasses the storage layer: it does no I/O
accounting and is not one of the compared algorithms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from .objects import Dataset
from .query import SpatialKeywordQuery

__all__ = ["Oracle"]

KeywordSet = FrozenSet[int]


class Oracle:
    """Brute-force scorer over a dataset, vectorised with numpy.

    Construction cost is one pass over the dataset to build the
    location matrix and an inverted index from keyword id to the numpy
    row indices of the objects containing it.  Jaccard similarity only
    (the oracle exists to check the default configuration; the other
    similarity models are cross-checked by the slower
    :class:`repro.model.scoring.Scorer`).
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        objects = dataset.objects
        self._oids = np.array([o.oid for o in objects], dtype=np.int64)
        self._row_of: Dict[int, int] = {o.oid: i for i, o in enumerate(objects)}
        self._locs = np.array([o.loc for o in objects], dtype=np.float64)
        self._doc_len = np.array([len(o.doc) for o in objects], dtype=np.float64)
        postings: Dict[int, List[int]] = {}
        for row, obj in enumerate(objects):
            for term in obj.doc:
                postings.setdefault(term, []).append(row)
        self._postings: Dict[int, np.ndarray] = {
            term: np.array(rows, dtype=np.int64) for term, rows in postings.items()
        }

    # ------------------------------------------------------------------
    # vectorised score components
    # ------------------------------------------------------------------
    def sdist(self, loc: Tuple[float, float]) -> np.ndarray:
        """Normalised spatial distance of every object to ``loc``."""
        deltas = self._locs - np.asarray(loc, dtype=np.float64)
        dx, dy = deltas[:, 0], deltas[:, 1]
        # sqrt(dx²+dy²) — the same IEEE-reproducible formulation as
        # geometry.euclidean, so oracle scores are bit-identical to the
        # production scalar and vectorized paths alike.
        dist = np.sqrt(dx * dx + dy * dy) / self.dataset.diagonal
        return np.minimum(dist, 1.0)

    def intersection_counts(self, keywords: Iterable[int]) -> np.ndarray:
        """``|o.doc ∩ S|`` for every object, via the inverted index."""
        counts = np.zeros(len(self._oids), dtype=np.float64)
        for term in keywords:
            rows = self._postings.get(term)
            if rows is not None:
                counts[rows] += 1.0
        return counts

    def tsim(self, keywords: KeywordSet) -> np.ndarray:
        """Jaccard similarity of every object's document to ``keywords``."""
        inter = self.intersection_counts(keywords)
        union = self._doc_len + float(len(keywords)) - inter
        # A completely empty document against an empty keyword set has
        # union 0; Jaccard is defined as 0 there.
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = np.where(union > 0.0, inter / union, 0.0)
        return sims

    def scores(
        self, query: SpatialKeywordQuery, keywords: KeywordSet | None = None
    ) -> np.ndarray:
        """``ST`` (Eqn 1) for every object, optionally overriding keywords."""
        doc = query.doc if keywords is None else keywords
        spatial = 1.0 - self.sdist(query.loc)
        textual = self.tsim(doc)
        return query.alpha * spatial + (1.0 - query.alpha) * textual

    # ------------------------------------------------------------------
    # ranks and results
    # ------------------------------------------------------------------
    def rank(
        self, oid: int, query: SpatialKeywordQuery, keywords: KeywordSet | None = None
    ) -> int:
        """``R(o, q)`` (Eqn 3): strictly-greater dominators plus one."""
        scores = self.scores(query, keywords)
        row = self._row_of[oid]
        return int(np.count_nonzero(scores > scores[row])) + 1

    def rank_of_set(
        self,
        oids: Sequence[int],
        query: SpatialKeywordQuery,
        keywords: KeywordSet | None = None,
    ) -> int:
        """``R(M, q) = max_i R(m_i, q)`` with a single score evaluation."""
        scores = self.scores(query, keywords)
        ranks = [
            int(np.count_nonzero(scores > scores[self._row_of[oid]])) + 1
            for oid in oids
        ]
        return max(ranks)

    def top_k_ids(
        self, query: SpatialKeywordQuery, k: int | None = None
    ) -> List[int]:
        """Ids of the top-``k`` objects, best first, ties by id."""
        limit = query.k if k is None else k
        scores = self.scores(query)
        order = np.lexsort((self._oids, -scores))
        return [int(self._oids[i]) for i in order[:limit]]

    def object_at_rank(self, query: SpatialKeywordQuery, rank: int) -> int:
        """Id of the object whose Eqn-3 rank equals ``rank``.

        When several objects tie, they share a rank; this returns the
        lowest-id object whose rank is exactly ``rank``.  Raises
        :class:`ValueError` when no object occupies the rank (a tie
        group straddles it) — workload generation retries with a fresh
        query in that case.
        """
        scores = self.scores(query)
        order = np.lexsort((self._oids, -scores))
        sorted_scores = scores[order]
        # rank of the object at sorted position i = number of strictly
        # greater scores + 1 = first position of its score group + 1.
        if rank < 1 or rank > len(order):
            raise ValueError(f"rank {rank} out of range 1..{len(order)}")
        position = rank - 1
        group_start = int(np.searchsorted(-sorted_scores, -sorted_scores[position]))
        if group_start != position:
            raise ValueError(f"no object has exact rank {rank} (tie group)")
        return int(self._oids[order[position]])
