"""Tolerance-aware float comparisons.

The penalty model (Eqn 4) and the ranking function (Eqn 1) are computed
in IEEE-754 doubles, so exact ``==``/``!=`` on derived float values is
a correctness hazard: two mathematically equal penalties can differ by
an ulp depending on evaluation order, and branch conditions like
``lam == 0.0`` silently misbehave when ``lam`` arrives as ``1e-17``
from an upstream computation.  The ``exact-float`` lint rule
(:mod:`repro.analysis.lint`) bans float-literal equality comparisons in
scoring/penalty/geometry code; call sites migrate to these helpers or
carry an explicit ``# lint: exact-float`` waiver when bit-exactness is
intended (e.g. comparing against a value the same function assigned).

Tolerances follow :func:`math.isclose` semantics — a relative tolerance
for large magnitudes plus an absolute floor for comparisons against
zero, where relative tolerance is meaningless.
"""

from __future__ import annotations

import math

__all__ = [
    "DEFAULT_REL_TOL",
    "DEFAULT_ABS_TOL",
    "QUANTIZE_DECIMALS",
    "approx_eq",
    "approx_le",
    "approx_ge",
    "approx_zero",
    "quantize",
]

DEFAULT_REL_TOL = 1e-9
"""Relative tolerance: ~quarter of the significand, far above ulp noise
but far below any meaningful penalty/score difference (the smallest
distinct penalty step is ``min(λ, 1−λ)/normaliser`` ≥ ~1e-4 in the
paper's parameter grid)."""

DEFAULT_ABS_TOL = 1e-12
"""Absolute floor so comparisons against exactly 0.0 still succeed for
accumulated rounding residue."""


QUANTIZE_DECIMALS = 9
"""Decimal places kept by :func:`quantize` — the sort-key analogue of
``DEFAULT_REL_TOL`` for scores/penalties/gains in ``[0, 1]``-ish
magnitudes: coarse enough to absorb ulp noise from different evaluation
orders (scalar loop vs vectorized kernel), fine enough that no two
meaningfully different values collapse."""


def quantize(value: float, *, decimals: int = QUANTIZE_DECIMALS) -> float:
    """Quantize a float for use inside a *sort key*.

    ``approx_eq`` cannot serve as a sort key because tolerance-based
    equality is not transitive; rounding to a fixed grid is.  Two values
    within ulp noise of each other land on the same grid point, so
    orderings that tie-break on a secondary key stay deterministic no
    matter which evaluation order (scalar or vectorized) produced the
    primary key.  ``-0.0`` normalises to ``0.0`` so the quantized key
    never distinguishes signed zeros.
    """
    return round(value, decimals) + 0.0


def approx_eq(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """``a == b`` up to tolerance (:func:`math.isclose` with defaults
    suited to normalised scores and penalties in ``[0, 1]``)."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def approx_zero(
    value: float,
    *,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """``value == 0.0`` up to the absolute tolerance only.

    Comparing against zero with a relative tolerance is a no-op (every
    nonzero float is infinitely far from 0 in relative terms), so this
    helper makes the intent explicit.
    """
    return abs(value) <= abs_tol


def approx_le(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """``a <= b`` up to tolerance: true when strictly below or close."""
    return a <= b or approx_eq(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def approx_ge(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """``a >= b`` up to tolerance: true when strictly above or close."""
    return a >= b or approx_eq(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
