"""Query types: the spatial keyword top-k query and the why-not question.

A spatial keyword top-k query is the 4-tuple ``(loc, doc, k, α)`` of
Section III-A.  A why-not question (Section III-B) wraps an initial
query together with the set of missing objects and the user's
``λ``-preference between enlarging ``k`` and editing the keywords.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Tuple

from ..errors import InvalidParameterError, InvalidQueryError
from .geometry import Point

__all__ = ["SpatialKeywordQuery", "WhyNotQuestion"]

KeywordSet = FrozenSet[int]


def _as_keyword_set(keywords: Iterable[int]) -> KeywordSet:
    doc = frozenset(keywords)
    if any(not isinstance(t, int) for t in doc):
        raise InvalidQueryError("query keywords must be interned integer ids")
    return doc


@dataclass(frozen=True)
class SpatialKeywordQuery:
    """The spatial keyword top-k query ``q = (loc, doc, k, α)``.

    ``alpha`` is the preference between spatial proximity and textual
    similarity in Eqn 1 and must lie strictly inside ``(0, 1)`` — the
    paper defines it on the open interval, and the Theorem 2 threshold
    divides by ``1 − α``.
    """

    loc: Point
    doc: KeywordSet
    k: int
    alpha: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "doc", _as_keyword_set(self.doc))
        if len(self.loc) != 2:
            raise InvalidQueryError("query location must be a 2-tuple")
        if self.k <= 0:
            raise InvalidQueryError(f"k must be positive, got {self.k}")
        if not 0.0 < self.alpha < 1.0:
            raise InvalidQueryError(
                f"alpha must lie in the open interval (0, 1), got {self.alpha}"
            )

    def with_keywords(self, doc: Iterable[int]) -> "SpatialKeywordQuery":
        """A copy of this query with a different keyword set.

        This is how refined queries are materialised: the why-not
        refinement only ever touches ``doc`` and ``k`` (Definition 2);
        ``loc`` and ``α`` stay fixed.
        """
        return replace(self, doc=_as_keyword_set(doc))

    def with_k(self, k: int) -> "SpatialKeywordQuery":
        """A copy of this query with a different result size."""
        return replace(self, k=k)

    def with_alpha(self, alpha: float) -> "SpatialKeywordQuery":
        """A copy with a different spatial/textual preference.

        Used by the α-refinement extension (the integrated framework
        the paper's conclusion sketches); keyword adaption itself never
        touches ``α``.
        """
        return replace(self, alpha=alpha)


@dataclass(frozen=True)
class WhyNotQuestion:
    """A why-not question over an initial query.

    Parameters
    ----------
    query:
        The initial spatial keyword top-k query the user issued.
    missing:
        Object ids the user expected in the result.  Must be non-empty;
        validation that the ids exist and are actually missing happens
        in the engine, which has access to the dataset.
    lam:
        The ``λ`` of the penalty model (Eqn 4): the user's preference
        for modifying ``k`` versus modifying the keywords.  ``λ = 1``
        charges only the ``k``-enlargement, ``λ = 0`` only keyword
        edits; both endpoints are legal (the paper sweeps 0.1–0.9).
    """

    query: SpatialKeywordQuery
    missing: Tuple[int, ...]
    lam: float = 0.5

    def __post_init__(self) -> None:
        missing = tuple(dict.fromkeys(self.missing))  # dedupe, keep order
        object.__setattr__(self, "missing", missing)
        if not missing:
            raise InvalidQueryError("a why-not question needs at least one missing object")
        if not 0.0 <= self.lam <= 1.0:
            raise InvalidParameterError(f"lambda must lie in [0, 1], got {self.lam}")
