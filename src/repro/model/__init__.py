"""Data model: geometry, objects, queries, similarity, scoring, oracle."""

from .geometry import Point, Rect, bounding_rect, euclidean, space_diagonal
from .numeric import approx_eq, approx_ge, approx_le, approx_zero
from .objects import Dataset, SpatialObject
from .oracle import Oracle
from .query import SpatialKeywordQuery, WhyNotQuestion
from .scoring import Scorer
from .similarity import (
    COSINE,
    DICE,
    JACCARD,
    CosineSetSimilarity,
    DiceSimilarity,
    JaccardSimilarity,
    SimilarityModel,
    get_model,
)

__all__ = [
    "Point",
    "Rect",
    "bounding_rect",
    "euclidean",
    "space_diagonal",
    "approx_eq",
    "approx_ge",
    "approx_le",
    "approx_zero",
    "Dataset",
    "SpatialObject",
    "Oracle",
    "SpatialKeywordQuery",
    "WhyNotQuestion",
    "Scorer",
    "SimilarityModel",
    "JaccardSimilarity",
    "DiceSimilarity",
    "CosineSetSimilarity",
    "JACCARD",
    "DICE",
    "COSINE",
    "get_model",
]
