"""Planar geometry primitives used across the library.

The paper's data model (Section III-A) is two-dimensional: every object
has a point location, queries have a point location, and the R-tree
family of indexes aggregates points into minimum bounding rectangles
(MBRs).  Spatial distance in the ranking function (Eqn 1) is the
Euclidean distance normalised by the maximum possible distance between
two points in the dataset, so this module also provides the diagonal
helper used for that normalisation.

The classes here are deliberately small and allocation-light: scoring a
candidate keyword set visits thousands of points and rectangles, and
the hot paths call :func:`euclidean` and :meth:`Rect.min_dist`
millions of times in a benchmark run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Point",
    "Rect",
    "euclidean",
    "bounding_rect",
    "space_diagonal",
]


Point = Tuple[float, float]
"""A point is a plain ``(x, y)`` tuple.

Using a bare tuple rather than a class keeps object ranking cheap: the
top-k search scores every popped entry and tuple unpacking is the
fastest structure CPython offers for a pair of floats.
"""


def euclidean(a: Point, b: Point) -> float:
    """Return the Euclidean distance between two points.

    Deliberately ``sqrt(dx² + dy²)`` rather than ``math.hypot``: every
    step is a single correctly-rounded IEEE-754 operation, so numpy
    reproduces the result bit for bit (``np.sqrt(dx*dx + dy*dy)``) and
    the vectorized scoring kernels stay exactly equal to this scalar
    path.  ``math.hypot``'s extra guarantee is overflow/underflow
    protection for extreme magnitudes, which bounded dataset
    coordinates never approach — while its internal algorithm differs
    from ``np.hypot`` by one ulp on ~0.6% of operand pairs, which would
    break scalar↔vectorized parity.
    """
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.sqrt(dx * dx + dy * dy)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned minimum bounding rectangle.

    Instances are immutable; index construction builds new rectangles
    with :meth:`union` / :func:`bounding_rect` instead of mutating.
    Degenerate (point) rectangles are allowed and are exactly how leaf
    entries store object locations.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"malformed rectangle: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_point(cls, point: Point) -> "Rect":
        """Build the degenerate rectangle covering a single point."""
        x, y = point
        return cls(x, y, x, y)

    @property
    def center(self) -> Point:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def area(self) -> float:
        return self.width * self.height

    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def contains_point(self, point: Point) -> bool:
        x, y = point
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle enclosing both operands."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def min_dist(self, point: Point) -> float:
        """Minimum distance from ``point`` to this rectangle.

        This is ``MinDist(N, q)`` in Theorems 1 and 2: zero when the
        point lies inside the rectangle, otherwise the distance to the
        nearest edge or corner.
        """
        x, y = point
        dx = 0.0
        if x < self.min_x:
            dx = self.min_x - x
        elif x > self.max_x:
            dx = x - self.max_x
        dy = 0.0
        if y < self.min_y:
            dy = self.min_y - y
        elif y > self.max_y:
            dy = y - self.max_y
        # Exact zero tests are intentional: dx/dy are either the 0.0
        # assigned above or a positive difference — never rounding noise.
        if dx == 0.0:  # lint: exact-float
            return dy
        if dy == 0.0:  # lint: exact-float
            return dx
        return math.hypot(dx, dy)

    def max_dist(self, point: Point) -> float:
        """Maximum distance from ``point`` to any point in this rectangle.

        Used by the MinDom estimation: an object inside the node is at
        most this far from the query, so a textual similarity above the
        Theorem-2-style threshold derived from ``max_dist`` guarantees
        domination regardless of where in the node the object sits.
        """
        x, y = point
        dx = max(abs(x - self.min_x), abs(x - self.max_x))
        dy = max(abs(y - self.min_y), abs(y - self.max_y))
        return math.hypot(dx, dy)

    def corners(self) -> Iterator[Point]:
        yield (self.min_x, self.min_y)
        yield (self.min_x, self.max_y)
        yield (self.max_x, self.min_y)
        yield (self.max_x, self.max_y)


def bounding_rect(rects: Iterable[Rect]) -> Rect:
    """Return the MBR of a non-empty iterable of rectangles."""
    iterator = iter(rects)
    try:
        acc = next(iterator)
    except StopIteration:
        raise ValueError("bounding_rect() requires at least one rectangle") from None
    for rect in iterator:
        acc = acc.union(rect)
    return acc


def space_diagonal(points: Sequence[Point]) -> float:
    """Diagonal length of the bounding box of ``points``.

    The ranking function normalises spatial distance "by the maximum
    possible distance between two points in D" (Section III-A); the
    bounding-box diagonal is that maximum.  Returns 1.0 for degenerate
    inputs (zero or one distinct location) so callers never divide by
    zero.
    """
    if not points:
        return 1.0
    min_x = min(p[0] for p in points)
    max_x = max(p[0] for p in points)
    min_y = min(p[1] for p in points)
    max_y = max(p[1] for p in points)
    diagonal = math.hypot(max_x - min_x, max_y - min_y)
    return diagonal if diagonal > 0.0 else 1.0
