"""The KcR-tree (Section V-A).

An R-tree whose non-leaf entries point at a **keyword-count map**
(``kcm``) of the child node: for every keyword appearing anywhere in
the child's subtree, the number of objects in that subtree containing
it.  Each node additionally stores ``cnt``, the subtree cardinality.

The count map supports the bound-and-prune algorithm's
``MaxDom``/``MinDom`` estimation (Algorithm 2, Theorems 2–3) in
:mod:`repro.core.bounds`, and a coarse score upper bound used for the
initial rank determination in Algorithm 4 — an object's Jaccard
similarity to ``S`` can never exceed ``|kcm ∩ S| / |S|`` because the
union with ``S`` has at least ``|S|`` terms.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from ..errors import IndexStructureError
from ..model.query import SpatialKeywordQuery
from ..storage.layout import keyword_count_map_bytes
from .entries import ChildEntry
from .rtree import RTreeBase, TextSummary

__all__ = ["KcRTree"]

KeywordSet = FrozenSet[int]
KcMap = Dict[int, int]


class KcRTree(RTreeBase):
    """R-tree whose nodes carry ``(cnt, keyword-count map)`` payloads."""

    def _summary_payload(self, summary: TextSummary):
        kcm: KcMap = dict(summary.counts)
        return (summary.cnt, kcm), keyword_count_map_bytes(len(kcm))

    def _augment_payload(self, payload, doc):
        cnt, kcm = payload
        new_kcm = dict(kcm)
        for term in doc:
            new_kcm[term] = new_kcm.get(term, 0) + 1
        return (cnt + 1, new_kcm), keyword_count_map_bytes(len(new_kcm))

    def _merge_payloads(self, payloads):
        total = 0
        merged: KcMap = {}
        for cnt, kcm in payloads:
            total += cnt
            for term, count in kcm.items():
                merged[term] = merged.get(term, 0) + count
        return (total, merged), keyword_count_map_bytes(len(merged))

    def fetch_kcm(self, aux_record: int) -> Tuple[int, KcMap]:
        """Load ``(cnt, kcm)`` for a node, I/O-accounted."""
        payload = self.buffer.fetch(aux_record)
        if not (isinstance(payload, tuple) and len(payload) == 2):
            raise IndexStructureError(
                f"record {aux_record} is not a KcR-tree count map"
            )
        return payload

    def entry_score_bound(
        self,
        entry: ChildEntry,
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> float:
        """Admissible ``ST`` upper bound for any object under ``entry``.

        Jaccard-specific: ``TSim <= |kcm-keys ∩ S| / |S|`` since the
        numerator cannot exceed the keywords present in the subtree and
        the union in the denominator contains all of ``S``.
        """
        cnt, kcm = self.fetch_kcm(entry.aux_record)
        min_dist = entry.rect.min_dist(query.loc) / self.dataset.diagonal
        if min_dist > 1.0:
            min_dist = 1.0
        spatial = 1.0 - min_dist
        if keywords:
            overlap = sum(1 for t in keywords if t in kcm)
            textual = overlap / len(keywords)
        else:
            textual = 0.0
        return query.alpha * spatial + (1.0 - query.alpha) * textual
