"""The SetR-tree (Section IV-B).

A variant of the IR-tree: each non-leaf entry points at the union and
the intersection of the keyword sets of all objects in the child's
subtree.  Theorem 1 turns the pair into an upper bound on the ranking
score of any object below the node:

``ST(o, q) <= α·(1 − MinDist(q.loc, N.mbr)) + (1 − α)·|N∪ ∩ q.doc| / |N∩ ∪ q.doc|``

The union and intersection ship as one pager record ("stored
sequentially on disk to reduce the number of disk seeks"), so reading a
node's textual summary costs the record's page span once.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from ..errors import IndexStructureError
from ..model.query import SpatialKeywordQuery
from ..model.similarity import JACCARD, SimilarityModel
from ..storage.layout import set_pair_bytes
from .entries import ChildEntry
from .rtree import RTreeBase, TextSummary

__all__ = ["SetRTree"]

KeywordSet = FrozenSet[int]


class SetRTree(RTreeBase):
    """R-tree whose nodes carry (union, intersection) keyword sets."""

    similarity_model: SimilarityModel = JACCARD

    def _summary_payload(self, summary: TextSummary):
        union = summary.union
        intersection = summary.intersection
        return (union, intersection), set_pair_bytes(
            len(union), len(intersection)
        )

    def _augment_payload(self, payload, doc):
        union, intersection = payload
        new_union = union | doc
        new_intersection = intersection & doc
        return (new_union, new_intersection), set_pair_bytes(
            len(new_union), len(new_intersection)
        )

    def _merge_payloads(self, payloads):
        union = frozenset().union(*(p[0] for p in payloads))
        intersection = frozenset.intersection(*(p[1] for p in payloads))
        return (union, intersection), set_pair_bytes(
            len(union), len(intersection)
        )

    def fetch_set_pair(self, aux_record: int) -> Tuple[KeywordSet, KeywordSet]:
        """Load a node's (union, intersection) pair, I/O-accounted."""
        payload = self.buffer.fetch(aux_record)
        if not (isinstance(payload, tuple) and len(payload) == 2):
            raise IndexStructureError(
                f"record {aux_record} is not a SetR-tree set pair"
            )
        return payload

    def entry_score_bound(
        self,
        entry: ChildEntry,
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> float:
        """Theorem 1 upper bound on ``ST`` for any object under ``entry``.

        ``keywords`` overrides the query's own keyword set so why-not
        candidate sets can be bounded against the same index without
        materialising query objects.
        """
        union, intersection = self.fetch_set_pair(entry.aux_record)
        min_dist = entry.rect.min_dist(query.loc) / self.dataset.diagonal
        if min_dist > 1.0:
            min_dist = 1.0
        spatial = 1.0 - min_dist
        textual = self.similarity_model.node_upper_bound(
            union, intersection, keywords
        )
        return query.alpha * spatial + (1.0 - query.alpha) * textual
