"""Disk-resident R-tree base with STR bulk loading.

The SetR-tree (Section IV-B) and the KcR-tree (Section V-A) share
everything except the textual summary attached to each node.  This
module owns the shared machinery:

* Sort-Tile-Recursive (STR) bulk loading with a configurable node
  capacity (the paper uses 100);
* the bottom-up :class:`TextSummary` aggregation from which both
  subclasses derive their payloads — the keyword-count map *is* the
  general summary, the union is its key set, and the intersection is
  the keys whose count equals the subtree cardinality;
* pager/buffer-pool plumbing and the node-fetch accounting.

Subclasses implement one hook, :meth:`RTreeBase._allocate_summary`,
which serialises a node's summary into a pager record and returns the
record id stored in the parent's entry.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import IndexStructureError, StorageError
from ..model.geometry import Rect, bounding_rect
from ..model.objects import Dataset, SpatialObject
from ..storage.buffer_pool import DEFAULT_BUFFER_BYTES, BufferPool
from ..storage.faults import FaultInjector
from ..storage.layout import keyword_set_bytes, node_bytes, packed_leaf_bytes
from ..storage.packing import PackedWriter, SlotRef, fetch_slot
from ..storage.pager import PAGE_SIZE
from ..storage.stats import IOStatistics
from .entries import ChildEntry, Node, ObjectEntry

if TYPE_CHECKING:  # import cycle: repro.core.* imports repro.index.*
    from ..core.vectorized import PackedLeaf, VocabularyIndex

__all__ = ["TextSummary", "RTreeBase", "DEFAULT_CAPACITY"]


def _quadratic_split(entries, rect_of, min_fill):
    """Guttman's quadratic split: seed with the pair wasting the most
    area together, then assign each remaining entry to the group whose
    MBR it enlarges least, forcing assignment once a group must absorb
    everything left to reach ``min_fill``."""
    best_pair = (0, 1)
    worst_waste = -math.inf
    for i in range(len(entries)):
        rect_i = rect_of(entries[i])
        for j in range(i + 1, len(entries)):
            rect_j = rect_of(entries[j])
            waste = rect_i.union(rect_j).area() - rect_i.area() - rect_j.area()
            if waste > worst_waste:
                worst_waste = waste
                best_pair = (i, j)
    seed_a, seed_b = best_pair
    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    rect_a = rect_of(entries[seed_a])
    rect_b = rect_of(entries[seed_b])
    remaining = [
        e for index, e in enumerate(entries) if index not in (seed_a, seed_b)
    ]
    while remaining:
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(remaining)
            break
        entry = remaining.pop()
        rect = rect_of(entry)
        growth_a = rect_a.union(rect).area() - rect_a.area()
        growth_b = rect_b.union(rect).area() - rect_b.area()
        if growth_a < growth_b or (
            growth_a == growth_b and len(group_a) <= len(group_b)
        ):
            group_a.append(entry)
            rect_a = rect_a.union(rect)
        else:
            group_b.append(entry)
            rect_b = rect_b.union(rect)
    return group_a, group_b

DEFAULT_CAPACITY = 100
"""Node capacity used throughout the paper's experiments."""


class TextSummary:
    """Bottom-up textual aggregate of a subtree.

    Holds the keyword-count multiset (``t -> number of objects in the
    subtree containing t``) and the subtree cardinality.  From it:

    * the SetR-tree union set is ``counts.keys()``;
    * the SetR-tree intersection set is ``{t : counts[t] == cnt}``;
    * the KcR-tree payload is ``(cnt, counts)`` verbatim.
    """

    __slots__ = ("counts", "cnt")

    def __init__(self, counts: Optional[Counter] = None, cnt: int = 0) -> None:
        self.counts: Counter = counts if counts is not None else Counter()
        self.cnt = cnt

    @classmethod
    def of_object(cls, obj: SpatialObject) -> "TextSummary":
        return cls(Counter(obj.doc), 1)

    @classmethod
    def merged(cls, summaries: Iterable["TextSummary"]) -> "TextSummary":
        total = Counter()
        cnt = 0
        for summary in summaries:
            total.update(summary.counts)
            cnt += summary.cnt
        return cls(total, cnt)

    @property
    def union(self) -> FrozenSet[int]:
        return frozenset(self.counts)

    @property
    def intersection(self) -> FrozenSet[int]:
        return frozenset(t for t, c in self.counts.items() if c == self.cnt)


class RTreeBase:
    """Shared construction and access plumbing for both hybrid indexes.

    Parameters
    ----------
    dataset:
        The objects to index.  Must be non-empty.
    capacity:
        Maximum entries per node (fanout); the paper uses 100.
    page_size, buffer_bytes:
        Storage-substrate knobs; defaults match the paper (4 KB / 4 MB).
    stats:
        Optional shared :class:`IOStatistics`; a fresh one is created
        when omitted.
    faults:
        Optional seeded :class:`~repro.storage.faults.FaultInjector`
        attached to this tree's pager; ``None`` disables injection.
    """

    def __init__(
        self,
        dataset: Dataset,
        capacity: int = DEFAULT_CAPACITY,
        *,
        page_size: int = PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: Optional[IOStatistics] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if len(dataset) == 0:
            raise IndexStructureError("cannot build an index over an empty dataset")
        self._init_state(
            dataset,
            capacity,
            page_size=page_size,
            buffer_bytes=buffer_bytes,
            stats=stats,
            faults=faults,
        )
        self._build()

    def _init_state(
        self,
        dataset: Dataset,
        capacity: int,
        *,
        page_size: int = PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stats: Optional[IOStatistics] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        """Initialise storage and bookkeeping without bulk loading.

        Shared by the constructor and by index persistence, which
        rebuilds the node records from a saved structure instead of
        running STR.
        """
        if capacity < 2:
            raise IndexStructureError(f"capacity must be at least 2, got {capacity}")
        self.dataset = dataset
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStatistics()
        self.buffer = BufferPool.create(
            page_size=page_size,
            capacity_bytes=buffer_bytes,
            stats=self.stats,
            faults=faults,
        )
        self.pager = self.buffer.pager  # storage-internal; I/O goes via buffer
        self.root_id: int = -1
        self.root_rect: Optional[Rect] = None
        self.root_summary_record: int = -1
        self.height = 0
        self.node_count = 0
        # Deterministic keyword -> bit-position interning for the packed
        # columnar leaf blocks; extended in place by dynamic inserts.
        from ..core.vectorized import VocabularyIndex  # lazy: import cycle

        self.vocab: "VocabularyIndex" = VocabularyIndex.from_dataset(dataset)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _allocate_summary(self, summary: TextSummary) -> int:
        """Serialise a node summary into a pager record; return its id."""
        payload, nbytes = self._summary_payload(summary)
        return self.buffer.allocate(payload, nbytes)

    def _summary_payload(self, summary: TextSummary) -> Tuple[Any, int]:
        """Serialise a bottom-up summary into ``(payload, nbytes)``."""
        raise NotImplementedError

    def _augment_payload(self, payload: Any, doc: FrozenSet[int]) -> Tuple[Any, int]:
        """Add one object's document to an existing summary payload."""
        raise NotImplementedError

    def _merge_payloads(self, payloads: Sequence[Any]) -> Tuple[Any, int]:
        """Merge sibling summary payloads (splits and root growth)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # construction (STR bulk load)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        # Leaf level: items are the objects themselves; their keyword
        # sets are packed into shared pages per leaf node (the paper's
        # sequential on-disk keyword payload layout).
        leaf_items: List[Tuple[Rect, SpatialObject, TextSummary]] = [
            (Rect.from_point(obj.loc), obj, TextSummary.of_object(obj))
            for obj in self.dataset
        ]
        doc_writer = PackedWriter(self.buffer)
        level = 0
        items: List[Tuple[Rect, Any, TextSummary]] = leaf_items
        is_leaf = True
        while True:
            runs = self._str_runs(items)
            next_items: List[Tuple[Rect, Any, TextSummary]] = []
            for run in runs:
                node_info = self._build_node(run, is_leaf, level, doc_writer)
                next_items.append(node_info)
            self.height = level + 1
            if len(next_items) == 1:
                rect, child_entry, summary = next_items[0]
                self.root_id = child_entry.child_id
                self.root_rect = rect
                self.root_summary_record = child_entry.aux_record
                return
            items = next_items
            is_leaf = False
            level += 1

    def _build_node(
        self,
        run: Sequence[Tuple[Rect, Any, TextSummary]],
        is_leaf: bool,
        level: int,
        doc_writer: PackedWriter,
    ) -> Tuple[Rect, ChildEntry, TextSummary]:
        rect = bounding_rect(item[0] for item in run)
        summary = TextSummary.merged(item[2] for item in run)
        if is_leaf:
            # Pack this leaf's keyword sets together, then seal the
            # page so the next leaf starts fresh (locality per leaf).
            indexes = [
                doc_writer.add(obj.doc, keyword_set_bytes(len(obj.doc)))
                for _, obj, _ in run
            ]
            doc_writer.flush()
            entries: List[Any] = [
                ObjectEntry(
                    oid=obj.oid, loc=obj.loc, doc_record=doc_writer.ref(index)
                )
                for (_, obj, _), index in zip(run, indexes)
            ]
        else:
            entries = [item[1] for item in run]
        node = Node(
            node_id=-1, is_leaf=is_leaf, rect=rect, entries=entries, level=level
        )
        node_id = self.buffer.allocate(node, node_bytes(len(entries)))
        node.node_id = node_id
        summary_record = self._allocate_summary(summary)
        node.aux_record = summary_record
        if is_leaf:
            # Columnar mirror for the vectorized scoring kernels; built
            # unconditionally so the on-disk layout is identical whether
            # or not REPRO_VECTORIZE later reads it.
            node.packed_record = self._allocate_packed(
                [(obj.oid, obj.loc, obj.doc) for _, obj, _ in run]
            )
        self.node_count += 1
        return rect, ChildEntry(child_id=node_id, rect=rect, aux_record=summary_record), summary

    def _str_runs(
        self, items: Sequence[Tuple[Rect, Any, TextSummary]]
    ) -> List[Sequence[Tuple[Rect, Any, TextSummary]]]:
        """Sort-Tile-Recursive grouping of items into capacity-sized runs."""
        n = len(items)
        n_nodes = math.ceil(n / self.capacity)
        n_slices = math.ceil(math.sqrt(n_nodes))
        slice_size = n_slices * self.capacity
        by_x = sorted(items, key=lambda item: (item[0].center[0], item[0].center[1]))
        runs: List[Sequence[Tuple[Rect, Any, TextSummary]]] = []
        for start in range(0, n, slice_size):
            vertical_slice = sorted(
                by_x[start : start + slice_size],
                key=lambda item: (item[0].center[1], item[0].center[0]),
            )
            for run_start in range(0, len(vertical_slice), self.capacity):
                runs.append(vertical_slice[run_start : run_start + self.capacity])
        return runs

    # ------------------------------------------------------------------
    # access (all I/O-accounted)
    # ------------------------------------------------------------------
    def fetch_node(self, node_id: int) -> Node:
        """Load a node through the buffer pool (counts a node fetch)."""
        self.stats.node_fetches += 1
        node = self.buffer.fetch(node_id)
        if not isinstance(node, Node):
            raise IndexStructureError(f"record {node_id} is not a tree node")
        return node

    def fetch_doc(self, doc_record: SlotRef) -> FrozenSet[int]:
        """Load an object's keyword set through the buffer pool.

        Keyword sets are packed several-per-page, so the first fetch of
        a leaf's doc page is one I/O and its siblings are buffer hits.
        """
        doc = fetch_slot(self.buffer, doc_record)
        if not isinstance(doc, frozenset):
            raise IndexStructureError(f"record {doc_record} is not a keyword set")
        return doc

    # ------------------------------------------------------------------
    # packed columnar leaf blocks (vectorized scoring substrate)
    # ------------------------------------------------------------------
    def _allocate_packed(
        self, items: List[Tuple[int, Any, FrozenSet[int]]]
    ) -> int:
        """Build and store a leaf's packed columnar block."""
        from ..core.vectorized import PackedLeaf  # lazy: import cycle

        packed = PackedLeaf.build(items, self.vocab)
        return self.buffer.allocate(
            packed, packed_leaf_bytes(len(items), self.vocab.n_blocks)
        )

    def _repack_leaf(self, node: Node) -> None:
        """Rebuild a mutated leaf's packed block from its entries.

        Documents are re-read through the buffer pool (accounted, fault
        surface exercised) — the same way the summary recompute reads
        them — so the storage-operation sequence stays identical whether
        the vectorized path is on or off.
        """
        from ..core.vectorized import PackedLeaf  # lazy: import cycle

        if not node.entries:
            return
        items = [
            (entry.oid, entry.loc, self.fetch_doc(entry.doc_record))
            for entry in node.object_entries
        ]
        packed = PackedLeaf.build(items, self.vocab)
        nbytes = packed_leaf_bytes(len(items), self.vocab.n_blocks)
        if node.packed_record >= 0:
            self.buffer.update(node.packed_record, packed, nbytes)
        else:
            node.packed_record = self.buffer.allocate(packed, nbytes)

    def packed_leaf(self, node: Node) -> Optional["PackedLeaf"]:
        """The leaf's packed block, or ``None`` when unavailable.

        Read with :meth:`BufferPool.peek` — the block mirrors data whose
        I/O the scalar path already charges per entry (locations live in
        the node record, keyword sets in the packed doc pages), so
        charging it again would double-count; the caller issues the
        per-entry doc fetches itself.  A missing or corrupt block (e.g.
        rotted by an injected fault) degrades to ``None`` and the caller
        falls back to the bit-identical scalar loop for this leaf.
        """
        from ..core.vectorized import PackedLeaf  # lazy: import cycle

        if node.packed_record < 0:
            return None
        try:
            payload = self.buffer.peek(node.packed_record)
        except StorageError:
            return None
        if not isinstance(payload, PackedLeaf):
            return None
        return payload

    def resize_buffer(self, capacity_pages: int) -> None:
        """Re-size the buffer pool (in pages) and cold-start it.

        Experiments use this to keep the paper's buffer-pressure ratio
        on scaled-down datasets: a 4 MB buffer that dwarfs a 4,000
        object index would hide all I/O differences.
        """
        if capacity_pages <= 0:
            raise IndexStructureError(
                f"buffer capacity must be positive, got {capacity_pages}"
            )
        self.buffer.capacity_pages = capacity_pages
        self.buffer.clear()

    def root(self) -> Node:
        if self.root_id < 0:
            raise IndexStructureError("index has no root (build failed?)")
        return self.fetch_node(self.root_id)

    def reset_buffer(self) -> None:
        """Cold-start the cache (between experiment repetitions)."""
        self.buffer.clear()

    @property
    def min_fill(self) -> int:
        """Guttman's ``m``: 40% of capacity, capped at half.

        Used both as the split distribution floor and the condense-tree
        underflow threshold; a floor of at least 2 (when capacity
        allows) is what lets single-child chains collapse after mass
        deletions.
        """
        return max(1, min(self.capacity // 2, math.ceil(0.4 * self.capacity)))

    # ------------------------------------------------------------------
    # dynamic insertion
    # ------------------------------------------------------------------
    def insert(self, obj: SpatialObject) -> None:
        """Insert one object into the built tree.

        Classic Guttman R-tree insertion — ChooseLeaf by minimum area
        enlargement, quadratic split on overflow, root growth — with
        the textual summaries maintained along the insertion path:
        union/count summaries grow additively and intersections can
        only shrink, so each node on the path updates in place; split
        halves recompute their summaries from their members.

        The object must already be part of ``self.dataset`` (use
        :meth:`repro.model.objects.Dataset.add` first, or go through
        ``WhyNotEngine.insert`` which does both).
        """
        if obj.oid not in self.dataset:
            raise IndexStructureError(
                f"object {obj.oid} must be added to the dataset before "
                "being inserted into the index"
            )
        self.vocab.extend(obj.doc)  # widen the bitmask vocabulary first
        writer = PackedWriter(self.buffer)
        index = writer.add(obj.doc, keyword_set_bytes(len(obj.doc)))
        writer.flush()
        entry = ObjectEntry(oid=obj.oid, loc=obj.loc, doc_record=writer.ref(index))
        self._insert_entry(entry, obj.doc)

    def _insert_entry(self, entry: ObjectEntry, doc: FrozenSet[int]) -> None:
        """Insert a pre-materialised object entry (insert + reinserts)."""
        sibling = self._insert_into(self.root_id, entry, doc)
        root = self.buffer.fetch(self.root_id)
        if sibling is None:
            self.root_rect = root.rect
            return
        # Root split: grow the tree by one level.
        old_entry = ChildEntry(
            child_id=self.root_id, rect=root.rect, aux_record=root.aux_record
        )
        entries: List[Any] = [old_entry, sibling]
        rect = old_entry.rect.union(sibling.rect)
        payload, nbytes = self._merge_payloads(
            [self.buffer.fetch(old_entry.aux_record),
             self.buffer.fetch(sibling.aux_record)]
        )
        aux_record = self.buffer.allocate(payload, nbytes)
        new_root = Node(
            node_id=-1,
            is_leaf=False,
            rect=rect,
            entries=entries,
            level=root.level + 1,
            aux_record=aux_record,
        )
        new_root.node_id = self.buffer.allocate(new_root, node_bytes(len(entries)))
        self.node_count += 1
        self.height += 1
        self.root_id = new_root.node_id
        self.root_rect = rect
        self.root_summary_record = aux_record

    def _insert_into(
        self, node_id: int, entry: ObjectEntry, doc: FrozenSet[int]
    ) -> Optional[ChildEntry]:
        """Recursive insert; returns the split sibling's entry, if any."""
        node = self.buffer.fetch(node_id)
        self._augment_summary_record(node.aux_record, doc)
        if node.is_leaf:
            node.entries.append(entry)
        else:
            index = self._choose_subtree(node, entry.loc)
            child = node.entries[index]
            sibling = self._insert_into(child.child_id, entry, doc)
            child_node = self.buffer.fetch(child.child_id)
            node.entries[index] = ChildEntry(
                child_id=child.child_id,
                rect=child_node.rect,
                aux_record=child.aux_record,
            )
            if sibling is not None:
                node.entries.append(sibling)
        node.rect = bounding_rect(self._entry_rect(node, e) for e in node.entries)
        split_entry: Optional[ChildEntry] = None
        if len(node.entries) > self.capacity:
            split_entry = self._split_node(node)  # repacks both leaf halves
        elif node.is_leaf:
            self._repack_leaf(node)
        self._write_node(node)
        return split_entry

    @staticmethod
    def _entry_rect(node: Node, entry: Any) -> Rect:
        return Rect.from_point(entry.loc) if node.is_leaf else entry.rect

    def _choose_subtree(self, node: Node, point) -> int:
        """Guttman ChooseLeaf: minimum area enlargement, ties by area."""
        target = Rect.from_point(point)
        best_index = 0
        best_key = (math.inf, math.inf)
        for index, entry in enumerate(node.entries):
            enlarged = entry.rect.union(target)
            key = (enlarged.area() - entry.rect.area(), entry.rect.area())
            if key < best_key:
                best_key = key
                best_index = index
        return best_index

    def _split_node(self, node: Node) -> ChildEntry:
        """Quadratic split; ``node`` keeps one half, returns the other."""
        rect_of = lambda e: self._entry_rect(node, e)  # noqa: E731
        group_a, group_b = _quadratic_split(node.entries, rect_of, self.min_fill)
        node.entries = group_a
        node.rect = bounding_rect(rect_of(e) for e in group_a)
        payload, nbytes = self._payload_of_entries(node)
        self.buffer.update(node.aux_record, payload, nbytes)
        if node.is_leaf:
            self._repack_leaf(node)

        sibling = Node(
            node_id=-1,
            is_leaf=node.is_leaf,
            rect=bounding_rect(rect_of(e) for e in group_b),
            entries=group_b,
            level=node.level,
        )
        sibling.node_id = self.buffer.allocate(
            sibling, node_bytes(len(group_b))
        )
        payload, nbytes = self._payload_of_entries(sibling)
        sibling.aux_record = self.buffer.allocate(payload, nbytes)
        if sibling.is_leaf:
            self._repack_leaf(sibling)
        self.node_count += 1
        return ChildEntry(
            child_id=sibling.node_id, rect=sibling.rect, aux_record=sibling.aux_record
        )

    def _payload_of_entries(self, node: Node) -> Tuple[Any, int]:
        """Recompute a node's summary payload from its members."""
        if node.is_leaf:
            summary = TextSummary.merged(
                TextSummary(Counter(self.fetch_doc(e.doc_record)), 1)
                for e in node.entries
            )
            return self._summary_payload(summary)
        return self._merge_payloads(
            [self.buffer.fetch(e.aux_record) for e in node.entries]
        )

    # ------------------------------------------------------------------
    # dynamic deletion
    # ------------------------------------------------------------------
    def delete(self, obj: SpatialObject) -> None:
        """Remove one object from the tree (Guttman delete).

        FindLeaf locates the entry by containment on the object's
        point; CondenseTree removes underflowing nodes (below 40% of
        capacity) and reinserts their objects; a single-child root is
        collapsed.  Textual summaries cannot be decremented (unions and
        intersections are not invertible), so every node on the
        deletion path recomputes its summary from its members.

        Deleting the last indexed object is refused — an empty R-tree
        has no valid MBR and the library's datasets are non-empty by
        contract.  Call with the object still present in the dataset;
        remove it from the dataset afterwards (or use
        ``WhyNotEngine.remove`` which orders both).
        """
        root = self.buffer.fetch(self.root_id)
        if root.is_leaf and len(root.entries) <= 1:
            raise IndexStructureError(
                "refusing to delete the last indexed object"
            )
        orphans: List[Tuple[ObjectEntry, FrozenSet[int]]] = []
        if not self._delete_rec(self.root_id, obj, orphans):
            raise IndexStructureError(f"object {obj.oid} is not indexed")
        # Collapse a single-child branch root (tree shrinks).
        root = self.buffer.fetch(self.root_id)
        while not root.is_leaf and len(root.entries) == 1:
            only = root.entries[0]
            self.buffer.free(root.node_id)
            self.buffer.free(root.aux_record)
            self.node_count -= 1
            self.height -= 1
            self.root_id = only.child_id
            self.root_summary_record = only.aux_record
            root = self.buffer.fetch(self.root_id)
        self.root_rect = root.rect
        for entry, doc in orphans:
            self._insert_entry(entry, doc)

    def _delete_rec(
        self,
        node_id: int,
        obj: SpatialObject,
        orphans: List[Tuple[ObjectEntry, FrozenSet[int]]],
    ) -> bool:
        node = self.buffer.fetch(node_id)
        if node.is_leaf:
            for index, entry in enumerate(node.entries):
                if entry.oid == obj.oid:
                    node.entries.pop(index)
                    self._refresh_node(node)
                    return True
            return False
        for index, child_entry in enumerate(node.entries):
            if not child_entry.rect.contains_point(obj.loc):
                continue
            if not self._delete_rec(child_entry.child_id, obj, orphans):
                continue
            child_node = self.buffer.fetch(child_entry.child_id)
            if len(child_node.entries) < self.min_fill:
                node.entries.pop(index)
                self._evict_subtree(child_node, orphans)
            else:
                node.entries[index] = ChildEntry(
                    child_id=child_entry.child_id,
                    rect=child_node.rect,
                    aux_record=child_entry.aux_record,
                )
            self._refresh_node(node)
            return True
        return False

    def _evict_subtree(
        self,
        node: Node,
        orphans: List[Tuple[ObjectEntry, FrozenSet[int]]],
    ) -> None:
        """Collect a condensed-away subtree's objects for reinsertion
        and release its node/summary records."""
        if node.is_leaf:
            for entry in node.entries:
                orphans.append((entry, self.fetch_doc(entry.doc_record)))
        else:
            for entry in node.entries:
                child = self.buffer.fetch(entry.child_id)
                self._evict_subtree(child, orphans)
        self.buffer.free(node.node_id)
        self.buffer.free(node.aux_record)
        if node.packed_record >= 0:
            self.buffer.free(node.packed_record)
        self.node_count -= 1

    def _refresh_node(self, node: Node) -> None:
        """Recompute a node's MBR and summary after member changes."""
        if node.entries:
            node.rect = bounding_rect(
                self._entry_rect(node, e) for e in node.entries
            )
            payload, nbytes = self._payload_of_entries(node)
            self.buffer.update(node.aux_record, payload, nbytes)
            if node.is_leaf:
                self._repack_leaf(node)
        self._write_node(node)

    def _augment_summary_record(self, aux_record: int, doc: FrozenSet[int]) -> None:
        payload = self.buffer.fetch(aux_record)
        new_payload, nbytes = self._augment_payload(payload, doc)
        self.buffer.update(aux_record, new_payload, nbytes)

    def _write_node(self, node: Node) -> None:
        self.buffer.update(node.node_id, node, node_bytes(len(node.entries)))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Walk the whole tree checking structural invariants.

        Raises :class:`IndexStructureError` on the first violation:
        child MBRs must be contained in the parent entry's MBR, leaf
        levels must be 0, every object must appear exactly once.
        """
        seen_objects: List[int] = []
        stack: List[Tuple[int, Optional[Rect]]] = [(self.root_id, None)]
        while stack:
            node_id, parent_rect = stack.pop()
            node = self.buffer.fetch(node_id)
            actual = bounding_rect(
                Rect.from_point(e.loc) if node.is_leaf else e.rect
                for e in node.entries
            )
            if actual != node.rect:
                raise IndexStructureError(f"node {node_id}: stored MBR != entry MBR")
            if parent_rect is not None and not parent_rect.contains_rect(node.rect):
                raise IndexStructureError(f"node {node_id}: escapes parent MBR")
            if node.is_leaf:
                if node.level != 0:
                    raise IndexStructureError(f"leaf {node_id} at level {node.level}")
                seen_objects.extend(e.oid for e in node.entries)
            else:
                for entry in node.entries:
                    stack.append((entry.child_id, entry.rect))
        if sorted(seen_objects) != sorted(o.oid for o in self.dataset):
            raise IndexStructureError("tree does not index the dataset exactly once")
