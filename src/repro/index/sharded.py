"""Sharded spatial index: STR tiles, per-shard trees, merged execution.

The monolithic SetR/KcR trees bulk-load the whole dataset in memory and
serve every query from one structure.  This module partitions the data
across ``N`` spatially coherent shards (STR tiles planned from a
reservoir sample), each shard owning its own pager / buffer pool /
fault-injector fork and its own pair of trees.  Three properties are
contractual:

* **Bit-identical results.**  Every object lives in exactly one shard
  and every shard normalises distances with the *global* diagonal, so
  per-object scores are the same floats as in the unsharded engine.
  Top-k merges per-shard results under the usual ``(-score, oid)``
  order; rank determination sums per-shard dominator counts (each shard
  runs the same early-stop cap, so the global abort verdict matches the
  single tree's — see :meth:`ShardedSearcher.rank_of_missing`).

* **Deterministic I/O ledger.**  Each shard's trees write into the
  shard's own :class:`~repro.storage.stats.IOStatistics` ledger; the
  per-query total is the sum over shards.  Both execution modes issue
  the identical per-shard fetch sequence — ``simulate`` runs shards
  in-process in tile order, ``process`` runs each shard in a forked
  worker and ships the ledger delta back with every reply — so the
  summed ledger is mode-invariant.

* **Failure containment.**  An unrecoverable storage fault inside one
  shard marks only that shard down; its partition is served by an
  index-free scan with the same score arithmetic (exact answers,
  ``degraded``-flagged) while every other shard keeps its tree and its
  buffer state.

Parallelism follows :mod:`repro.core.parallel`'s two-mode convention:
the default ``simulate`` mode measures per-shard busy time and reports
the fan-out's makespan by accumulating ``Σ busy − max busy`` into a
discount the engine subtracts from the answer's elapsed time; the
``process`` mode runs real forked workers (shards are read-only after
load, so workers share no mutable state — the flow checker's
worker-read-only contract covers :func:`_worker_execute`).
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
import time
from bisect import bisect_right
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..errors import (
    IndexStructureError,
    InvalidParameterError,
    PersistenceError,
    StorageError,
)
from ..model.geometry import Point, Rect
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery
from ..model.similarity import JACCARD, SimilarityModel
from ..storage.faults import FaultInjector
from ..storage.stats import IOSnapshot, IOStatistics
from .entries import ChildEntry
from .kcr_tree import KcRTree
from .persistence import load_index, save_index
from .rtree import DEFAULT_CAPACITY, RTreeBase
from .search import RankResult, TopKSearcher
from .setr_tree import SetRTree

__all__ = [
    "LoadStats",
    "Shard",
    "ShardedIndex",
    "ShardedSearcher",
    "ShardedTreeView",
    "TilePlan",
    "load_sharded",
    "save_sharded",
]

KeywordSet = FrozenSet[int]

KINDS = ("setr", "kcr")

DEFAULT_SAMPLE_SIZE = 2048
DEFAULT_FLUSH_EVERY = 512

MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 2


# ----------------------------------------------------------------------
# tile planning
# ----------------------------------------------------------------------
class TilePlan:
    """STR tiling of the plane: x-slices, then y-tiles within a slice.

    ``x_cuts`` are the slice boundaries (``bisect_right`` semantics: a
    point with ``x`` equal to a cut routes to the *right* slice) and
    ``y_cuts[s]`` the boundaries within slice ``s``, so routing is a
    pair of binary searches — deterministic, order-free, and cheap
    enough to re-derive shard membership from a manifest.
    """

    def __init__(
        self,
        x_cuts: Sequence[float],
        y_cuts: Sequence[Sequence[float]],
    ) -> None:
        if len(y_cuts) != len(x_cuts) + 1:
            raise InvalidParameterError(
                f"need {len(x_cuts) + 1} y-cut rows for {len(x_cuts)} x-cuts, "
                f"got {len(y_cuts)}"
            )
        self.x_cuts: Tuple[float, ...] = tuple(float(c) for c in x_cuts)
        self.y_cuts: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(float(c) for c in row) for row in y_cuts
        )
        offsets: List[int] = []
        total = 0
        for row in self.y_cuts:
            offsets.append(total)
            total += len(row) + 1
        self._offsets = tuple(offsets)
        self.n_tiles = total

    @property
    def n_slices(self) -> int:
        return len(self.y_cuts)

    def tile_of(self, loc: Point) -> int:
        """The tile id owning ``loc`` (two binary searches)."""
        s = bisect_right(self.x_cuts, loc[0])
        return self._offsets[s] + bisect_right(self.y_cuts[s], loc[1])

    def tile_slot(self, tid: int) -> Tuple[int, int]:
        """Decompose a tile id into ``(slice, index-within-slice)``."""
        if not 0 <= tid < self.n_tiles:
            raise InvalidParameterError(f"tile id {tid} out of range")
        s = bisect_right(self._offsets, tid) - 1
        return s, tid - self._offsets[s]

    def tile_rect(self, tid: int, bounds: Rect) -> Rect:
        """The tile's rectangle, outer edges taken from ``bounds``."""
        s, j = self.tile_slot(tid)
        x_lo = bounds.min_x if s == 0 else self.x_cuts[s - 1]
        x_hi = bounds.max_x if s == self.n_slices - 1 else self.x_cuts[s]
        row = self.y_cuts[s]
        y_lo = bounds.min_y if j == 0 else row[j - 1]
        y_hi = bounds.max_y if j == len(row) else row[j]
        return Rect(
            min(x_lo, x_hi), min(y_lo, y_hi), max(x_lo, x_hi), max(y_lo, y_hi)
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "x_cuts": list(self.x_cuts),
            "y_cuts": [list(row) for row in self.y_cuts],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TilePlan":
        return cls(payload["x_cuts"], payload["y_cuts"])

    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Sequence[Point], n_tiles: int) -> "TilePlan":
        """Plan ``n_tiles`` STR tiles from a point sample.

        Slices take ``ceil(sqrt(n_tiles))`` x-quantile bands with tile
        counts balanced across them, then y-quantiles within each band
        — the classic Sort-Tile-Recursive sweep, run on the sample
        instead of the full dataset so one bounded pass suffices.
        """
        if n_tiles <= 0:
            raise InvalidParameterError(
                f"need at least one tile, got {n_tiles}"
            )
        if n_tiles == 1 or not points:
            return cls((), tuple(() for _ in range(1)))
        n_slices = min(n_tiles, int(math.ceil(math.sqrt(n_tiles))))
        base, extra = divmod(n_tiles, n_slices)
        tiles_per_slice = [
            base + (1 if s < extra else 0) for s in range(n_slices)
        ]
        pts = sorted((float(p[0]), float(p[1])) for p in points)
        total = len(pts)
        x_cuts: List[float] = []
        slice_points: List[List[Tuple[float, float]]] = []
        start = 0
        quota = 0
        for s in range(n_slices):
            quota += tiles_per_slice[s]
            if s == n_slices - 1:
                end = total
            else:
                end = max(start, int(round(total * quota / n_tiles)))
                end = min(end, total)
            slice_points.append(pts[start:end])
            if s < n_slices - 1:
                left = pts[end - 1][0] if end > start else (
                    x_cuts[-1] if x_cuts else pts[0][0]
                )
                right = pts[end][0] if end < total else left
                x_cuts.append((left + right) / 2.0)
            start = end
        y_cuts: List[Tuple[float, ...]] = []
        for s in range(n_slices):
            band = sorted(slice_points[s], key=lambda p: (p[1], p[0]))
            t = tiles_per_slice[s]
            cuts: List[float] = []
            m = len(band)
            for j in range(1, t):
                if m == 0:
                    cuts.append(cuts[-1] if cuts else 0.0)
                    continue
                e = min(max(1, int(round(m * j / t))), m - 1) if m > 1 else 0
                if m == 1:
                    cuts.append(band[0][1])
                else:
                    cuts.append((band[e - 1][1] + band[e][1]) / 2.0)
            y_cuts.append(tuple(cuts))
        return cls(tuple(x_cuts), tuple(y_cuts))


# ----------------------------------------------------------------------
# streaming STR bulk load
# ----------------------------------------------------------------------
@dataclass
class LoadStats:
    """Accounting for one sharded bulk load.

    ``peak_resident`` counts the most objects the *loader* ever held at
    once: the plan sample, the per-tile routing buffers (bounded by
    ``flush_every`` each), and the single tile being materialised.  It
    is the quantity the streaming-load test bounds by
    ``max_tile_objects + sample + n_tiles * flush_every``.
    """

    n_objects: int = 0
    sample_size: int = 0
    n_tiles: int = 0
    max_tile_objects: int = 0
    spilled_objects: int = 0
    peak_resident: int = 0
    passes: int = 0


def _plan_pass(
    stream: Iterator[SpatialObject],
    n_tiles: int,
    sample_size: int,
    seed: int,
) -> Tuple[TilePlan, int, Optional[Rect]]:
    """Pass 1: reservoir-sample locations, count, track the global MBR."""
    rng = np.random.default_rng(seed)
    reservoir: List[Point] = []
    count = 0
    min_x = min_y = math.inf
    max_x = max_y = -math.inf
    for obj in stream:
        x, y = obj.loc
        min_x = x if x < min_x else min_x
        max_x = x if x > max_x else max_x
        min_y = y if y < min_y else min_y
        max_y = y if y > max_y else max_y
        if count < sample_size:
            reservoir.append(obj.loc)
        else:
            j = int(rng.integers(0, count + 1))
            if j < sample_size:
                reservoir[j] = obj.loc
        count += 1
    bounds = None
    if count:
        bounds = Rect(min_x, min_y, max_x, max_y)
    return TilePlan.from_points(reservoir, n_tiles), count, bounds


def _spill_line(obj: SpatialObject) -> str:
    return json.dumps(
        [obj.oid, obj.loc[0], obj.loc[1], sorted(obj.doc)],
        separators=(",", ":"),
    )


def _parse_line(line: str) -> SpatialObject:
    oid, x, y, terms = json.loads(line)
    return SpatialObject(
        oid=int(oid), loc=(float(x), float(y)), doc=frozenset(terms)
    )


def load_tile_datasets(
    stream_factory: Callable[[], Iterator[SpatialObject]],
    n_tiles: int,
    *,
    name: str,
    diagonal: Optional[float] = None,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    flush_every: int = DEFAULT_FLUSH_EVERY,
    seed: int = 0,
    spill_dir: Optional[Union[str, Path]] = None,
    in_memory: bool = False,
) -> Tuple[TilePlan, List[Dataset], LoadStats, Rect]:
    """Two-pass streaming STR bulk load into per-tile datasets.

    Pass 1 reservoir-samples the stream to plan the tiles; pass 2
    routes every object to its tile's spill file with a bounded
    buffer, then materialises one tile at a time.  ``in_memory=True``
    keeps the tile buckets in RAM instead of spilling (identical plan,
    routing, and object order — the round-trip-equality contract the
    tests assert) for callers that already hold the dataset.
    """
    if sample_size <= 0 or flush_every <= 0:
        raise InvalidParameterError(
            "sample_size and flush_every must be positive"
        )
    stats = LoadStats(sample_size=0, n_tiles=n_tiles)
    plan, count, bounds = _plan_pass(
        stream_factory(), n_tiles, sample_size, seed
    )
    stats.passes += 1
    if count == 0 or bounds is None:
        raise IndexStructureError("cannot shard an empty object stream")
    stats.n_objects = count
    stats.sample_size = min(sample_size, count)
    if diagonal is None:
        diagonal = math.hypot(
            bounds.max_x - bounds.min_x, bounds.max_y - bounds.min_y
        )
        if diagonal <= 0.0:
            diagonal = 1.0

    resident_sample = stats.sample_size
    tile_counts = [0] * plan.n_tiles
    datasets: List[Dataset] = []

    if in_memory:
        buckets: List[List[SpatialObject]] = [[] for _ in range(plan.n_tiles)]
        for obj in stream_factory():
            buckets[plan.tile_of(obj.loc)].append(obj)
        stats.passes += 1
        for tid, bucket in enumerate(buckets):
            tile_counts[tid] = len(bucket)
            datasets.append(
                Dataset(bucket, diagonal=diagonal, name=f"{name}/shard-{tid}")
            )
        stats.max_tile_objects = max(tile_counts) if tile_counts else 0
        stats.peak_resident = count + resident_sample
        return plan, datasets, stats, bounds

    own_dir = spill_dir is None
    directory = Path(
        tempfile.mkdtemp(prefix="repro-shard-") if own_dir else spill_dir
    )
    directory.mkdir(parents=True, exist_ok=True)
    paths = [directory / f"tile-{tid}.jsonl" for tid in range(plan.n_tiles)]
    buffers: List[List[str]] = [[] for _ in range(plan.n_tiles)]
    handles: List[Optional[Any]] = [None] * plan.n_tiles

    def flush(tid: int) -> None:
        if not buffers[tid]:
            return
        if handles[tid] is None:
            handles[tid] = paths[tid].open("w", encoding="utf-8")
        handles[tid].write("\n".join(buffers[tid]) + "\n")
        buffers[tid].clear()

    try:
        buffered = 0
        for obj in stream_factory():
            tid = plan.tile_of(obj.loc)
            buffers[tid].append(_spill_line(obj))
            tile_counts[tid] += 1
            buffered += 1
            resident = resident_sample + buffered
            if resident > stats.peak_resident:
                stats.peak_resident = resident
            if len(buffers[tid]) >= flush_every:
                buffered -= len(buffers[tid])
                stats.spilled_objects += len(buffers[tid])
                flush(tid)
        stats.passes += 1
        for tid in range(plan.n_tiles):
            stats.spilled_objects += len(buffers[tid])
            flush(tid)
            if handles[tid] is not None:
                handles[tid].close()
                handles[tid] = None
        stats.max_tile_objects = max(tile_counts) if tile_counts else 0
        for tid in range(plan.n_tiles):
            objects: List[SpatialObject] = []
            if paths[tid].exists():
                with paths[tid].open("r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if line:
                            objects.append(_parse_line(line))
            resident = resident_sample + len(objects)
            if resident > stats.peak_resident:
                stats.peak_resident = resident
            datasets.append(
                Dataset(objects, diagonal=diagonal, name=f"{name}/shard-{tid}")
            )
    finally:
        for handle in handles:
            if handle is not None:
                handle.close()
        for path in paths:
            if path.exists():
                path.unlink()
        if own_dir:
            try:
                directory.rmdir()
            except OSError:
                pass
    return plan, datasets, stats, bounds


# ----------------------------------------------------------------------
# one shard
# ----------------------------------------------------------------------
class Shard:
    """One tile's datasets, trees, fault fork, and I/O ledger.

    The shard's two trees write into ``stats["setr"]`` /
    ``stats["kcr"]`` — the per-shard ledgers whose sum is the sharded
    engine's deterministic I/O total.  ``faults`` (when present) is the
    shard-level injector fork; each tree gets a per-kind sub-fork with
    a fresh label per rebuild, mirroring the unsharded engine.
    """

    def __init__(
        self,
        tid: int,
        rect: Rect,
        dataset: Dataset,
        *,
        capacity: int = DEFAULT_CAPACITY,
        buffer_fraction: Optional[float] = 0.25,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.tid = tid
        self.rect = rect
        self.dataset = dataset
        self.capacity = capacity
        self.buffer_fraction = buffer_fraction
        self.faults = faults
        self.stats: Dict[str, IOStatistics] = {
            "setr": IOStatistics(),
            "kcr": IOStatistics(),
        }
        self._trees: Dict[str, RTreeBase] = {}
        self._rebuilds: Dict[str, int] = {"setr": 0, "kcr": 0}

    @property
    def is_empty(self) -> bool:
        return len(self.dataset) == 0

    def _tree_faults(self, kind: str) -> Optional[FaultInjector]:
        if self.faults is None:
            return None
        generation = self._rebuilds[kind]
        label = kind if generation == 0 else f"{kind}:rebuild-{generation}"
        return self.faults.fork(label)

    def _apply_buffer_policy(self, tree: RTreeBase) -> RTreeBase:
        if self.buffer_fraction is not None:
            pages = max(32, int(tree.buffer.total_pages * self.buffer_fraction))
            tree.resize_buffer(min(pages, tree.buffer.capacity_pages or pages))
        return tree

    def ensure_tree(self, kind: str) -> RTreeBase:
        """The shard's tree of ``kind``, built on first use."""
        tree = self._trees.get(kind)
        if tree is None:
            if self.is_empty:
                raise IndexStructureError(
                    f"shard {self.tid} is empty; it has no {kind} tree"
                )
            cls = SetRTree if kind == "setr" else KcRTree
            tree = self._apply_buffer_policy(
                cls(
                    self.dataset,
                    capacity=self.capacity,
                    stats=self.stats[kind],
                    faults=self._tree_faults(kind),
                )
            )
            self._trees[kind] = tree
        return tree

    def built_tree(self, kind: str) -> RTreeBase:
        """The already-built tree (read-only paths never build)."""
        tree = self._trees.get(kind)
        if tree is None:
            raise IndexStructureError(
                f"shard {self.tid} has no built {kind} tree; warm it first"
            )
        return tree

    def has_tree(self, kind: str) -> bool:
        return kind in self._trees

    def attach_tree(self, kind: str, tree: RTreeBase) -> None:
        """Adopt a persisted tree (see :func:`load_sharded`)."""
        self._trees[kind] = self._apply_buffer_policy(tree)

    def drop_tree(self, kind: str) -> None:
        """Discard a (possibly damaged) tree; the next build gets a
        fresh fault-fork label so recovery does not replay the exact
        schedule that broke it."""
        if kind in self._trees:
            del self._trees[kind]
        self._rebuilds[kind] += 1

    def reset_buffer(self) -> None:
        for tree in self._trees.values():
            tree.reset_buffer()

    def ledger(self, kind: str) -> IOSnapshot:
        return self.stats[kind].snapshot()


# ----------------------------------------------------------------------
# execution backends (simulate in-process / forked worker)
# ----------------------------------------------------------------------
def _worker_admin(shard: Shard, state: Dict[str, Any], message: Tuple) -> Any:
    """Build/maintenance operations (not part of the read-only chain)."""
    op = message[0]
    if op == "warm":
        _, kinds, model = message
        for kind in kinds:
            tree = shard.ensure_tree(kind)
            state[("searcher", kind)] = TopKSearcher(tree, model)
        return True
    if op == "rebuild":
        _, kind, model = message
        state.pop("kcr_traversal", None)
        state.pop(("searcher", kind), None)
        shard.drop_tree(kind)
        tree = shard.ensure_tree(kind)
        state[("searcher", kind)] = TopKSearcher(tree, model)
        return True
    if op == "reset":
        shard.reset_buffer()
        return True
    raise InvalidParameterError(f"unknown shard admin op {op!r}")


def _worker_execute(shard: Shard, state: Dict[str, Any], message: Tuple) -> Any:
    """One read-only shard operation (the worker-contract entry point).

    Runs in-process in ``simulate`` mode and inside the forked worker
    in ``process`` mode — one code path, so the per-shard fetch
    sequence (and therefore the ledger) is mode-invariant.  Everything
    reachable from here must treat the shard as read-only apart from
    I/O accounting; the flow checker enforces this.
    """
    op = message[0]
    if op == "bound":
        _, kind, query, keywords = message
        tree = shard.built_tree(kind)
        entry = ChildEntry(
            child_id=tree.root_id,
            rect=tree.root_rect,
            aux_record=tree.root_summary_record,
        )
        return tree.entry_score_bound(entry, query, keywords)
    if op == "top_k":
        _, kind, query, limit, keywords = message
        searcher = state[("searcher", kind)]
        return searcher.top_k(query, k=limit, keywords=keywords)
    if op == "rank":
        _, kind, query, missing, keywords, stop_limit = message
        searcher = state[("searcher", kind)]
        return searcher.rank_of_missing(
            query, missing, keywords=keywords, stop_limit=stop_limit
        )
    if op == "kcr_init":
        from ..core.kcr_sharded import ShardTraversal  # lazy: import cycle

        _, query, missing, batch, model = message
        traversal = ShardTraversal(
            shard.built_tree("kcr"), model, query, missing, batch
        )
        state["kcr_traversal"] = traversal
        return traversal.initial_deltas(), traversal.has_more()
    if op == "kcr_step":
        _, alive = message
        traversal = state["kcr_traversal"]
        deltas = traversal.step(alive)
        return deltas, traversal.has_more()
    raise InvalidParameterError(f"unknown shard op {op!r}")


_ADMIN_OPS = ("warm", "rebuild", "reset")


def _dispatch_op(shard: Shard, state: Dict[str, Any], message: Tuple) -> Any:
    if message[0] in _ADMIN_OPS:
        return _worker_admin(shard, state, message)
    return _worker_execute(shard, state, message)


class _SimulateBackend:
    """Runs shard ops in-process, timing each as that shard's busy."""

    def __init__(self, shard: Shard) -> None:
        self.shard = shard
        self.state: Dict[str, Any] = {}

    def request(self, message: Tuple) -> Tuple[Any, float]:
        started = time.perf_counter()
        payload = _dispatch_op(self.shard, self.state, message)
        return payload, time.perf_counter() - started

    def close(self) -> None:
        self.state.clear()


def _shard_worker_main(conn: Any, shard: Shard) -> None:
    """Forked worker loop: run ops, reply (status, payload, deltas, busy).

    All tree I/O happens here; every reply carries the ledger delta of
    both kinds so the parent's shard ledgers stay the authoritative,
    mode-invariant account.
    """
    state: Dict[str, Any] = {}
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "close":
            break
        before = {kind: shard.stats[kind].snapshot() for kind in KINDS}
        # CPU time, not wall: concurrent workers on fewer cores get
        # time-sliced, and a wall-clock "busy" would count the slices
        # spent running *other* shards.  The makespan discount needs
        # the work this shard actually did.
        started = time.process_time()
        try:
            payload = _dispatch_op(shard, state, message)
            status = "ok"
        except StorageError as exc:
            status = "storage-error"
            payload = (
                type(exc).__name__,
                str(exc),
                getattr(exc, "record_id", None),
            )
        except Exception as exc:  # pragma: no cover - defensive marshalling
            status = "fatal"
            payload = repr(exc)
        busy = time.process_time() - started
        deltas = {
            kind: shard.stats[kind].snapshot() - before[kind] for kind in KINDS
        }
        conn.send((status, payload, deltas, busy))
    conn.close()


def _rebuild_storage_error(payload: Tuple) -> StorageError:
    """Reconstruct a marshalled worker-side StorageError in the parent."""
    from .. import errors as errors_module

    name, detail, record_id = payload
    cls = getattr(errors_module, name, StorageError)
    try:
        exc = cls(detail)
    except TypeError:  # record-id-first constructors
        exc = cls(record_id, detail)
    if record_id is not None and getattr(exc, "record_id", None) is None:
        exc.record_id = record_id
    return exc


class _ProcessBackend:
    """One forked worker per shard; the parent absorbs ledger deltas."""

    def __init__(self, shard: Shard) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise InvalidParameterError(
                "shard_mode='process' requires the fork start method"
            ) from exc
        self.shard = shard
        self.stats = shard.stats  # ledger alias; deltas land here
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_shard_worker_main, args=(child_conn, shard), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def submit(self, message: Tuple) -> None:
        """Write a request to the worker pipe without waiting for the
        reply — the broadcast half of a concurrent fan-out."""
        self.conn.send(message)

    def collect(self) -> Tuple[Any, float]:
        """Read one reply (blocking) and absorb its ledger deltas."""
        try:
            status, payload, deltas, busy = self.conn.recv()
        except EOFError as exc:
            raise IndexStructureError(
                f"shard {self.shard.tid} worker died mid-request"
            ) from exc
        for kind in KINDS:
            self._absorb(kind, deltas[kind])
        if status == "storage-error":
            raise _rebuild_storage_error(payload)
        if status == "fatal":
            raise IndexStructureError(
                f"shard {self.shard.tid} worker failed: {payload}"
            )
        return payload, busy

    def request(self, message: Tuple) -> Tuple[Any, float]:
        self.submit(message)
        return self.collect()

    def _absorb(self, kind: str, delta: IOSnapshot) -> None:
        self.stats[kind].page_reads += delta.page_reads
        self.stats[kind].page_writes += delta.page_writes
        self.stats[kind].buffer_hits += delta.buffer_hits
        self.stats[kind].node_fetches += delta.node_fetches
        self.stats[kind].read_retries += delta.read_retries
        self.stats[kind].write_retries += delta.write_retries
        self.stats[kind].transient_faults += delta.transient_faults
        self.stats[kind].checksum_failures += delta.checksum_failures
        self.stats[kind].lost_records += delta.lost_records
        self.stats[kind].deadline_aborts += delta.deadline_aborts

    def close(self) -> None:
        try:
            self.conn.send(("close",))
        except (BrokenPipeError, OSError):  # pragma: no cover - defensive
            pass
        self.conn.close()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5.0)


# ----------------------------------------------------------------------
# index-free per-shard fallback (failure containment)
# ----------------------------------------------------------------------
def _scan_scores(
    dataset: Dataset,
    query: SpatialKeywordQuery,
    keywords: KeywordSet,
    model: SimilarityModel,
) -> List[Tuple[float, int]]:
    """Every object's exact Eqn-1 score — the same float operations as
    :meth:`TopKSearcher._object_score`, so a down shard's scan results
    merge bit-identically with the other shards' tree results."""
    scored: List[Tuple[float, int]] = []
    for obj in dataset.objects:
        dist = dataset.normalized_distance(obj.loc, query.loc)
        textual = model.similarity(obj.doc, keywords)
        score = query.alpha * (1.0 - dist) + (1.0 - query.alpha) * textual
        scored.append((score, obj.oid))
    return scored


def _scan_top_k(
    dataset: Dataset,
    query: SpatialKeywordQuery,
    limit: int,
    keywords: KeywordSet,
    model: SimilarityModel,
) -> List[Tuple[float, int]]:
    scored = _scan_scores(dataset, query, keywords, model)
    scored.sort(key=lambda pair: (-pair[0], pair[1]))
    return scored[:limit]


def _scan_rank(
    dataset: Dataset,
    query: SpatialKeywordQuery,
    missing: Sequence[SpatialObject],
    keywords: Optional[KeywordSet],
    stop_limit: Optional[int],
    model: SimilarityModel,
) -> RankResult:
    """Index-free mirror of one shard's ``rank_of_missing``.

    A healthy shard returns its dominators in score order, capped at
    ``max(stop_limit, 1)`` when the early stop fires; sorting the scan's
    strict dominators the same way and applying the same cap makes a
    down shard's contribution bit-identical to the tree's.
    """
    doc = query.doc if keywords is None else keywords
    alpha = query.alpha
    beta = 1.0 - alpha
    threshold = min(
        alpha * (1.0 - dataset.normalized_distance(m.loc, query.loc))
        + beta * model.similarity(m.doc, doc)
        for m in missing
    )
    dominating = [
        pair for pair in _scan_scores(dataset, query, doc, model)
        if pair[0] > threshold
    ]
    dominating.sort(key=lambda pair: (-pair[0], pair[1]))
    dominators = tuple(oid for _, oid in dominating)
    if stop_limit is not None:
        cap = max(stop_limit, 1)
        if len(dominators) >= cap:
            return RankResult(
                rank=None, dominators=dominators[:cap], aborted=True
            )
    return RankResult(
        rank=len(dominators) + 1, dominators=dominators, aborted=False
    )


# ----------------------------------------------------------------------
# runtime accounting and the tree-like views
# ----------------------------------------------------------------------
class _ShardRuntime:
    """Mutable cross-query accounting for one sharded index.

    ``discount_seconds`` accumulates ``Σ busy − max busy`` per parallel
    fan-out region (the makespan-simulation convention of
    :mod:`repro.core.parallel`); the engine subtracts and resets it per
    answer.  ``down`` holds ``(tid, kind)`` pairs of quarantined shard
    trees and ``fault_events`` the storage faults that caused them.
    """

    def __init__(self) -> None:
        self.discount_seconds = 0.0
        self.fault_events: List[Any] = []
        self.down: set = set()

    def consume_discount(self) -> float:
        discount = self.discount_seconds
        self.discount_seconds = 0.0
        return discount


class _AggregateStats:
    """The summed per-shard ledgers behind a tree's ``stats`` surface.

    Only :meth:`snapshot` is offered — the algorithms' accounting reads
    snapshots and differences them; all *writes* happen in the shards'
    own ledgers.
    """

    def __init__(self, index: "ShardedIndex", kind: str) -> None:
        self.index = index
        self.kind = kind

    def snapshot(self) -> IOSnapshot:
        total: Optional[IOSnapshot] = None
        for shard in self.index.shards:
            snap = shard.ledger(self.kind)
            total = snap if total is None else total + snap
        if total is None:  # pragma: no cover - index always has shards
            raise IndexStructureError("sharded index has no shards")
        return total


class ShardedTreeView:
    """Duck-typed stand-in for one tree kind over all shards.

    Exposes exactly the surface the why-not algorithms touch on a tree
    — ``dataset``, ``stats.snapshot()`` and ``searcher_for(model)`` (the
    hook :meth:`QuestionContext.prepare` uses to obtain the sharded
    searcher) — so BS/AdvancedBS run unchanged over N shards.
    """

    def __init__(self, index: "ShardedIndex", kind: str) -> None:
        self.index = index
        self.kind = kind
        self.stats = _AggregateStats(index, kind)

    @property
    def dataset(self) -> Dataset:
        return self.index.dataset

    def searcher_for(self, model: SimilarityModel) -> "ShardedSearcher":
        return ShardedSearcher(self.index, self.kind, model)


class ShardedSearcher:
    """Fan-out/merge searcher with the single-tree result contract.

    ``top_k`` queries shards in root-bound order, skipping any shard
    whose bound falls strictly below the current k-th score (an equal
    bound must still be searched: an equal-scoring object with a
    smaller id displaces the incumbent under the global tie-break).
    ``rank_of_missing`` runs every shard under the caller's
    ``stop_limit`` and sums the capped dominator counts — the global
    abort verdict (``Σ counts ≥ max(stop_limit, 1)``) then matches the
    single tree's, which aborts exactly when the global dominator count
    reaches the cap.  Down shards are served by the exact index-free
    scan, so answers stay bit-identical while degraded.
    """

    def __init__(
        self,
        index: "ShardedIndex",
        kind: str,
        model: SimilarityModel,
    ) -> None:
        self.index = index
        self.kind = kind
        self.model = model
        self.stats = index.runtime  # busy-discount / fault accounting bag

    # -- helpers -------------------------------------------------------
    def _shards(self) -> List[Shard]:
        return [shard for shard in self.index.shards if not shard.is_empty]

    def _is_down(self, shard: Shard) -> bool:
        return (shard.tid, self.kind) in self.stats.down

    def _mark_down(self, shard: Shard, operation: str, exc: StorageError) -> None:
        self.index.mark_down(shard, self.kind, operation, exc)

    def _discount(self, busys: Sequence[float]) -> None:
        if len(busys) > 1:
            self.stats.discount_seconds += sum(busys) - max(busys)

    def score_object(
        self,
        obj: SpatialObject,
        query: SpatialKeywordQuery,
        keywords: Optional[KeywordSet] = None,
    ) -> float:
        """Exact Eqn 1 score of a known object (no index I/O)."""
        doc = query.doc if keywords is None else keywords
        dataset = self.index.dataset
        dist = dataset.normalized_distance(obj.loc, query.loc)
        textual = self.model.similarity(obj.doc, doc)
        return query.alpha * (1.0 - dist) + (1.0 - query.alpha) * textual

    # -- top-k ---------------------------------------------------------
    def top_k(
        self,
        query: SpatialKeywordQuery,
        k: Optional[int] = None,
        keywords: Optional[KeywordSet] = None,
    ) -> List[Tuple[float, int]]:
        limit = query.k if k is None else k
        doc = query.doc if keywords is None else keywords
        self.index.ensure_built(self.kind, self.model)
        ordered: List[Tuple[float, int, Shard]] = []
        live = [s for s in self._shards() if not self._is_down(s)]
        for shard in self._shards():
            if self._is_down(shard):
                # A down shard has no root bound; it is always scanned.
                ordered.append((math.inf, shard.tid, shard))
        replies = self.index.request_many(
            [(shard, ("bound", self.kind, query, doc)) for shard in live]
        )
        for shard, reply in zip(live, replies):
            if isinstance(reply, StorageError):
                self._mark_down(shard, "top_k:bound", reply)
                ordered.append((math.inf, shard.tid, shard))
                continue
            ordered.append((reply[0], shard.tid, shard))
        ordered.sort(key=lambda item: (-item[0], item[1]))

        search_busys: List[float] = []
        merged: List[Tuple[float, int]] = []
        for bound, _, shard in ordered:
            if len(merged) >= limit and bound < merged[-1][0]:
                continue  # cannot contribute: every score <= bound < kth
            if self._is_down(shard):
                started = time.perf_counter()
                part = _scan_top_k(
                    shard.dataset, query, limit, doc, self.model
                )
                search_busys.append(time.perf_counter() - started)
            else:
                try:
                    part, busy = self.index.request(
                        shard, ("top_k", self.kind, query, limit, doc)
                    )
                    search_busys.append(busy)
                except StorageError as exc:
                    self._mark_down(shard, "top_k", exc)
                    started = time.perf_counter()
                    part = _scan_top_k(
                        shard.dataset, query, limit, doc, self.model
                    )
                    search_busys.append(time.perf_counter() - started)
            merged.extend(part)
            merged.sort(key=lambda pair: (-pair[0], pair[1]))
            del merged[limit:]
        self._discount(search_busys)
        return merged

    # -- rank determination --------------------------------------------
    def rank_of_missing(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        keywords: Optional[KeywordSet] = None,
        stop_limit: Optional[int] = None,
    ) -> RankResult:
        self.index.ensure_built(self.kind, self.model)
        total = 0
        dominator_ids: List[int] = []
        missing_tuple = tuple(missing)
        # Every shard runs the same capped dominator search with no
        # inter-shard dependency, so the fan-out broadcasts: in process
        # mode the shards genuinely compute concurrently, and
        # ``request_many`` books the round's makespan discount.
        live = [s for s in self._shards() if not self._is_down(s)]
        message = ("rank", self.kind, query, missing_tuple, keywords, stop_limit)
        replies = self.index.request_many(
            [(shard, message) for shard in live]
        )
        by_tid: Dict[int, RankResult] = {}
        for shard, reply in zip(live, replies):
            if isinstance(reply, StorageError):
                self._mark_down(shard, "rank_of_missing", reply)
                continue
            by_tid[shard.tid] = reply[0]
        for shard in self._shards():
            result = by_tid.get(shard.tid)
            if result is None:
                result = _scan_rank(
                    shard.dataset,
                    query,
                    missing_tuple,
                    keywords,
                    stop_limit,
                    self.model,
                )
            total += len(result.dominators)
            dominator_ids.extend(result.dominators)

        # Re-emit the merged dominators in the single tree's pop order
        # (score descending, then oid) — pure arithmetic, no index I/O.
        doc = query.doc if keywords is None else keywords
        dataset = self.index.dataset
        scored = sorted(
            (-self.score_object(dataset.get(oid), query, doc), oid)
            for oid in dominator_ids
        )
        dominators = tuple(oid for _, oid in scored)
        if stop_limit is not None and total >= max(stop_limit, 1):
            # An aborted sharded search keeps the whole merged prefix
            # union (a deterministic superset of the single tree's
            # cap-length prefix); rank is unknown either way.
            return RankResult(rank=None, dominators=dominators, aborted=True)
        return RankResult(
            rank=total + 1, dominators=dominators, aborted=False
        )


# ----------------------------------------------------------------------
# the sharded index facade
# ----------------------------------------------------------------------
class ShardedIndex:
    """N spatial shards behind a single-tree-shaped surface.

    ``view(kind)`` returns the duck-typed tree the why-not algorithms
    run over; ``searcher(kind, model)`` the merged searcher.  Shards
    execute either in-process (``mode="simulate"``) or in forked
    workers (``mode="process"``); both modes issue the identical
    per-shard fetch sequence, so the summed I/O ledger is
    mode-invariant.
    """

    MODES = ("simulate", "process")

    def __init__(
        self,
        dataset: Dataset,
        plan: TilePlan,
        bounds: Rect,
        shards: Sequence[Shard],
        *,
        mode: str = "simulate",
        capacity: int = DEFAULT_CAPACITY,
        buffer_fraction: Optional[float] = 0.25,
    ) -> None:
        if mode not in self.MODES:
            raise InvalidParameterError(
                f"unknown shard mode {mode!r}; expected one of {self.MODES}"
            )
        if not shards:
            raise InvalidParameterError("a sharded index needs >= 1 shard")
        self.dataset = dataset
        self.plan = plan
        self.bounds = bounds
        self.shards: List[Shard] = list(shards)
        self.mode = mode
        self.capacity = capacity
        self.buffer_fraction = buffer_fraction
        self.runtime = _ShardRuntime()
        self._backends: Dict[int, Any] = {}
        self._views: Dict[str, ShardedTreeView] = {}
        # Serving threads reach view() concurrently; the lazy cache
        # write must be guarded (views are stateless wrappers, so a
        # lost race would be benign, but the read-only contract wants
        # the guard explicit).
        self._views_lock = threading.Lock()
        # Serializes lazy warm-on-query: concurrent serving threads
        # must not race the per-shard build bookkeeping.
        self._build_lock = threading.Lock()
        self._warmed: set = set()
        self._model: SimilarityModel = JACCARD

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: Dataset,
        n_shards: int,
        *,
        mode: str = "simulate",
        capacity: int = DEFAULT_CAPACITY,
        buffer_fraction: Optional[float] = 0.25,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = 0,
        faults: Optional[FaultInjector] = None,
        fault_shards: Optional[Sequence[int]] = None,
    ) -> "ShardedIndex":
        """Shard an in-memory dataset (plan/route shared with the
        streaming path, so both build identical shard sets)."""
        plan, tile_datasets, _, bounds = load_tile_datasets(
            lambda: iter(dataset.objects),
            n_shards,
            name=dataset.name,
            diagonal=dataset.diagonal,
            sample_size=sample_size,
            seed=seed,
            in_memory=True,
        )
        return cls._assemble(
            dataset,
            plan,
            bounds,
            tile_datasets,
            mode=mode,
            capacity=capacity,
            buffer_fraction=buffer_fraction,
            faults=faults,
            fault_shards=fault_shards,
        )

    @classmethod
    def build_streaming(
        cls,
        stream_factory: Callable[[], Iterator[SpatialObject]],
        n_shards: int,
        *,
        name: str = "stream",
        mode: str = "simulate",
        capacity: int = DEFAULT_CAPACITY,
        buffer_fraction: Optional[float] = 0.25,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        seed: int = 0,
        spill_dir: Optional[Union[str, Path]] = None,
        faults: Optional[FaultInjector] = None,
        fault_shards: Optional[Sequence[int]] = None,
    ) -> Tuple["ShardedIndex", LoadStats]:
        """Shard a stream without ever holding it whole in the loader.

        The global :class:`Dataset` facade is assembled from the tile
        datasets' object tuples (pointers, not copies), so the loader's
        working set above the final product stays bounded by
        ``LoadStats.peak_resident``.
        """
        plan, tile_datasets, stats, bounds = load_tile_datasets(
            stream_factory,
            n_shards,
            name=name,
            sample_size=sample_size,
            flush_every=flush_every,
            seed=seed,
            spill_dir=spill_dir,
        )
        objects: List[SpatialObject] = []
        for tile_ds in tile_datasets:
            objects.extend(tile_ds.objects)
        objects.sort(key=lambda obj: obj.oid)
        dataset = Dataset(
            objects, diagonal=tile_datasets[0].diagonal, name=name
        )
        index = cls._assemble(
            dataset,
            plan,
            bounds,
            tile_datasets,
            mode=mode,
            capacity=capacity,
            buffer_fraction=buffer_fraction,
            faults=faults,
            fault_shards=fault_shards,
        )
        return index, stats

    @classmethod
    def _assemble(
        cls,
        dataset: Dataset,
        plan: TilePlan,
        bounds: Rect,
        tile_datasets: Sequence[Dataset],
        *,
        mode: str,
        capacity: int,
        buffer_fraction: Optional[float],
        faults: Optional[FaultInjector],
        fault_shards: Optional[Sequence[int]],
    ) -> "ShardedIndex":
        targeted = None if fault_shards is None else set(fault_shards)
        shards: List[Shard] = []
        for tid, tile_ds in enumerate(tile_datasets):
            shard_faults = None
            if faults is not None and (targeted is None or tid in targeted):
                shard_faults = faults.fork(f"shard-{tid}")
            shards.append(
                Shard(
                    tid,
                    plan.tile_rect(tid, bounds),
                    tile_ds,
                    capacity=capacity,
                    buffer_fraction=buffer_fraction,
                    faults=shard_faults,
                )
            )
        return cls(
            dataset,
            plan,
            bounds,
            shards,
            mode=mode,
            capacity=capacity,
            buffer_fraction=buffer_fraction,
        )

    # -- views ---------------------------------------------------------
    def view(self, kind: str) -> ShardedTreeView:
        if kind not in KINDS:
            raise InvalidParameterError(f"unknown tree kind {kind!r}")
        with self._views_lock:
            view = self._views.get(kind)
            if view is None:
                view = ShardedTreeView(self, kind)
                self._views[kind] = view
            return view

    def searcher(
        self, kind: str, model: SimilarityModel = JACCARD
    ) -> ShardedSearcher:
        return ShardedSearcher(self, kind, model)

    # -- execution -----------------------------------------------------
    def _backend(self, shard: Shard) -> Any:
        backend = self._backends.get(shard.tid)
        if backend is None:
            if self.mode == "process":
                backend = _ProcessBackend(shard)
            else:
                backend = _SimulateBackend(shard)
            self._backends[shard.tid] = backend
        return backend

    def request(self, shard: Shard, message: Tuple) -> Tuple[Any, float]:
        """One operation on one shard via its mode's backend."""
        return self._backend(shard).request(message)

    def request_many(
        self, batch: Sequence[Tuple[Shard, Tuple]]
    ) -> List[Union[Tuple[Any, float], StorageError]]:
        """Fan independent requests out across shards, one round.

        In process mode every message is written to its worker pipe
        *before* any reply is read, so the shards compute concurrently;
        simulate mode runs them sequentially in-process.  Either way
        the round's makespan discount is accounted here: the reported
        busy values are per-shard CPU time, so ``round wall − max(busy)``
        is exactly the portion an N-worker deployment overlaps, and the
        recorded elapsed converges to ``driver time + Σ max-per-round``
        regardless of the host's core count.  A per-shard
        :class:`StorageError` is returned in place instead of raised,
        so one failed shard cannot discard its siblings' replies;
        non-storage failures (a dead worker) still propagate.
        """
        started = time.perf_counter()
        results: List[Union[Tuple[Any, float], StorageError]] = []
        if self.mode == "process":
            backends = [self._backend(shard) for shard, _ in batch]
            for backend, (_, message) in zip(backends, batch):
                backend.submit(message)
            for backend in backends:
                try:
                    results.append(backend.collect())
                except StorageError as exc:
                    results.append(exc)
        else:
            for shard, message in batch:
                try:
                    results.append(self.request(shard, message))
                except StorageError as exc:
                    results.append(exc)
        if len(batch) > 1:
            busys = [reply[1] for reply in results if not isinstance(reply, StorageError)]
            if busys:
                round_wall = time.perf_counter() - started
                self.runtime.discount_seconds += max(
                    0.0, round_wall - max(busys)
                )
        return results

    def mark_down(
        self, shard: Shard, kind: str, operation: str, exc: StorageError
    ) -> None:
        """Quarantine one shard tree after an unrecoverable fault."""
        key = (shard.tid, kind)
        if key in self.runtime.down:
            return
        self.runtime.down.add(key)
        # Imported lazily: repro.core's package init imports the engine,
        # which reaches back into this module.
        from ..core.result import FaultEvent

        self.runtime.fault_events.append(
            FaultEvent(
                tree=f"shard-{shard.tid}:{kind}",
                operation=operation,
                error=type(exc).__name__,
                record_id=getattr(exc, "record_id", None),
                detail=str(exc),
            )
        )

    def ensure_built(
        self, kind: str, model: SimilarityModel = JACCARD
    ) -> None:
        """Warm every healthy shard's ``kind`` tree (and searcher).

        A build-time storage fault quarantines only that shard; queries
        then serve its partition from the exact index-free scan.
        """
        with self._build_lock:
            self._model = model
            for shard in self.shards:
                key = (shard.tid, kind)
                if (
                    shard.is_empty
                    or key in self.runtime.down
                    or key in self._warmed
                ):
                    continue
                try:
                    self.request(shard, ("warm", (kind,), model))
                except StorageError as exc:
                    self.mark_down(shard, kind, f"build:{kind}", exc)
                    continue
                self._warmed.add(key)

    # -- accounting ----------------------------------------------------
    def ledgers(self, kind: str) -> Dict[int, IOSnapshot]:
        """Per-shard I/O snapshots (the deterministic ledger parts)."""
        return {shard.tid: shard.ledger(kind) for shard in self.shards}

    def ledger_total(self, kind: str) -> IOSnapshot:
        total: Optional[IOSnapshot] = None
        for shard in self.shards:
            snap = shard.ledger(kind)
            total = snap if total is None else total + snap
        if total is None:  # pragma: no cover - constructor requires shards
            raise IndexStructureError("sharded index has no shards")
        return total

    def reset_buffers(self) -> None:
        if self.mode == "process":
            for backend in self._backends.values():
                backend.request(("reset",))
        else:
            for shard in self.shards:
                shard.reset_buffer()

    # -- recovery ------------------------------------------------------
    def recover(self, only: Optional[Iterable[str]] = None) -> List[str]:
        """Clear quarantines and drop damaged trees for lazy rebuild.

        Each cleared tree gets a fresh fault-fork label (the rebuild
        generation bump in :meth:`Shard.drop_tree`), so recovery does
        not replay the schedule that broke it.  In process mode the
        shard's worker is retired — it may hold the damaged tree — and
        a fresh one is forked on next use.

        ``only`` restricts recovery to the named units
        (``"shard-<tid>:<kind>"``), leaving other quarantines in place —
        the serving layer's circuit breakers use this for half-open
        probes that must not resurrect every down shard at once.
        """
        selected = None if only is None else set(only)
        cleared: List[str] = []
        remaining: Set[Tuple[int, str]] = set()
        for key in sorted(self.runtime.down):
            tid, kind = key
            if selected is not None and f"shard-{tid}:{kind}" not in selected:
                remaining.add(key)
                continue
            shard = self.shards[tid]
            if self.mode == "process":
                backend = self._backends.pop(tid, None)
                if backend is not None:
                    backend.close()
                # The retired worker held every warm tree for this
                # shard, not just the broken one.
                for other in KINDS:
                    self._warmed.discard((tid, other))
            else:
                self._warmed.discard(key)
            # Always bump the rebuild generation — even when the failed
            # build never attached a tree — so the rebuild draws a fresh
            # fault-fork label instead of replaying the broken schedule.
            shard.drop_tree(kind)
            cleared.append(f"shard-{tid}:{kind}")
        if selected is None:
            self.runtime.down.clear()
            self.runtime.fault_events.clear()
        else:
            self.runtime.down.clear()
            self.runtime.down.update(remaining)
            recovered = set(cleared)
            self.runtime.fault_events[:] = [
                event
                for event in self.runtime.fault_events
                if event.tree not in recovered
            ]
        return cleared

    def close(self) -> None:
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()

    # -- persistence ---------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        save_sharded(self, directory)

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        dataset: Dataset,
        **kwargs: Any,
    ) -> "ShardedIndex":
        return load_sharded(directory, dataset, **kwargs)


# ----------------------------------------------------------------------
# persistence v2: shard manifest + per-shard tree files
# ----------------------------------------------------------------------
def _rect_payload(rect: Rect) -> List[float]:
    return [rect.min_x, rect.min_y, rect.max_x, rect.max_y]


def _ledger_payload(snapshot: IOSnapshot) -> Dict[str, int]:
    return asdict(snapshot)


def save_sharded(index: ShardedIndex, directory: Union[str, Path]) -> None:
    """Persist the shard layout: a checksummed ``manifest.json`` plus
    one index file per shard tree.

    The manifest stores no objects — membership is re-derived by
    routing the dataset through the tile plan on load, and the stored
    per-shard counts cross-check the result.  Per-shard ledgers and
    their sum are persisted so :mod:`repro.analysis.sanitize` can
    verify the ledger-sum invariant offline.
    """
    from ..storage.integrity import save_checked_json

    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    shard_entries: List[Dict[str, Any]] = []
    for shard in index.shards:
        files: Dict[str, str] = {}
        if not shard.is_empty:
            for kind in KINDS:
                filename = f"shard-{shard.tid}-{kind}.json"
                save_index(shard.ensure_tree(kind), path / filename)
                files[kind] = filename
        shard_entries.append(
            {
                "tid": shard.tid,
                "rect": _rect_payload(shard.rect),
                "n_objects": len(shard.dataset),
                "files": files,
                "ledger": {
                    kind: _ledger_payload(shard.ledger(kind))
                    for kind in KINDS
                },
            }
        )
    body = {
        "plan": index.plan.to_payload(),
        "bounds": _rect_payload(index.bounds),
        "diagonal": index.dataset.diagonal,
        "dataset_name": index.dataset.name,
        "n_objects": len(index.dataset),
        "capacity": index.capacity,
        "n_shards": len(index.shards),
        "shards": shard_entries,
        "ledger_total": {
            kind: _ledger_payload(index.ledger_total(kind)) for kind in KINDS
        },
    }
    save_checked_json(path / MANIFEST_NAME, body, version=_MANIFEST_VERSION)


def load_sharded(
    directory: Union[str, Path],
    dataset: Dataset,
    *,
    mode: str = "simulate",
    buffer_fraction: Optional[float] = 0.25,
    faults: Optional[FaultInjector] = None,
    fault_shards: Optional[Sequence[int]] = None,
) -> ShardedIndex:
    """Rebuild a :class:`ShardedIndex` from a manifest directory.

    ``dataset`` must be the same dataset the index was saved from; the
    loader routes it through the persisted tile plan and refuses
    (:class:`PersistenceError`) when any shard's membership count
    disagrees with the manifest.
    """
    from ..storage.integrity import load_checked_json

    path = Path(directory)
    body = load_checked_json(
        path / MANIFEST_NAME,
        kind="sharded index",
        supported_versions=(_MANIFEST_VERSION,),
        checksum_required_from=_MANIFEST_VERSION,
    )
    if body["n_objects"] != len(dataset):
        raise PersistenceError(
            f"manifest covers {body['n_objects']} objects but the dataset "
            f"has {len(dataset)}"
        )
    plan = TilePlan.from_payload(body["plan"])
    bounds = Rect(*body["bounds"])
    buckets: List[List[SpatialObject]] = [[] for _ in range(plan.n_tiles)]
    for obj in dataset.objects:
        buckets[plan.tile_of(obj.loc)].append(obj)

    targeted = None if fault_shards is None else set(fault_shards)
    shards: List[Shard] = []
    entries = sorted(body["shards"], key=lambda entry: entry["tid"])
    if len(entries) != plan.n_tiles:
        raise PersistenceError(
            f"manifest lists {len(entries)} shards for a "
            f"{plan.n_tiles}-tile plan"
        )
    for entry in entries:
        tid = entry["tid"]
        bucket = buckets[tid]
        if len(bucket) != entry["n_objects"]:
            raise PersistenceError(
                f"shard {tid} routed {len(bucket)} objects but the "
                f"manifest recorded {entry['n_objects']}"
            )
        tile_ds = Dataset(
            bucket,
            diagonal=dataset.diagonal,
            name=f"{dataset.name}/shard-{tid}",
        )
        shard_faults = None
        if faults is not None and (targeted is None or tid in targeted):
            shard_faults = faults.fork(f"shard-{tid}")
        shard = Shard(
            tid,
            Rect(*entry["rect"]),
            tile_ds,
            capacity=body["capacity"],
            buffer_fraction=buffer_fraction,
            faults=shard_faults,
        )
        for kind, filename in entry["files"].items():
            tree = load_index(
                path / filename,
                tile_ds,
                stats=shard.stats[kind],
                faults=shard._tree_faults(kind),
            )
            shard.attach_tree(kind, tree)
        shards.append(shard)
    return ShardedIndex(
        dataset,
        plan,
        bounds,
        shards,
        mode=mode,
        capacity=body["capacity"],
        buffer_fraction=buffer_fraction,
    )
