"""Index persistence: save and reload tree structure.

Bulk loading is cheap, but a *dynamically grown* tree's shape is the
product of its insertion history — rebuilding loses it (and with it
any benchmark comparing grown against bulk-loaded structure).  This
module persists the logical structure of a SetR-tree or KcR-tree to a
JSON document and reconstructs an equivalent tree:

* node topology (levels, entry grouping) is preserved exactly;
* object documents are re-read from the dataset (the tree never owns
  object data) and re-packed per leaf, so the storage layout follows
  the same deterministic rules as construction;
* textual summaries are recomputed bottom-up from the preserved
  grouping — they are pure functions of the subtree membership, so
  equality with the saved tree's summaries is guaranteed;
* each leaf's packed columnar block
  (:class:`repro.core.vectorized.PackedLeaf`) is rebuilt under the
  loaded tree's (deterministic) vocabulary interning, so the vectorized
  scoring substrate round-trips with the structure.

The dataset itself is persisted separately
(:func:`repro.data.io.save_dataset`); a saved index references objects
by id and refuses to load against a dataset that is missing any.

Index files share the crash-safe, checksummed persistence substrate
(:mod:`repro.storage.integrity`): atomic temp-file + rename on save,
CRC-32 body checksum from format version 2 on, and
:class:`repro.errors.PersistenceError` with recovery hints on
truncation, corruption, or unknown versions.  Version-1 files (no
checksum) remain loadable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Tuple, Type, Union

from ..errors import IndexStructureError
from ..model.geometry import Rect, bounding_rect
from ..model.objects import Dataset
from ..storage.integrity import load_checked_json, save_checked_json
from ..storage.layout import keyword_set_bytes, node_bytes
from ..storage.packing import PackedWriter
from .entries import ChildEntry, Node, ObjectEntry
from .kcr_tree import KcRTree
from .rtree import RTreeBase, TextSummary
from .setr_tree import SetRTree

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)  # v1 predates checksums; still loadable
_CHECKSUM_REQUIRED_FROM = 2

_TREE_TYPES: Dict[str, Type[RTreeBase]] = {
    "setr": SetRTree,
    "kcr": KcRTree,
}


def _type_name(tree: RTreeBase) -> str:
    for name, cls in _TREE_TYPES.items():
        if type(tree) is cls:
            return name
    raise IndexStructureError(
        f"cannot persist index of type {type(tree).__name__}; "
        f"supported: {sorted(_TREE_TYPES)}"
    )


def _serialise_node(tree: RTreeBase, node_id: int) -> Dict[str, Any]:
    node = tree.buffer.fetch(node_id)
    if node.is_leaf:
        return {
            "leaf": True,
            "level": node.level,
            "objects": [entry.oid for entry in node.entries],
        }
    return {
        "leaf": False,
        "level": node.level,
        "children": [
            _serialise_node(tree, entry.child_id) for entry in node.entries
        ],
    }


def save_index(tree: RTreeBase, path: Union[str, Path]) -> None:
    """Atomically write a tree's logical structure to ``path``.

    The file carries ``format_version`` and a CRC-32 ``checksum``; the
    atomic replace means a crash mid-save can never leave a torn index
    file behind.
    """
    body = {
        "tree_type": _type_name(tree),
        "capacity": tree.capacity,
        "dataset_name": tree.dataset.name,
        "n_objects": len(tree.dataset),
        "root": _serialise_node(tree, tree.root_id),
    }
    save_checked_json(path, body, version=_FORMAT_VERSION)


class _StructureLoader:
    """Rebuilds pager records for a deserialised tree structure."""

    def __init__(self, tree: RTreeBase, dataset: Dataset) -> None:
        self.tree = tree
        self.dataset = dataset
        self.doc_writer = PackedWriter(tree.buffer)

    def build(self, spec: Dict[str, Any]) -> Tuple[Rect, ChildEntry, TextSummary]:
        if spec["leaf"]:
            return self._build_leaf(spec)
        child_items = [self.build(child) for child in spec["children"]]
        entries: List[Any] = [item[1] for item in child_items]
        rect = bounding_rect(item[0] for item in child_items)
        summary = TextSummary.merged(item[2] for item in child_items)
        return self._allocate(spec, rect, entries, summary, is_leaf=False)

    def _build_leaf(self, spec: Dict[str, Any]) -> Tuple[Rect, ChildEntry, TextSummary]:
        objects = [self.dataset.get(oid) for oid in spec["objects"]]
        indexes = [
            self.doc_writer.add(obj.doc, keyword_set_bytes(len(obj.doc)))
            for obj in objects
        ]
        self.doc_writer.flush()
        entries: List[Any] = [
            ObjectEntry(
                oid=obj.oid, loc=obj.loc, doc_record=self.doc_writer.ref(index)
            )
            for obj, index in zip(objects, indexes)
        ]
        rect = bounding_rect(Rect.from_point(obj.loc) for obj in objects)
        summary = TextSummary.merged(
            TextSummary.of_object(obj) for obj in objects
        )
        return self._allocate(
            spec,
            rect,
            entries,
            summary,
            is_leaf=True,
            packed_items=[(obj.oid, obj.loc, obj.doc) for obj in objects],
        )

    def _allocate(
        self,
        spec: Dict[str, Any],
        rect: Rect,
        entries: List[Any],
        summary: TextSummary,
        is_leaf: bool,
        packed_items: Any = None,
    ) -> Tuple[Rect, ChildEntry, TextSummary]:
        tree = self.tree
        if len(entries) > tree.capacity:
            raise IndexStructureError(
                f"saved node holds {len(entries)} entries, above the "
                f"declared capacity {tree.capacity}"
            )
        node = Node(
            node_id=-1,
            is_leaf=is_leaf,
            rect=rect,
            entries=entries,
            level=spec["level"],
        )
        node.node_id = tree.buffer.allocate(node, node_bytes(len(entries)))
        node.aux_record = tree._allocate_summary(summary)
        if packed_items is not None:
            # Rebuild the packed columnar block exactly as bulk loading
            # would: same vocabulary interning, same record contents.
            node.packed_record = tree._allocate_packed(packed_items)
        tree.node_count += 1
        return rect, ChildEntry(
            child_id=node.node_id, rect=rect, aux_record=node.aux_record
        ), summary


def load_index(
    path: Union[str, Path], dataset: Dataset, **tree_kwargs: Any
) -> RTreeBase:
    """Reconstruct a tree saved with :func:`save_index`.

    ``dataset`` must contain every object id the saved structure
    references (it may contain more — e.g. objects added after the
    save; those are simply not indexed and can be :meth:`inserted
    <repro.index.rtree.RTreeBase.insert>` afterwards).
    """
    payload = load_checked_json(
        path,
        kind="index",
        supported_versions=_SUPPORTED_VERSIONS,
        checksum_required_from=_CHECKSUM_REQUIRED_FROM,
    )
    tree_cls = _TREE_TYPES.get(payload["tree_type"])
    if tree_cls is None:
        raise IndexStructureError(
            f"unknown tree type {payload['tree_type']!r} in saved index; "
            f"this build reads {sorted(_TREE_TYPES)}. Re-save the index "
            "with a supported tree type or upgrade the library."
        )

    tree = tree_cls.__new__(tree_cls)  # bypass __init__'s bulk load
    tree._init_state(dataset, int(payload["capacity"]), **tree_kwargs)

    loader = _StructureLoader(tree, dataset)
    rect, root_entry, _ = loader.build(payload["root"])
    tree.root_id = root_entry.child_id
    tree.root_rect = rect
    tree.root_summary_record = root_entry.aux_record
    tree.height = payload["root"]["level"] + 1
    return tree
