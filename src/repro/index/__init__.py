"""Hybrid spatio-textual indexes: SetR-tree, KcR-tree, best-first search."""

from .entries import ChildEntry, Node, ObjectEntry
from .inverted import InvertedFileIndex
from .kcr_tree import KcRTree
from .persistence import load_index, save_index
from .rtree import DEFAULT_CAPACITY, RTreeBase, TextSummary
from .search import RankResult, TopKSearcher
from .setr_tree import SetRTree
from .sharded import (
    LoadStats,
    Shard,
    ShardedIndex,
    ShardedSearcher,
    ShardedTreeView,
    TilePlan,
    load_sharded,
    save_sharded,
)

__all__ = [
    "ChildEntry",
    "Node",
    "ObjectEntry",
    "InvertedFileIndex",
    "KcRTree",
    "RTreeBase",
    "TextSummary",
    "DEFAULT_CAPACITY",
    "RankResult",
    "TopKSearcher",
    "SetRTree",
    "save_index",
    "load_index",
    "LoadStats",
    "Shard",
    "ShardedIndex",
    "ShardedSearcher",
    "ShardedTreeView",
    "TilePlan",
    "save_sharded",
    "load_sharded",
]
