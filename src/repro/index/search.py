"""Best-first spatial keyword search over the hybrid indexes.

Two operations drive every why-not algorithm:

* **top-k retrieval** (Definition 1) — the classic IR-tree style
  best-first search: a max-heap ordered by score for objects and by
  the node score upper bound (Theorem 1 for the SetR-tree, the coarse
  count-map bound for the KcR-tree) for subtrees.  An object popped
  from the heap is guaranteed final because its exact score keys it.

* **rank determination** — "process the query until object m appears"
  (Section IV-B).  The rank of a missing-object set under a candidate
  keyword set is one plus the number of objects scoring strictly above
  the worst missing object (Eqn 3 / Section VI-A).  The search pops
  entries until the best remaining upper bound can no longer beat that
  threshold, optionally aborting early once more than ``stop_limit``
  dominators have been seen — the Opt1 early stop of Section IV-C1.

Both trees expose the same two methods the searcher needs
(``entry_score_bound`` and ``fetch_doc``), so one searcher serves both.

**Heap ordering.**  Heap items are ``(-key, kind, tiebreak, seq, node)``
with ``kind = 0`` for subtree entries and ``1`` for objects.  The
``kind`` level guarantees that a node whose upper bound ties an
object's exact score is expanded *before* that object is emitted — the
node may contain equal-scoring objects with smaller ids, and the oracle
(:meth:`repro.model.scoring.Scorer.top_k`) breaks score ties by
ascending id over the *whole* dataset.  (An oid-based tiebreak alone is
not enough: a sentinel like ``-1`` only sorts nodes first when every
object id is non-negative, which the dataset contract does not
require.)  Object-object ties then break by ascending id, matching the
oracle's stable sort exactly.

**Vectorized leaf expansion.**  When ``REPRO_VECTORIZE`` is on (the
default) and a leaf carries a packed columnar block, the whole leaf is
scored in one batched kernel call (:mod:`repro.core.vectorized`) —
bit-identical to the scalar loop, with the same per-entry accounted doc
fetches so I/O counters and injected-fault schedules replay
identically.  Any leaf without a healthy packed block silently falls
back to the scalar loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from ..model.objects import SpatialObject
from ..model.query import SpatialKeywordQuery
from ..model.similarity import JACCARD, SimilarityModel
from .rtree import RTreeBase

__all__ = ["TopKSearcher", "RankResult"]

KeywordSet = FrozenSet[int]


@dataclass(frozen=True)
class RankResult:
    """Outcome of a rank-determination search.

    ``rank`` is ``None`` when the search aborted early (Opt1): more
    than ``stop_limit`` dominators were found, so the candidate keyword
    set cannot beat the current best refined query.  ``dominators``
    always holds the ids of the strictly-better objects discovered
    before the search ended — the Opt3 dominator cache feeds on them.
    """

    rank: Optional[int]
    dominators: Tuple[int, ...]
    aborted: bool


# heap item: (-score_key, kind, tiebreak, seq, node_id or None)
_HeapItem = Tuple[float, int, int, int, Optional[int]]
_NODE_KIND = 0  # sorts before objects at equal score keys
_OBJECT_KIND = 1


class TopKSearcher:
    """Best-first search over a SetR-tree or KcR-tree.

    ``vectorize`` overrides the ``REPRO_VECTORIZE`` environment switch
    for this searcher (``None`` = follow the environment); results are
    bit-identical either way, only the leaf-scoring cost differs.
    """

    def __init__(
        self,
        tree: RTreeBase,
        model: SimilarityModel = JACCARD,
        *,
        vectorize: Optional[bool] = None,
    ) -> None:
        from ..core.vectorized import vectorize_enabled  # lazy: import cycle

        self.tree = tree
        self.model = model
        self.vectorize = vectorize_enabled(vectorize)
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # internal: score an object entry exactly
    # ------------------------------------------------------------------
    def _object_score(
        self,
        loc: Tuple[float, float],
        doc: KeywordSet,
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> float:
        dist = self.tree.dataset.normalized_distance(loc, query.loc)
        textual = self.model.similarity(doc, keywords)
        return query.alpha * (1.0 - dist) + (1.0 - query.alpha) * textual

    def score_object(
        self,
        obj: SpatialObject,
        query: SpatialKeywordQuery,
        keywords: Optional[KeywordSet] = None,
    ) -> float:
        """Exact Eqn 1 score of a known object (no index I/O)."""
        doc = query.doc if keywords is None else keywords
        return self._object_score(obj.loc, obj.doc, query, doc)

    # ------------------------------------------------------------------
    # top-k retrieval
    # ------------------------------------------------------------------
    def top_k(
        self,
        query: SpatialKeywordQuery,
        k: Optional[int] = None,
        keywords: Optional[KeywordSet] = None,
    ) -> List[Tuple[float, int]]:
        """The ``k`` best ``(score, oid)`` pairs, best first.

        Ties are broken by object id so results are deterministic and
        comparable with the brute-force oracle.
        """
        limit = query.k if k is None else k
        doc = query.doc if keywords is None else keywords
        heap: List[_HeapItem] = []
        self._push_node(heap, self.tree.root_id, float("inf"))
        results: List[Tuple[float, int]] = []
        while heap and len(results) < limit:
            neg_key, _, tiebreak, _, node_id = heapq.heappop(heap)
            if node_id is None:
                results.append((-neg_key, tiebreak))
                continue
            self._expand(heap, node_id, query, doc)
        return results

    # ------------------------------------------------------------------
    # rank determination
    # ------------------------------------------------------------------
    def rank_of_missing(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        keywords: Optional[KeywordSet] = None,
        stop_limit: Optional[int] = None,
    ) -> RankResult:
        """``R(M, q')`` via best-first search with optional early stop.

        ``stop_limit`` is the largest rank that could still improve on
        the current best refined query (Eqn 6); once the dominator
        count reaches it the search aborts with ``rank=None``.
        """
        doc = query.doc if keywords is None else keywords
        threshold = min(
            self._object_score(m.loc, m.doc, query, doc) for m in missing
        )
        heap: List[_HeapItem] = []
        self._push_node(heap, self.tree.root_id, float("inf"))
        dominators: List[int] = []
        while heap:
            neg_key, _, tiebreak, _, node_id = heap[0]
            if -neg_key <= threshold:
                break  # nothing left can strictly beat the worst missing object
            heapq.heappop(heap)
            if node_id is None:
                # Every popped object scores strictly above the worst
                # missing object, so it dominates — including another
                # missing object (Eqn 3 counts all of D).
                dominators.append(tiebreak)
                if stop_limit is not None and len(dominators) >= stop_limit:
                    return RankResult(
                        rank=None, dominators=tuple(dominators), aborted=True
                    )
                continue
            self._expand(heap, node_id, query, doc)
        return RankResult(
            rank=len(dominators) + 1, dominators=tuple(dominators), aborted=False
        )

    # ------------------------------------------------------------------
    # heap plumbing
    # ------------------------------------------------------------------
    def _push_node(
        self,
        heap: List[_HeapItem],
        node_id: int,
        bound: float,
    ) -> None:
        heapq.heappush(
            heap, (-bound, _NODE_KIND, -1, next(self._counter), node_id)
        )

    def _expand(
        self,
        heap: List[_HeapItem],
        node_id: int,
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> None:
        node = self.tree.fetch_node(node_id)
        if node.is_leaf:
            entries = node.object_entries
            scores = self._leaf_scores(node, entries, query, keywords)
            if scores is None:
                for entry in entries:
                    doc = self.tree.fetch_doc(entry.doc_record)
                    score = self._object_score(entry.loc, doc, query, keywords)
                    heapq.heappush(
                        heap,
                        (-score, _OBJECT_KIND, entry.oid,
                         next(self._counter), None),
                    )
            else:
                for entry, score in zip(entries, scores):
                    heapq.heappush(
                        heap,
                        (-score, _OBJECT_KIND, entry.oid,
                         next(self._counter), None),
                    )
        else:
            for entry in node.child_entries:
                bound = self.tree.entry_score_bound(entry, query, keywords)
                self._push_node(heap, entry.child_id, bound)

    def _leaf_scores(
        self,
        node: Any,
        entries: Sequence[Any],
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> Optional[List[float]]:
        """Batched leaf scoring; ``None`` requests the scalar fallback.

        The packed block mirrors data whose I/O the scalar loop charges
        per entry, so this path issues the *identical* accounted
        ``fetch_doc`` sequence (same counters, same injected-fault
        replay) and reads the packed block for free via ``peek``.
        """
        if not self.vectorize or not entries:
            return None
        packed = self.tree.packed_leaf(node)
        if packed is None or len(packed) != len(entries):
            return None
        from ..core.vectorized import leaf_scores  # lazy: import cycle

        for entry in entries:
            self.tree.fetch_doc(entry.doc_record)
        query_mask = self.tree.vocab.encode(keywords)
        return leaf_scores(
            packed,
            query.loc,
            query.alpha,
            query_mask,
            len(keywords),
            self.model.name,
            self.tree.dataset,
        )
