"""Best-first spatial keyword search over the hybrid indexes.

Two operations drive every why-not algorithm:

* **top-k retrieval** (Definition 1) — the classic IR-tree style
  best-first search: a max-heap ordered by score for objects and by
  the node score upper bound (Theorem 1 for the SetR-tree, the coarse
  count-map bound for the KcR-tree) for subtrees.  An object popped
  from the heap is guaranteed final because its exact score keys it.

* **rank determination** — "process the query until object m appears"
  (Section IV-B).  The rank of a missing-object set under a candidate
  keyword set is one plus the number of objects scoring strictly above
  the worst missing object (Eqn 3 / Section VI-A).  The search pops
  entries until the best remaining upper bound can no longer beat that
  threshold, optionally aborting early once more than ``stop_limit``
  dominators have been seen — the Opt1 early stop of Section IV-C1.

Both trees expose the same two methods the searcher needs
(``entry_score_bound`` and ``fetch_doc``), so one searcher serves both.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..model.objects import SpatialObject
from ..model.query import SpatialKeywordQuery
from ..model.similarity import JACCARD, SimilarityModel
from .rtree import RTreeBase

__all__ = ["TopKSearcher", "RankResult"]

KeywordSet = FrozenSet[int]


@dataclass(frozen=True)
class RankResult:
    """Outcome of a rank-determination search.

    ``rank`` is ``None`` when the search aborted early (Opt1): more
    than ``stop_limit`` dominators were found, so the candidate keyword
    set cannot beat the current best refined query.  ``dominators``
    always holds the ids of the strictly-better objects discovered
    before the search ended — the Opt3 dominator cache feeds on them.
    """

    rank: Optional[int]
    dominators: Tuple[int, ...]
    aborted: bool


class TopKSearcher:
    """Best-first search over a SetR-tree or KcR-tree."""

    def __init__(self, tree: RTreeBase, model: SimilarityModel = JACCARD) -> None:
        self.tree = tree
        self.model = model
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # internal: score an object entry exactly
    # ------------------------------------------------------------------
    def _object_score(
        self,
        loc: Tuple[float, float],
        doc: KeywordSet,
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> float:
        dist = self.tree.dataset.normalized_distance(loc, query.loc)
        textual = self.model.similarity(doc, keywords)
        return query.alpha * (1.0 - dist) + (1.0 - query.alpha) * textual

    def score_object(
        self,
        obj: SpatialObject,
        query: SpatialKeywordQuery,
        keywords: Optional[KeywordSet] = None,
    ) -> float:
        """Exact Eqn 1 score of a known object (no index I/O)."""
        doc = query.doc if keywords is None else keywords
        return self._object_score(obj.loc, obj.doc, query, doc)

    # ------------------------------------------------------------------
    # top-k retrieval
    # ------------------------------------------------------------------
    def top_k(
        self,
        query: SpatialKeywordQuery,
        k: Optional[int] = None,
        keywords: Optional[KeywordSet] = None,
    ) -> List[Tuple[float, int]]:
        """The ``k`` best ``(score, oid)`` pairs, best first.

        Ties are broken by object id so results are deterministic and
        comparable with the brute-force oracle.
        """
        limit = query.k if k is None else k
        doc = query.doc if keywords is None else keywords
        heap: List[Tuple[float, int, int, Optional[int]]] = []
        # heap item: (-score_key, oid_tiebreak, seq, node_id or None)
        self._push_node(heap, self.tree.root_id, float("inf"), -1)
        results: List[Tuple[float, int]] = []
        while heap and len(results) < limit:
            neg_key, tiebreak, _, node_id = heapq.heappop(heap)
            if node_id is None:
                results.append((-neg_key, tiebreak))
                continue
            self._expand(heap, node_id, query, doc)
        return results

    # ------------------------------------------------------------------
    # rank determination
    # ------------------------------------------------------------------
    def rank_of_missing(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        keywords: Optional[KeywordSet] = None,
        stop_limit: Optional[int] = None,
    ) -> RankResult:
        """``R(M, q')`` via best-first search with optional early stop.

        ``stop_limit`` is the largest rank that could still improve on
        the current best refined query (Eqn 6); once the dominator
        count reaches it the search aborts with ``rank=None``.
        """
        doc = query.doc if keywords is None else keywords
        threshold = min(
            self._object_score(m.loc, m.doc, query, doc) for m in missing
        )
        heap: List[Tuple[float, int, int, Optional[int]]] = []
        self._push_node(heap, self.tree.root_id, float("inf"), -1)
        dominators: List[int] = []
        while heap:
            neg_key, tiebreak, _, node_id = heap[0]
            if -neg_key <= threshold:
                break  # nothing left can strictly beat the worst missing object
            heapq.heappop(heap)
            if node_id is None:
                # Every popped object scores strictly above the worst
                # missing object, so it dominates — including another
                # missing object (Eqn 3 counts all of D).
                dominators.append(tiebreak)
                if stop_limit is not None and len(dominators) >= stop_limit:
                    return RankResult(
                        rank=None, dominators=tuple(dominators), aborted=True
                    )
                continue
            self._expand(heap, node_id, query, doc)
        return RankResult(
            rank=len(dominators) + 1, dominators=tuple(dominators), aborted=False
        )

    # ------------------------------------------------------------------
    # heap plumbing
    # ------------------------------------------------------------------
    def _push_node(
        self,
        heap: List[Tuple[float, int, int, Optional[int]]],
        node_id: int,
        bound: float,
        tiebreak: int,
    ) -> None:
        heapq.heappush(heap, (-bound, tiebreak, next(self._counter), node_id))

    def _expand(
        self,
        heap: List[Tuple[float, int, int, Optional[int]]],
        node_id: int,
        query: SpatialKeywordQuery,
        keywords: KeywordSet,
    ) -> None:
        node = self.tree.fetch_node(node_id)
        if node.is_leaf:
            for entry in node.object_entries:
                doc = self.tree.fetch_doc(entry.doc_record)
                score = self._object_score(entry.loc, doc, query, keywords)
                heapq.heappush(
                    heap, (-score, entry.oid, next(self._counter), None)
                )
        else:
            for entry in node.child_entries:
                bound = self.tree.entry_score_bound(entry, query, keywords)
                self._push_node(heap, entry.child_id, bound, -1)
