"""R-tree + inverted-file baseline.

The paper's related work (Section II-A) starts from "a hybrid index
structure that integrates R*-tree and inverted file" [34] — the
pre-IR-tree way of answering spatial keyword queries.  This module
implements that baseline over the same simulated-disk substrate so the
SetR-tree and KcR-tree have a comparator:

* a plain R-tree carries **no** textual payloads in its nodes;
* an inverted file maps each keyword to a postings record (the ids and
  document lengths of the objects containing it), stored on pages
  proportional to the postings size.

Query processing fetches the postings of every query keyword first
(textual similarities for all candidate objects become known — objects
absent from every postings list have similarity 0), then runs the
usual best-first R-tree search.  Because the nodes say nothing about
text, the per-node score bound must assume the best textual similarity
*any* object achieves, which is exactly the weak pruning that
motivated hybrid indexes — visible in the I/O comparison benches.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import IndexStructureError
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery
from ..model.similarity import JACCARD, SimilarityModel
from ..storage.layout import keyword_set_bytes
from ..storage.stats import IOStatistics
from .rtree import RTreeBase, TextSummary
from .search import RankResult

__all__ = ["InvertedFileIndex"]

KeywordSet = FrozenSet[int]


class _PlainRTree(RTreeBase):
    """R-tree without textual summaries (4-byte placeholder records)."""

    def _summary_payload(self, summary: TextSummary):
        return None, 4

    def _augment_payload(self, payload, doc):
        return None, 4

    def _merge_payloads(self, payloads):
        return None, 4


class InvertedFileIndex:
    """The [34]-style baseline: plain R-tree + per-keyword postings."""

    def __init__(
        self,
        dataset: Dataset,
        capacity: int = 100,
        model: SimilarityModel = JACCARD,
        **tree_kwargs: object,
    ) -> None:
        self.dataset = dataset
        self.model = model
        self.tree = _PlainRTree(dataset, capacity=capacity, **tree_kwargs)
        # postings: keyword -> pager record of (oid, doc_length) pairs
        self._postings_records: Dict[int, int] = {}
        postings: Dict[int, List[Tuple[int, int]]] = {}
        for obj in dataset:
            for term in obj.doc:
                postings.setdefault(term, []).append((obj.oid, len(obj.doc)))
        for term, entries in postings.items():
            nbytes = keyword_set_bytes(2 * len(entries))
            self._postings_records[term] = self.tree.buffer.allocate(
                tuple(entries), nbytes
            )
        self._counter = itertools.count()

    @property
    def stats(self) -> IOStatistics:
        return self.tree.stats

    def reset_buffer(self) -> None:
        """Cold-start the cache (between experiment repetitions)."""
        self.tree.reset_buffer()

    def insert(self, obj: SpatialObject) -> None:
        """Insert one object: R-tree insert + postings maintenance."""
        self.tree.insert(obj)
        for term in obj.doc:
            record = self._postings_records.get(term)
            if record is None:
                self._postings_records[term] = self.tree.buffer.allocate(
                    ((obj.oid, len(obj.doc)),), keyword_set_bytes(2)
                )
                continue
            entries = tuple(self.tree.buffer.fetch(record)) + (
                (obj.oid, len(obj.doc)),
            )
            self.tree.buffer.update(
                record, entries, keyword_set_bytes(2 * len(entries))
            )

    # ------------------------------------------------------------------
    # textual phase
    # ------------------------------------------------------------------
    def _textual_scores(self, keywords: KeywordSet) -> Tuple[Dict[int, float], float]:
        """Jaccard similarity per candidate object, via postings.

        Fetches each query keyword's postings record (I/O-accounted).
        Returns the per-object similarities plus their maximum — the
        only textual bound a text-blind R-tree node can use.
        """
        intersections: Dict[int, int] = {}
        lengths: Dict[int, int] = {}
        for term in keywords:
            record = self._postings_records.get(term)
            if record is None:
                continue
            for oid, doc_len in self.tree.buffer.fetch(record):
                intersections[oid] = intersections.get(oid, 0) + 1
                lengths[oid] = doc_len
        n_query = len(keywords)
        scores: Dict[int, float] = {}
        best = 0.0
        for oid, inter in intersections.items():
            union = lengths[oid] + n_query - inter
            value = inter / union if union else 0.0
            scores[oid] = value
            if value > best:
                best = value
        return scores, best

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _object_score(
        self,
        loc,
        oid: int,
        tsim: Dict[int, float],
        query: SpatialKeywordQuery,
    ) -> float:
        dist = self.dataset.normalized_distance(loc, query.loc)
        return query.alpha * (1.0 - dist) + (1.0 - query.alpha) * tsim.get(oid, 0.0)

    def top_k(
        self,
        query: SpatialKeywordQuery,
        k: Optional[int] = None,
        keywords: Optional[KeywordSet] = None,
    ) -> List[Tuple[float, int]]:
        """Definition 1 over the baseline index."""
        limit = query.k if k is None else k
        doc = query.doc if keywords is None else keywords
        tsim, best_tsim = self._textual_scores(doc)
        heap: List[Tuple[float, int, int, Optional[int]]] = []
        heapq.heappush(
            heap, (-float("inf"), -1, next(self._counter), self.tree.root_id)
        )
        results: List[Tuple[float, int]] = []
        beta = (1.0 - query.alpha) * best_tsim
        while heap and len(results) < limit:
            neg_key, tiebreak, _, node_id = heapq.heappop(heap)
            if node_id is None:
                results.append((-neg_key, tiebreak))
                continue
            node = self.tree.fetch_node(node_id)
            if node.is_leaf:
                for entry in node.object_entries:
                    score = self._object_score(entry.loc, entry.oid, tsim, query)
                    heapq.heappush(
                        heap, (-score, entry.oid, next(self._counter), None)
                    )
            else:
                for entry in node.child_entries:
                    min_d = min(
                        1.0,
                        entry.rect.min_dist(query.loc) / self.dataset.diagonal,
                    )
                    bound = query.alpha * (1.0 - min_d) + beta
                    heapq.heappush(
                        heap, (-bound, -1, next(self._counter), entry.child_id)
                    )
        return results

    def rank_of_missing(
        self,
        query: SpatialKeywordQuery,
        missing: Sequence[SpatialObject],
        keywords: Optional[KeywordSet] = None,
        stop_limit: Optional[int] = None,
    ) -> RankResult:
        """Rank determination with the same contract as TopKSearcher."""
        doc = query.doc if keywords is None else keywords
        tsim, best_tsim = self._textual_scores(doc)
        threshold = min(
            self._object_score(m.loc, m.oid, tsim, query) for m in missing
        )
        beta = (1.0 - query.alpha) * best_tsim
        heap: List[Tuple[float, int, int, Optional[int]]] = []
        heapq.heappush(
            heap, (-float("inf"), -1, next(self._counter), self.tree.root_id)
        )
        dominators: List[int] = []
        while heap:
            neg_key, tiebreak, _, node_id = heap[0]
            if -neg_key <= threshold:
                break
            heapq.heappop(heap)
            if node_id is None:
                dominators.append(tiebreak)
                if stop_limit is not None and len(dominators) >= stop_limit:
                    return RankResult(
                        rank=None, dominators=tuple(dominators), aborted=True
                    )
                continue
            node = self.tree.fetch_node(node_id)
            if node.is_leaf:
                for entry in node.object_entries:
                    score = self._object_score(entry.loc, entry.oid, tsim, query)
                    heapq.heappush(
                        heap, (-score, entry.oid, next(self._counter), None)
                    )
            else:
                for entry in node.child_entries:
                    min_d = min(
                        1.0,
                        entry.rect.min_dist(query.loc) / self.dataset.diagonal,
                    )
                    bound = query.alpha * (1.0 - min_d) + beta
                    heapq.heappush(
                        heap, (-bound, -1, next(self._counter), entry.child_id)
                    )
        return RankResult(
            rank=len(dominators) + 1, dominators=tuple(dominators), aborted=False
        )
