"""Node and entry structures shared by the SetR-tree and KcR-tree.

Both indexes are R-trees whose nodes carry textual payloads stored as
separate pager records, mirroring the paper's pointer-based layout
(``pks``/``pku``/``pki`` in Section IV-B, ``pcm`` in Section V-A):

* a **leaf** node holds :class:`ObjectEntry` values — object id, point
  location, and a pointer (record id) to the object's keyword set;
* a **branch** node holds :class:`ChildEntry` values — child node
  record id, child MBR, and a pointer to the child's textual summary
  (union+intersection pair for the SetR-tree, ``(cnt, keyword-count
  map)`` for the KcR-tree).

Entries are plain frozen dataclasses; the node is mutable only during
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from ..model.geometry import Point, Rect
from ..storage.packing import SlotRef

__all__ = ["ObjectEntry", "ChildEntry", "Node", "Entry"]


@dataclass(frozen=True)
class ObjectEntry:
    """A leaf entry: ``(o, mbr, pks)`` with a degenerate point MBR.

    ``doc_record`` is a packed-slot reference: keyword sets are stored
    several-per-page (see :mod:`repro.storage.packing`).
    """

    oid: int
    loc: Point
    doc_record: SlotRef


@dataclass(frozen=True)
class ChildEntry:
    """A branch entry: child pointer, child MBR, textual-summary pointer."""

    child_id: int
    rect: Rect
    aux_record: int


Entry = Union[ObjectEntry, ChildEntry]


@dataclass
class Node:
    """One tree node as stored in the pager.

    ``node_id`` is the pager record id of the node itself; it is
    assigned by the builder immediately after allocation (the record
    payload is stored by reference, so the post-allocation fix-up is
    visible on later fetches).  ``aux_record`` is the record holding
    this node's textual summary — the same record the parent's
    :class:`ChildEntry` points at; nodes carry it too so dynamic
    insertion can maintain summaries along the root-to-leaf path
    without parent pointers.

    ``packed_record`` (leaves only; ``-1`` elsewhere or when absent)
    points at the node's packed columnar block
    (:class:`repro.core.vectorized.PackedLeaf`) — the derived
    float64-coordinate/keyword-bitmask mirror the vectorized scoring
    kernels read.  It is maintained alongside the summary on every
    structural change.
    """

    node_id: int
    is_leaf: bool
    rect: Rect
    entries: List[Entry]
    level: int  # 0 for leaves, parents one higher
    aux_record: int = -1
    packed_record: int = -1

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def object_entries(self) -> Sequence[ObjectEntry]:
        if not self.is_leaf:
            raise TypeError("object_entries on a branch node")
        return self.entries  # type: ignore[return-value]

    @property
    def child_entries(self) -> Sequence[ChildEntry]:
        if self.is_leaf:
            raise TypeError("child_entries on a leaf node")
        return self.entries  # type: ignore[return-value]
