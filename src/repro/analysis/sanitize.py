"""Runtime invariant sanitizer for the index and storage layers.

Theorem 1's SetR-tree bound — and with it the correctness of every
pruning decision BS/AdvancedBS make — holds only under structural
preconditions: each node's MBR contains everything below it, its union
set is a superset of every descendant document, and its intersection
set is a subset of every descendant document.  The KcR-tree's
MaxDom/MinDom estimation (Theorems 2–3) additionally needs the
keyword-count maps to be *exact* subtree statistics.  Bulk loading
establishes all of this; dynamic inserts, deletes, splits, and
condense-tree reinsertions must each preserve it — and a silent slip
produces wrong answers, not crashes.

This module walks a built tree (and its buffer pool) and reports every
violation instead of stopping at the first, so a corrupted structure
can be diagnosed in one pass.  All reads go through
:meth:`~repro.storage.buffer_pool.BufferPool.peek`, which charges no
I/O and leaves the LRU state untouched — sanitizing between experiment
repetitions does not distort the paper's VII-A1 counters.

Violation ``kind`` values:

==================== ==============================================
``stored-mbr``       node's stored MBR differs from its entries' MBR
``mbr-containment``  child MBR escapes the parent entry's MBR
``entry-mbr``        parent entry's MBR differs from the child node's
``fan-out``          node holds more entries than the capacity
``leaf-level``       leaf at a nonzero level / level chain broken
``union-set``        union set misses a descendant document's term
``intersection-set`` intersection set has a term some descendant lacks
``count-map``        KcR count map disagrees with subtree statistics
``object-coverage``  dataset/tree membership mismatch or duplicate
``node-count``       tree's node_count/height metadata is stale
``buffer-accounting`` pool page accounting or hit/miss ledger broken
``checksum-mismatch`` record failed checksum verification (bit-rot/torn)
``record-missing``   referenced record no longer exists on the disk
``quarantined-subtree`` engine took the index out of service (health())
``shard-orphan-file`` shard directory holds a file no manifest entry claims
``shard-missing-file`` manifest references a shard file that is absent
``shard-tile-overlap`` two shard tiles' MBRs overlap (object double-owned)
``shard-ledger-mismatch`` manifest ledger_total != sum of shard ledgers
==================== ==============================================

The walk is **corruption-tolerant**: a record that fails checksum
verification or has vanished is reported under the corruption kinds
above and its subtree skipped, rather than aborting the scan — one
pass diagnoses a damaged tree end to end.  :func:`scan_corruption`
filters a full check down to those kinds; it is the shared validator
behind both ``repro-whynot check-invariants`` and the engine's
:meth:`~repro.core.engine.WhyNotEngine.health` / chaos verification.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Tuple

from ..errors import (
    CorruptRecordError,
    InvariantViolationError,
    RecordNotFoundError,
)
from ..index.entries import Node
from ..index.kcr_tree import KcRTree
from ..index.rtree import RTreeBase
from ..index.setr_tree import SetRTree
from ..model.geometry import Rect, bounding_rect
from ..storage.buffer_pool import BufferPool

__all__ = [
    "InvariantViolation",
    "SanitizerReport",
    "check_tree",
    "check_buffer_pool",
    "check_shard_manifest",
    "scan_corruption",
    "CORRUPTION_KINDS",
]

CORRUPTION_KINDS = frozenset(
    {"checksum-mismatch", "record-missing", "quarantined-subtree"}
)
"""Violation kinds that indicate storage damage rather than logic bugs."""


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant at one location."""

    kind: str
    location: str
    message: str

    def format(self) -> str:
        return f"[{self.kind}] {self.location}: {self.message}"


@dataclass
class SanitizerReport:
    """Everything one sanitizer pass found."""

    violations: List[InvariantViolation] = field(default_factory=list)
    nodes_checked: int = 0
    objects_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, location: str, message: str) -> None:
        self.violations.append(InvariantViolation(kind, location, message))

    def merge(self, other: "SanitizerReport") -> None:
        self.violations.extend(other.violations)
        self.nodes_checked += other.nodes_checked
        self.objects_seen += other.objects_seen

    def raise_if_violations(self) -> None:
        """Raise :class:`InvariantViolationError` listing every finding."""
        if self.violations:
            summary = "; ".join(v.format() for v in self.violations[:10])
            more = len(self.violations) - 10
            if more > 0:
                summary += f"; … and {more} more"
            raise InvariantViolationError(
                f"{len(self.violations)} invariant violation(s): {summary}"
            )

    def format(self) -> str:
        lines = [
            f"nodes checked:  {self.nodes_checked}",
            f"objects seen:   {self.objects_seen}",
            f"violations:     {len(self.violations)}",
        ]
        lines.extend("  " + v.format() for v in self.violations)
        return "\n".join(lines)


def _peek_record(
    tree: RTreeBase, record_id: int, report: SanitizerReport, where: str
) -> Any:
    """Peek a record, converting integrity errors into violations.

    Returns the payload, or ``None`` when the record is corrupt or
    missing — in which case the violation is already recorded under
    the corruption kinds and the caller should skip the subtree.
    """
    try:
        return tree.buffer.peek(record_id)
    except CorruptRecordError as exc:
        report.add("checksum-mismatch", where, str(exc))
    except RecordNotFoundError as exc:
        report.add("record-missing", where, str(exc))
    return None


def _try_peek_node(tree: RTreeBase, node_id: int) -> Optional[Node]:
    """Silent node peek for cross-checks whose target is also walked
    (and therefore reported) elsewhere — avoids double-reporting."""
    try:
        payload = tree.buffer.peek(node_id)
    except (CorruptRecordError, RecordNotFoundError):
        return None
    return payload if isinstance(payload, Node) else None


def check_tree(tree: RTreeBase) -> SanitizerReport:
    """Validate every structural invariant of a built tree.

    Collects (rather than raises on) violations; callers who want an
    exception use :meth:`SanitizerReport.raise_if_violations`.
    """
    report = SanitizerReport()
    seen_objects: Counter = Counter()
    _check_node(
        tree,
        tree.root_id,
        parent_rect=None,
        expected_level=None,
        report=report,
        seen_objects=seen_objects,
    )
    _check_coverage(tree, seen_objects, report)
    if report.nodes_checked != tree.node_count:
        report.add(
            "node-count",
            "tree",
            f"walk visited {report.nodes_checked} nodes but node_count "
            f"says {tree.node_count}",
        )
    root = _try_peek_node(tree, tree.root_id)
    if root is not None and root.level + 1 != tree.height:
        report.add(
            "node-count",
            "tree",
            f"root level {root.level} implies height {root.level + 1}, "
            f"tree.height says {tree.height}",
        )
    report.merge(check_buffer_pool(tree.buffer))
    return report


def _check_node(
    tree: RTreeBase,
    node_id: int,
    parent_rect: Optional[Rect],
    expected_level: Optional[int],
    report: SanitizerReport,
    seen_objects: Counter,
) -> Tuple[FrozenSet[int], FrozenSet[int], Counter, int]:
    """Recursive walk; returns (union, intersection, counts, cardinality)
    of the subtree's documents for the parent's summary checks."""
    where = f"node {node_id}"
    payload = _peek_record(tree, node_id, report, where)
    node = payload if isinstance(payload, Node) else None
    if node is None:
        if payload is not None:
            report.add("stored-mbr", where, "record is not a tree node")
        return frozenset(), frozenset(), Counter(), 0
    report.nodes_checked += 1

    if not node.entries:
        report.add("fan-out", where, "node has no entries")
        return frozenset(), frozenset(), Counter(), 0
    if len(node.entries) > tree.capacity:
        report.add(
            "fan-out",
            where,
            f"{len(node.entries)} entries exceed capacity {tree.capacity}",
        )

    if expected_level is not None and node.level != expected_level:
        report.add(
            "leaf-level",
            where,
            f"level {node.level} but parent implies {expected_level}",
        )
    if node.is_leaf and node.level != 0:
        report.add("leaf-level", where, f"leaf stored at level {node.level}")

    actual_rect = bounding_rect(
        Rect.from_point(e.loc) if node.is_leaf else e.rect for e in node.entries
    )
    if actual_rect != node.rect:
        report.add(
            "stored-mbr",
            where,
            f"stored MBR {node.rect} != entries' MBR {actual_rect}",
        )
    if parent_rect is not None and not parent_rect.contains_rect(node.rect):
        report.add(
            "mbr-containment",
            where,
            f"MBR {node.rect} escapes parent entry MBR {parent_rect}",
        )

    counts: Counter = Counter()
    cardinality = 0
    docs: List[FrozenSet[int]] = []
    if node.is_leaf:
        for entry in node.entries:
            seen_objects[entry.oid] += 1
            report.objects_seen += 1
            page = _peek_record(
                tree,
                entry.doc_record.record,
                report,
                f"object {entry.oid} ({where})",
            )
            if page is None:
                continue  # corrupt/missing doc page, already reported
            try:
                doc = page[entry.doc_record.slot]
            except (TypeError, IndexError, KeyError):
                doc = None
            if not isinstance(doc, frozenset):
                report.add(
                    "object-coverage",
                    where,
                    f"object {entry.oid}: doc record "
                    f"{entry.doc_record} is not a keyword set",
                )
                continue
            docs.append(doc)
            counts.update(doc)
            cardinality += 1
    else:
        for entry in node.entries:
            child = _try_peek_node(tree, entry.child_id)
            if child is not None and entry.rect != child.rect:
                report.add(
                    "entry-mbr",
                    where,
                    f"entry for child {entry.child_id} carries MBR "
                    f"{entry.rect} but the child stores {child.rect}",
                )
            c_union, c_inter, c_counts, c_cnt = _check_node(
                tree,
                entry.child_id,
                parent_rect=entry.rect,
                expected_level=node.level - 1,
                report=report,
                seen_objects=seen_objects,
            )
            # The parent-side summary record is what search reads.
            _check_summary(
                tree, entry.aux_record, c_union, c_inter, c_counts, c_cnt,
                f"node {entry.child_id} (via {where})", report,
            )
            docs.append(c_union)
            counts.update(c_counts)
            cardinality += c_cnt

    union = frozenset(counts)
    intersection = frozenset(
        t for t, c in counts.items() if c == cardinality
    )
    if parent_rect is None:  # root: check its own summary record too
        _check_summary(
            tree,
            tree.root_summary_record,
            union,
            intersection,
            counts,
            cardinality,
            f"{where} (root summary)",
            report,
        )
    return union, intersection, counts, cardinality


def _check_summary(
    tree: RTreeBase,
    aux_record: int,
    union: FrozenSet[int],
    intersection: FrozenSet[int],
    counts: Counter,
    cardinality: int,
    where: str,
    report: SanitizerReport,
) -> None:
    """Check a stored textual summary against recomputed subtree truth.

    SetR-tree: Theorem 1 needs the stored union to be ⊇ every descendant
    document (equivalently ⊇ their union) and the stored intersection to
    be ⊆ every descendant document (⊆ their intersection).  KcR-tree:
    Theorems 2–3 consume the counts as exact statistics, so exact
    equality is required.  Trees without textual payloads (the
    inverted-file baseline) are skipped.
    """
    payload = _peek_record(tree, aux_record, report, f"summary of {where}")
    if payload is None:
        return
    if isinstance(tree, SetRTree):
        if not (isinstance(payload, tuple) and len(payload) == 2):
            report.add("union-set", where, "summary record is not a set pair")
            return
        stored_union, stored_inter = payload
        missing = union - stored_union
        if missing:
            report.add(
                "union-set",
                where,
                f"union set misses descendant terms {sorted(missing)[:5]} "
                "(Theorem 1 upper bound no longer admissible)",
            )
        extra = stored_inter - intersection
        if extra:
            report.add(
                "intersection-set",
                where,
                f"intersection set claims terms {sorted(extra)[:5]} that "
                "some descendant lacks (Theorem 1 denominator too small)",
            )
    elif isinstance(tree, KcRTree):
        if not (isinstance(payload, tuple) and len(payload) == 2):
            report.add("count-map", where, "summary record is not (cnt, kcm)")
            return
        stored_cnt, stored_kcm = payload
        if stored_cnt != cardinality:
            report.add(
                "count-map",
                where,
                f"cnt={stored_cnt} but the subtree holds {cardinality} objects",
            )
        if dict(stored_kcm) != dict(counts):
            diff = {
                t: (stored_kcm.get(t), counts.get(t))
                for t in set(stored_kcm) | set(counts)
                if stored_kcm.get(t) != counts.get(t)
            }
            sample = dict(list(diff.items())[:5])
            report.add(
                "count-map",
                where,
                f"keyword-count map disagrees with subtree statistics on "
                f"{len(diff)} term(s), e.g. {sample} (stored, actual)",
            )


def _check_coverage(
    tree: RTreeBase, seen_objects: Counter, report: SanitizerReport
) -> None:
    dataset_ids = {obj.oid for obj in tree.dataset}
    indexed_ids = set(seen_objects)
    duplicates = sorted(oid for oid, n in seen_objects.items() if n > 1)
    if duplicates:
        report.add(
            "object-coverage",
            "tree",
            f"objects indexed more than once: {duplicates[:10]}",
        )
    missing = sorted(dataset_ids - indexed_ids)
    if missing:
        report.add(
            "object-coverage",
            "tree",
            f"dataset objects absent from the tree: {missing[:10]}",
        )
    phantom = sorted(indexed_ids - dataset_ids)
    if phantom:
        report.add(
            "object-coverage",
            "tree",
            f"tree references objects not in the dataset: {phantom[:10]}",
        )


def check_buffer_pool(pool: BufferPool) -> SanitizerReport:
    """Validate the pool's page accounting and hit/miss ledger.

    * cached spans must sum to ``used_pages``;
    * the cache must fit in ``capacity_pages``;
    * every cached record must still exist on the pager with the same
      span (a freed or re-spanned record left in cache serves stale
      payloads without charging I/O);
    * every fetch must have been exactly one hit or one miss — the
      I/O-counter analogue of "all pins released".
    """
    report = SanitizerReport()
    frames = pool.cached_records()
    span_sum = sum(frames.values())
    if span_sum != pool.used_pages:
        report.add(
            "buffer-accounting",
            "pool",
            f"cached spans sum to {span_sum} pages but used_pages="
            f"{pool.used_pages}",
        )
    if pool.capacity_pages and pool.used_pages > pool.capacity_pages:
        report.add(
            "buffer-accounting",
            "pool",
            f"used_pages={pool.used_pages} exceeds capacity_pages="
            f"{pool.capacity_pages}",
        )
    for record_id, span in frames.items():
        if not pool.exists(record_id):
            report.add(
                "buffer-accounting",
                f"record {record_id}",
                "cached record no longer exists on the pager",
            )
        elif pool.span(record_id) != span:
            report.add(
                "buffer-accounting",
                f"record {record_id}",
                f"cached span {span} != pager span {pool.span(record_id)}",
            )
    if pool.fetch_count != pool.hit_count + pool.miss_count:
        report.add(
            "buffer-accounting",
            "pool",
            f"fetches={pool.fetch_count} but hits+misses="
            f"{pool.hit_count + pool.miss_count}",
        )
    return report


def check_shard_manifest(directory: Any) -> SanitizerReport:
    """Validate a sharded-index manifest directory (persistence v2).

    The shard layout's own invariants, checked offline from the
    manifest alone (no dataset needed):

    * every ``shard-*.json`` file in the directory is claimed by a
      manifest entry (``shard-orphan-file``) and every claimed file
      exists (``shard-missing-file``);
    * tile MBRs are interior-disjoint — a point on a shared cut edge
      routes to exactly one tile, so genuine *area* overlap means an
      object could be double-owned (``shard-tile-overlap``);
    * the persisted ``ledger_total`` equals the sum of the per-shard
      ledgers, field by field (``shard-ledger-mismatch``).

    A manifest that cannot be read at all raises
    :class:`~repro.errors.PersistenceError` (storage damage, not a
    layout bug).
    """
    from pathlib import Path

    from ..index.sharded import KINDS, MANIFEST_NAME, _MANIFEST_VERSION
    from ..storage.integrity import load_checked_json

    path = Path(directory)
    body = load_checked_json(
        path / MANIFEST_NAME,
        kind="sharded index",
        supported_versions=(_MANIFEST_VERSION,),
        checksum_required_from=_MANIFEST_VERSION,
    )
    report = SanitizerReport()
    entries = sorted(body["shards"], key=lambda entry: entry["tid"])

    claimed = set()
    for entry in entries:
        for kind, filename in entry["files"].items():
            claimed.add(filename)
            if not (path / filename).exists():
                report.add(
                    "shard-missing-file",
                    f"shard {entry['tid']}",
                    f"manifest references {filename} ({kind} tree) but the "
                    "file is absent",
                )
    on_disk = {p.name for p in path.glob("shard-*.json")}
    for orphan in sorted(on_disk - claimed):
        report.add(
            "shard-orphan-file",
            "directory",
            f"{orphan} is not referenced by any manifest entry",
        )

    rects = [(entry["tid"], Rect(*entry["rect"])) for entry in entries]
    for i in range(len(rects)):
        tid_a, a = rects[i]
        for tid_b, b in rects[i + 1 :]:
            x_overlap = min(a.max_x, b.max_x) - max(a.min_x, b.min_x)
            y_overlap = min(a.max_y, b.max_y) - max(a.min_y, b.min_y)
            if x_overlap > 0 and y_overlap > 0:
                report.add(
                    "shard-tile-overlap",
                    f"shards {tid_a}/{tid_b}",
                    f"tile MBRs share interior area {x_overlap * y_overlap!r}",
                )

    for kind in KINDS:
        totals: dict = {}
        for entry in entries:
            for field_name, value in entry["ledger"][kind].items():
                totals[field_name] = totals.get(field_name, 0) + value
        stored = body["ledger_total"][kind]
        if totals != stored:
            diff = {
                f: (stored.get(f), totals.get(f))
                for f in set(stored) | set(totals)
                if stored.get(f) != totals.get(f)
            }
            report.add(
                "shard-ledger-mismatch",
                f"ledger_total[{kind}]",
                f"manifest total disagrees with the shard sum on "
                f"{sorted(diff)} (stored, actual): {diff}",
            )
    return report


def scan_corruption(tree: RTreeBase) -> SanitizerReport:
    """Corruption-focused view of :func:`check_tree`.

    Runs the same full structural walk (one validator for everything —
    ``check-invariants``, the engine's health report, and the chaos
    verb all agree by construction) but keeps only the
    :data:`CORRUPTION_KINDS` violations: checksum mismatches and
    missing records.  Secondary fallout of damage — e.g. coverage gaps
    from an unreachable subtree — is deliberately filtered out, so an
    empty report means "no storage damage detected", not "no
    violations of any kind".

    Peeks never consult the fault injector or charge I/O, so scanning
    perturbs neither a seeded fault schedule nor the paper's counters.
    """
    full = check_tree(tree)
    report = SanitizerReport(
        nodes_checked=full.nodes_checked, objects_seen=full.objects_seen
    )
    report.violations.extend(
        v for v in full.violations if v.kind in CORRUPTION_KINDS
    )
    return report
