"""Per-function local effect extraction.

For every function in a :class:`~repro.analysis.callgraph.CodeGraph`
this module computes the *local* (intraprocedural) facts the fixpoint
in :mod:`repro.analysis.flow` propagates:

* **mutations** — assignments, ``del``, augmented assignments, and
  known mutator-method calls (``append``/``update``/``pop``/…)
  classified by the root of the target chain: ``self``, a parameter, a
  module-level name, a closed-over name, or a plain local.  Each
  mutation records the statement index (pre-order within the function
  body) and whether it is lexically guarded by a ``with <...lock...>:``
  block.
* **call sites** — resolved via the call graph, each with its statement
  index, lock-guard flag, and whether the surrounding ``try`` masks
  storage exceptions.  Callables passed as arguments (thread targets,
  ``pool.map(worker, …)``) produce reference edges so closures on the
  hot path are reachable.
* **raises** — explicit unmasked ``raise <StorageError-family>``.
* **I/O** — raw pager access (syntactic ``.pager.<m>()`` chains, a
  typed receiver whose class is the ``Pager``, or construction of a
  ``Pager``-named class), file I/O (``open``/``read_text``/…), and
  buffer-pool access.
* **nondeterminism** — calls into ``random``/``time``/``uuid``/… name
  families (``time.sleep`` is excluded: it delays, it does not vary
  results).

Lambdas are inlined into their enclosing function; nested ``def``s are
separate graph nodes and only contribute through call/reference edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .callgraph import CallTarget, CodeGraph, FunctionInfo, dotted_name

__all__ = [
    "CallSite",
    "FunctionEffects",
    "IOSite",
    "Mutation",
    "extract_effects",
    "extract_all_effects",
]

# Methods that mutate their receiver in-place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
        "move_to_end",
        "__setitem__",
        "__delitem__",
    }
)

# Module-level callables that mutate their first (or named) argument.
FUNC_ARG_MUTATORS: Dict[str, int] = {
    "heapq.heappush": 0,
    "heapq.heappop": 0,
    "heapq.heapreplace": 0,
    "heapq.heappushpop": 0,
    "heapq.heapify": 0,
    "setattr": 0,
    "delattr": 0,
}

STORAGE_ERROR_NAMES = frozenset(
    {
        "StorageError",
        "TransientIOError",
        "CorruptRecordError",
        "RecordNotFoundError",
        "PersistenceError",
    }
)

# Exception names whose handlers mask the storage family entirely.
MASKING_HANDLER_NAMES = frozenset(
    {"StorageError", "ReproError", "Exception", "BaseException"}
)

# The nondeterminism taxonomy lives in repro.analysis.registry so the
# nondet effect and the determinism-taint checker share one source of
# truth (the time.sleep exclusion included).  Re-exported for
# compatibility with existing imports.
from .registry import NONDET_NAMES, NONDET_PREFIXES, nondet_kind

FILE_IO_NAMES = frozenset({"open", "io.open", "os.open"})
FILE_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "unlink", "mkdir"}
)


@dataclass
class Mutation:
    """One write to state, classified by the root of the target chain."""

    kind: str  # "self" | "param" | "global" | "closure" | "local"
    root: Optional[str]  # root name of the target chain, e.g. "counters"
    attr: Optional[str]  # first attribute off the root, e.g. "_docs"
    line: int
    stmt_index: int
    guarded: bool  # lexically inside a with-lock block


@dataclass
class CallSite:
    """One call (or callable reference) with its masking context."""

    target: CallTarget
    line: int
    stmt_index: int
    in_lock: bool
    storage_masked: bool
    receiver_kind: Optional[str]  # scope of the receiver root, if any
    is_reference: bool = False  # function passed as a value, not called


@dataclass
class IOSite:
    """A raw-pager / file / buffer-pool access site."""

    kind: str  # "raw-io" | "file-io" | "buffer-io"
    line: int
    stmt_index: int
    detail: str


@dataclass
class FunctionEffects:
    """All local facts for one function."""

    key: str
    mutations: List[Mutation] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    io_sites: List[IOSite] = field(default_factory=list)
    raise_lines: List[int] = field(default_factory=list)
    raise_indexes: List[int] = field(default_factory=list)
    nondet_names: Set[str] = field(default_factory=set)

    def unguarded_mutations(self, kinds: Optional[Set[str]] = None) -> List[Mutation]:
        out = []
        for mut in self.mutations:
            if mut.guarded:
                continue
            if kinds is not None and mut.kind not in kinds:
                continue
            out.append(mut)
        return out


def _chain_root(expr: ast.expr) -> Optional[ast.Name]:
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr
    return None


def _first_attr(expr: ast.expr) -> Optional[str]:
    """First attribute hanging off the root name: ``self.a.b`` -> ``a``."""
    attrs: List[str] = []
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and attrs:
        return attrs[-1]
    return None


def _chain_has_attr(expr: ast.expr, name: str) -> bool:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id == name


class _ScopeModel:
    """Name classification for one function (with enclosing chain)."""

    def __init__(self, graph: CodeGraph, func: FunctionInfo) -> None:
        self.params: Set[str] = set()
        self.locals: Set[str] = set()
        self.globals_declared: Set[str] = set()
        self.nonlocals_declared: Set[str] = set()
        self.enclosing: Set[str] = set()
        node = func.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.params.add(arg.arg)
            self._collect_bindings(node)
        scope = graph.functions.get(func.parent) if func.parent else None
        while scope is not None:
            outer = scope.node
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = outer.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    self.enclosing.add(arg.arg)
                self.enclosing.update(_bound_names(outer))
            scope = graph.functions.get(scope.parent) if scope.parent else None

    def _collect_bindings(self, node: ast.AST) -> None:
        self.locals.update(_bound_names(node))
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                self.globals_declared.update(child.names)
            elif isinstance(child, ast.Nonlocal):
                self.nonlocals_declared.update(child.names)

    def classify(self, name: str) -> str:
        if name in ("self", "cls"):
            return "self"
        if name in self.globals_declared:
            return "global"
        if name in self.nonlocals_declared:
            return "closure"
        if name in self.params:
            return "param"
        if name in self.locals:
            return "local"
        if name in self.enclosing:
            return "closure"
        return "global"


def _bound_names(node: ast.AST) -> Set[str]:
    """Names bound by assignment/for/with/except/def within ``node``,
    not descending into nested function or class bodies."""
    bound: Set[str] = set()

    def visit(current: ast.AST) -> None:
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(child.name)
                continue
            if isinstance(child, ast.ClassDef):
                bound.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                bound.add(child.id)
            if isinstance(child, ast.ExceptHandler) and child.name:
                bound.add(child.name)
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            visit(child)

    visit(node)
    return bound


def _is_lock_context(item: ast.withitem) -> bool:
    dotted = dotted_name(item.context_expr)
    if dotted is None and isinstance(item.context_expr, ast.Call):
        dotted = dotted_name(item.context_expr.func)
    return dotted is not None and "lock" in dotted.lower()


def _handler_masks_storage(handler: ast.ExceptHandler) -> bool:
    """True when the handler catches the storage family and does not
    re-raise it (a bare ``raise`` in the handler keeps the effect)."""
    names: List[str] = []
    if handler.type is None:
        names.append("BaseException")
    else:
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        for node in types:
            dotted = dotted_name(node)
            if dotted is not None:
                names.append(dotted.split(".")[-1])
    if not any(n in MASKING_HANDLER_NAMES for n in names):
        return False
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return False
    return True


def _try_masks_storage(node: ast.Try) -> bool:
    return any(_handler_masks_storage(h) for h in node.handlers)


class _EffectVisitor:
    """Walks one function body, producing :class:`FunctionEffects`."""

    def __init__(self, graph: CodeGraph, func: FunctionInfo) -> None:
        self.graph = graph
        self.func = func
        self.scope = _ScopeModel(graph, func)
        self.effects = FunctionEffects(key=func.key)
        self.stmt_index = 0
        self.lock_depth = 0
        self.mask_depth = 0

    # -- helpers -------------------------------------------------------

    def _receiver_kind(self, expr: Optional[ast.expr]) -> Optional[str]:
        if expr is None:
            return None
        root = _chain_root(expr)
        if root is None:
            return None
        return self.scope.classify(root.id)

    def _record_mutation(self, target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_mutation(elt, line)
            return
        if isinstance(target, ast.Starred):
            self._record_mutation(target.value, line)
            return
        root = _chain_root(target)
        if root is None:
            return
        kind = self.scope.classify(root.id)
        is_rebind = isinstance(target, ast.Name)
        if is_rebind and kind in ("param", "local", "self"):
            # Rebinding a local name is not a mutation of shared state.
            return
        attr: Optional[str] = None
        if kind == "self":
            attr = _first_attr(target)
        elif isinstance(target, ast.Name):
            attr = target.id
        else:
            attr = _first_attr(target) or root.id
        self.effects.mutations.append(
            Mutation(
                kind=kind,
                root=root.id,
                attr=attr,
                line=line,
                stmt_index=self.stmt_index,
                guarded=self.lock_depth > 0,
            )
        )

    def _record_io(self, kind: str, line: int, detail: str) -> None:
        self.effects.io_sites.append(
            IOSite(kind=kind, line=line, stmt_index=self.stmt_index, detail=detail)
        )

    def _classify_call(self, call: ast.Call) -> None:
        target = self.graph.resolve_call(self.func, call)
        receiver_kind = self._receiver_kind(target.receiver)
        line = call.lineno
        self.effects.calls.append(
            CallSite(
                target=target,
                line=line,
                stmt_index=self.stmt_index,
                in_lock=self.lock_depth > 0,
                storage_masked=self.mask_depth > 0,
                receiver_kind=receiver_kind,
            )
        )
        dotted = dotted_name(call.func)
        terminal = dotted.split(".")[-1] if dotted else None

        # Mutator-method calls on unresolved receivers.
        if (
            target.kind != "local"
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in MUTATOR_METHODS
        ):
            self._record_mutation_for_expr(call.func.value, line)

        # Known argument-mutating callables.
        if dotted is not None:
            mut_key = dotted if dotted in FUNC_ARG_MUTATORS else None
            if mut_key is None and terminal in FUNC_ARG_MUTATORS:
                mut_key = terminal
            if mut_key is not None and call.args:
                index = FUNC_ARG_MUTATORS[mut_key]
                if index < len(call.args):
                    self._record_mutation_for_expr(call.args[index], line)

        # Raw pager access: syntactic chain through a "pager" attribute,
        # a receiver typed as a Pager class, or Pager construction.
        raw = False
        if isinstance(call.func, ast.Attribute) and _chain_has_attr(
            call.func.value, "pager"
        ):
            raw = True
        elif terminal == "Pager" or (
            target.kind == "external" and target.key and target.key.endswith(".Pager")
        ):
            raw = True
        elif target.kind == "local" and target.key:
            callee = self.graph.functions.get(target.key)
            if (
                callee is not None
                and callee.class_key is not None
                and callee.class_key.split(".")[-1] == "Pager"
                and callee.name != "__init__"
            ):
                raw = True
        if raw:
            self._record_io("raw-io", line, dotted or "pager access")

        # File I/O.
        if dotted in FILE_IO_NAMES or (
            target.kind != "local" and terminal in FILE_IO_METHODS
        ):
            self._record_io("file-io", line, dotted or str(terminal))

        # Buffer-pool I/O.
        buffer_io = False
        if target.kind == "local" and target.key:
            callee = self.graph.functions.get(target.key)
            if (
                callee is not None
                and callee.class_key is not None
                and callee.class_key.split(".")[-1] == "BufferPool"
            ):
                buffer_io = True
        elif isinstance(call.func, ast.Attribute) and _chain_has_attr(
            call.func.value, "buffer"
        ):
            buffer_io = True
        if buffer_io:
            self._record_io("buffer-io", line, dotted or "buffer access")

        # Nondeterminism (shared registry decides; time.sleep excluded).
        ext = target.key if target.kind == "external" else dotted
        for candidate in (ext, dotted):
            if candidate is None:
                continue
            if nondet_kind(candidate) is not None:
                self.effects.nondet_names.add(candidate)
                break

        # Callable references passed as arguments (higher-order edges).
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            ref = self._callable_reference(arg)
            if ref is not None:
                self.effects.calls.append(
                    CallSite(
                        target=ref,
                        line=line,
                        stmt_index=self.stmt_index,
                        in_lock=self.lock_depth > 0,
                        storage_masked=self.mask_depth > 0,
                        receiver_kind=self._receiver_kind(ref.receiver),
                        is_reference=True,
                    )
                )

    def _callable_reference(self, expr: ast.expr) -> Optional[CallTarget]:
        if isinstance(expr, ast.Name):
            target = self.graph.resolve_name_target(self.func, expr.id)
            if target is not None and target.kind == "local":
                return target
            return None
        if isinstance(expr, ast.Attribute):
            receiver_type = self.graph.expr_type(self.func, expr.value)
            if receiver_type is not None:
                found = self.graph.lookup_method(receiver_type, expr.attr)
                if found is not None:
                    return CallTarget(
                        kind="local", key=found, receiver=expr.value, attr=expr.attr
                    )
        return None

    def _record_mutation_for_expr(self, expr: ast.expr, line: int) -> None:
        root = _chain_root(expr)
        if root is None:
            return
        kind = self.scope.classify(root.id)
        attr: Optional[str] = None
        if kind == "self":
            attr = _first_attr(expr)
        else:
            attr = _first_attr(expr) or root.id
        if kind == "local" and not isinstance(expr, (ast.Attribute, ast.Subscript)):
            # Mutating a plain local container is invisible outside.
            if attr is None or attr == root.id:
                return
        self.effects.mutations.append(
            Mutation(
                kind=kind,
                root=root.id,
                attr=attr,
                line=line,
                stmt_index=self.stmt_index,
                guarded=self.lock_depth > 0,
            )
        )

    # -- traversal -----------------------------------------------------

    def run(self) -> FunctionEffects:
        node = self.func.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in node.body:
                self._visit_stmt(stmt)
        return self.effects

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        self.stmt_index += 1
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate graph nodes
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                self._record_mutation(target, stmt.lineno)
            value = getattr(stmt, "value", None)
            if value is not None:
                self._visit_expr(value)
            if isinstance(stmt, ast.AugAssign):
                self._visit_expr(stmt.target)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_mutation(target, stmt.lineno)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._visit_expr(stmt.exc)
                name = None
                exc = stmt.exc
                if isinstance(exc, ast.Call):
                    name = dotted_name(exc.func)
                else:
                    name = dotted_name(exc)
                if (
                    name is not None
                    and name.split(".")[-1] in STORAGE_ERROR_NAMES
                    and self.mask_depth == 0
                ):
                    self.effects.raise_lines.append(stmt.lineno)
                    self.effects.raise_indexes.append(self.stmt_index)
            return
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            is_lock = any(_is_lock_context(item) for item in stmt.items)
            for item in stmt.items:
                self._visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._record_mutation(item.optional_vars, stmt.lineno)
            if is_lock:
                self.lock_depth += 1
            for child in stmt.body:
                self._visit_stmt(child)
            if is_lock:
                self.lock_depth -= 1
            return
        if isinstance(stmt, ast.Try):
            masks = _try_masks_storage(stmt)
            if masks:
                self.mask_depth += 1
            for child in stmt.body:
                self._visit_stmt(child)
            if masks:
                self.mask_depth -= 1
            for handler in stmt.handlers:
                for child in handler.body:
                    self._visit_stmt(child)
            for child in stmt.orelse:
                self._visit_stmt(child)
            for child in stmt.finalbody:
                self._visit_stmt(child)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._record_mutation(stmt.target, stmt.lineno)
            self._visit_expr(stmt.iter)
            for child in stmt.body:
                self._visit_stmt(child)
            for child in stmt.orelse:
                self._visit_stmt(child)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._visit_expr(stmt.test)
            for child in stmt.body:
                self._visit_stmt(child)
            for child in stmt.orelse:
                self._visit_stmt(child)
            return
        # Generic statements: walk contained expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(child)

    def _visit_expr(self, expr: ast.expr) -> None:
        for node in self._walk_expr(expr):
            if isinstance(node, ast.Call):
                self._classify_call(node)

    def _walk_expr(self, expr: ast.expr):
        """Walk an expression, inlining lambda bodies, skipping nested
        function definitions (there are none inside expressions)."""
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ast.Lambda):
                args = node.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    self.scope.locals.add(arg.arg)
                stack.append(node.body)
                continue
            stack.extend(ast.iter_child_nodes(node))


def extract_effects(graph: CodeGraph, func: FunctionInfo) -> FunctionEffects:
    return _EffectVisitor(graph, func).run()


def extract_all_effects(graph: CodeGraph) -> Dict[str, FunctionEffects]:
    return {
        key: extract_effects(graph, func)
        for key, func in sorted(graph.functions.items())
    }
