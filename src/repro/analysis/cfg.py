"""Per-function control-flow graphs for the dataflow checkers.

Statement-level CFGs with branch, loop, ``try``/``except``/``finally``,
and ``with`` edges, plus **exception edges** from possibly-raising
statements (the caller decides what "possibly raising" means — the
production checkers feed it the ``raises-storage`` facts from
:mod:`repro.analysis.effects` / :mod:`repro.analysis.flow`, so a
``pool.fetch(...)`` call sprouts an edge to the enclosing handler or to
the function's exceptional exit).

Nodes are statements (compound statements contribute a *head* node for
their test/iterator/context expression; their bodies are flattened into
the graph).  Three synthetic nodes frame every function: ``entry``,
``exit`` (normal return / fall-off-end), and ``exc-exit`` (unhandled
exception leaves the frame).  Normal and exceptional successors are
kept in separate edge maps so clients can treat the two flavors
differently — the lifetime checker reports a resource held on an
edge into ``exc-exit`` as *leak-on-exception*.

``finally`` blocks are modeled once (not duplicated per path): the
normal path runs body → finally → after, and the exceptional path runs
handler-dispatch → finally → outer exception target.  This is the
standard may-analysis approximation — path-insensitive, but every real
execution order is covered by some graph path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ensure_not_none
from .callgraph import dotted_name
from .effects import MASKING_HANDLER_NAMES

__all__ = ["CFG", "CFGNode", "build_cfg"]


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic control point."""

    index: int
    stmt: Optional[ast.stmt]  # None for synthetic nodes
    label: str  # "entry" | "exit" | "exc-exit" | "stmt" | "head" | ...
    with_stmt: Optional[ast.With] = None  # set on "with-exit" nodes

    @property
    def line(self) -> int:
        if self.stmt is not None:
            return getattr(self.stmt, "lineno", 0)
        return 0


@dataclass
class CFG:
    """Statement-level CFG with separate normal/exception edge maps."""

    nodes: List[CFGNode] = field(default_factory=list)
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    exc_succ: Dict[int, Set[int]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0
    exc_exit: int = 0

    def add_node(
        self,
        stmt: Optional[ast.stmt],
        label: str,
        with_stmt: Optional[ast.With] = None,
    ) -> int:
        index = len(self.nodes)
        self.nodes.append(
            CFGNode(index=index, stmt=stmt, label=label, with_stmt=with_stmt)
        )
        self.succ[index] = set()
        self.exc_succ[index] = set()
        return index

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)

    def add_exc_edge(self, src: int, dst: int) -> None:
        self.exc_succ[src].add(dst)

    def predecessors(self) -> Dict[int, Set[int]]:
        preds: Dict[int, Set[int]] = {n.index: set() for n in self.nodes}
        for src, dsts in self.succ.items():
            for dst in dsts:
                preds[dst].add(src)
        for src, dsts in self.exc_succ.items():
            for dst in dsts:
                preds[dst].add(src)
        return preds


def _handler_catches_storage(handler: ast.ExceptHandler) -> bool:
    """True when this handler can catch the storage-error family."""
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    from .effects import STORAGE_ERROR_NAMES

    catchable = STORAGE_ERROR_NAMES | MASKING_HANDLER_NAMES
    for node in types:
        dotted = dotted_name(node)
        if dotted is not None and dotted.split(".")[-1] in catchable:
            return True
    return False


class _Builder:
    """Recursive-descent CFG construction over a statement list.

    ``exc_target`` is the node unhandled exceptions flow to from the
    current context (an except-dispatch node, a finally head, or the
    function's exc-exit).  ``loop_stack`` holds (head, after) pairs for
    ``continue``/``break``.
    """

    def __init__(self, cfg: CFG, may_raise: Callable[[ast.stmt], bool]) -> None:
        self.cfg = cfg
        self.may_raise = may_raise
        self.loop_stack: List[Tuple[int, int]] = []

    def build_body(
        self, body: Sequence[ast.stmt], exc_target: int
    ) -> Tuple[Optional[int], List[int]]:
        """Wire a statement list; returns (first node, dangling ends).

        Dangling ends are nodes whose normal successor is "whatever
        comes after this block".  ``first`` is None for an empty body.
        """
        first: Optional[int] = None
        ends: List[int] = []
        for stmt in body:
            head, new_ends = self.build_stmt(stmt, exc_target)
            if head is None:
                continue
            if first is None:
                first = head
            else:
                for end in ends:
                    self.cfg.add_edge(end, head)
            ends = new_ends
        return first, ends

    # ------------------------------------------------------------------

    def build_stmt(
        self, stmt: ast.stmt, exc_target: int
    ) -> Tuple[Optional[int], List[int]]:
        cfg = self.cfg
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are separate graph nodes elsewhere;
            # here the def is just a binding statement.
            node = cfg.add_node(stmt, "stmt")
            return node, [node]

        if isinstance(stmt, ast.Return):
            node = cfg.add_node(stmt, "stmt")
            cfg.add_edge(node, cfg.exit)
            self._maybe_exc(node, stmt, exc_target)
            return node, []

        if isinstance(stmt, ast.Raise):
            node = cfg.add_node(stmt, "stmt")
            cfg.add_exc_edge(node, exc_target)
            return node, []

        if isinstance(stmt, ast.Break):
            node = cfg.add_node(stmt, "stmt")
            if self.loop_stack:
                cfg.add_edge(node, self.loop_stack[-1][1])
            return node, []

        if isinstance(stmt, ast.Continue):
            node = cfg.add_node(stmt, "stmt")
            if self.loop_stack:
                cfg.add_edge(node, self.loop_stack[-1][0])
            return node, []

        if isinstance(stmt, ast.If):
            head = cfg.add_node(stmt, "head")
            self._maybe_exc(head, stmt, exc_target)
            ends: List[int] = []
            then_first, then_ends = self.build_body(stmt.body, exc_target)
            if then_first is not None:
                cfg.add_edge(head, then_first)
                ends.extend(then_ends)
            else:
                ends.append(head)
            else_first, else_ends = self.build_body(stmt.orelse, exc_target)
            if else_first is not None:
                cfg.add_edge(head, else_first)
                ends.extend(else_ends)
            else:
                ends.append(head)
            return head, ends

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg.add_node(stmt, "head")
            self._maybe_exc(head, stmt, exc_target)
            # "after" is represented by the dangling-ends contract: the
            # loop head itself dangles (condition false / iterator
            # exhausted).  break needs a concrete node, so synthesize
            # one only when the body contains a break.
            after = cfg.add_node(None, "loop-exit")
            self.loop_stack.append((head, after))
            body_first, body_ends = self.build_body(stmt.body, exc_target)
            self.loop_stack.pop()
            if body_first is not None:
                cfg.add_edge(head, body_first)
                for end in body_ends:
                    cfg.add_edge(end, head)
            else:
                cfg.add_edge(head, head)
            ends = [after]
            else_first, else_ends = self.build_body(stmt.orelse, exc_target)
            if else_first is not None:
                cfg.add_edge(head, else_first)
                ends.extend(else_ends)
            else:
                ends.append(head)
            return head, ends

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = cfg.add_node(stmt, "head")
            self._maybe_exc(head, stmt, exc_target)
            body_first, body_ends = self.build_body(stmt.body, exc_target)
            with_exit = cfg.add_node(
                None,
                "with-exit",
                with_stmt=stmt if isinstance(stmt, ast.With) else None,
            )
            if body_first is not None:
                cfg.add_edge(head, body_first)
                for end in body_ends:
                    cfg.add_edge(end, with_exit)
            else:
                cfg.add_edge(head, with_exit)
            return head, [with_exit]

        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, exc_target)

        # Simple statement.
        node = cfg.add_node(stmt, "stmt")
        self._maybe_exc(node, stmt, exc_target)
        return node, [node]

    # ------------------------------------------------------------------

    def _build_try(
        self, stmt: ast.Try, exc_target: int
    ) -> Tuple[Optional[int], List[int]]:
        cfg = self.cfg
        # Where does an exception escaping this try go?  Through the
        # finally block (if any), then to the outer target.
        if stmt.finalbody:
            fin_first, fin_ends = self.build_body(stmt.finalbody, exc_target)
            # Non-empty by grammar: ``finally:`` requires a suite.
            fin_head = ensure_not_none(fin_first, "empty finally suite")
            # Re-raise continuation: after the finally body completes,
            # a pending exception leaves through the outer target.  A
            # synthetic node keeps the *post*-finally state on that
            # edge (the exception predates the finally; its effects —
            # e.g. fh.close() — do not).
            reraise = cfg.add_node(None, "reraise")
            for end in fin_ends:
                cfg.add_edge(end, reraise)
            cfg.add_exc_edge(reraise, exc_target)
        else:
            fin_head, fin_ends = exc_target, []

        dispatch = cfg.add_node(None, "except-dispatch")
        ends: List[int] = []

        body_first, body_ends = self.build_body(stmt.body, dispatch)
        handled_storage = any(
            _handler_catches_storage(h) for h in stmt.handlers
        )
        for handler in stmt.handlers:
            h_first, h_ends = self.build_body(handler.body, fin_head)
            if h_first is not None:
                cfg.add_edge(dispatch, h_first)
                ends.extend(h_ends)
            else:
                ends.append(dispatch)
        if not stmt.handlers or not handled_storage:
            # No handler catches the storage family: the exception
            # continues through finally to the outer context.
            cfg.add_exc_edge(dispatch, fin_head)

        else_first, else_ends = self.build_body(stmt.orelse, fin_head)
        normal_ends = list(body_ends)
        if else_first is not None:
            for end in body_ends:
                cfg.add_edge(end, else_first)
            normal_ends = else_ends

        if stmt.finalbody:
            for end in normal_ends:
                cfg.add_edge(end, fin_head)
            ends.extend(fin_ends)
            # Handlers already route to fin_head as their exc target;
            # their normal ends must run finally too.
            handler_ends = [e for e in ends if e not in fin_ends]
            for end in handler_ends:
                cfg.add_edge(end, fin_head)
            ends = list(fin_ends)
        else:
            ends.extend(normal_ends)

        first = body_first if body_first is not None else dispatch
        return first, ends

    def _maybe_exc(self, node: int, stmt: ast.stmt, exc_target: int) -> None:
        if self.may_raise(stmt):
            self.cfg.add_exc_edge(node, exc_target)


def _never_raises(_stmt: ast.stmt) -> bool:
    return False


def build_cfg(
    func_node: ast.AST,
    may_raise: Optional[Callable[[ast.stmt], bool]] = None,
) -> CFG:
    """Build the CFG for one ``FunctionDef``/``AsyncFunctionDef``.

    ``may_raise(stmt)`` decides which statements get an exception edge
    to the active handler (or the exceptional exit).  Pass the
    storage-raise predicate from the flow analysis for the production
    checkers; the default never adds exception edges from plain
    statements (explicit ``raise`` always does).
    """
    cfg = CFG()
    cfg.entry = cfg.add_node(None, "entry")
    cfg.exit = cfg.add_node(None, "exit")
    cfg.exc_exit = cfg.add_node(None, "exc-exit")
    builder = _Builder(cfg, may_raise or _never_raises)
    body = getattr(func_node, "body", [])
    first, ends = builder.build_body(body, cfg.exc_exit)
    if first is not None:
        cfg.add_edge(cfg.entry, first)
        for end in ends:
            cfg.add_edge(end, cfg.exit)
    else:
        cfg.add_edge(cfg.entry, cfg.exit)
    return cfg
