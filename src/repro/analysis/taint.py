"""Determinism-taint: unsanitized nondeterminism reaching an emit sink.

PRs 4–5 made bit-exact parity the repo's correctness currency; this
checker is the static side of that bargain.  A *source* produces a
value whose bits depend on something outside the seeded computation —
``time.*``, ``random.*`` (unseeded), directory enumeration order,
``set`` iteration order, ``hash()``/``id()``.  A *sink* is where bytes
become externally visible: the result dataclasses, the v2 checksummed
persistence writers, and the ``BENCH_*`` emitters.  A source value
reaching a sink without passing a *sanitizer* (``sorted``,
``numeric.quantize``, the deterministic merge helpers) is a finding.

The taxonomy (kinds, sanitizers, sink specs with per-field exemptions)
lives in :mod:`repro.analysis.registry`, shared with the ``nondet``
effect so the two passes cannot drift.

Mechanics: each function is solved intraprocedurally on its
:mod:`.cfg` graph with the :mod:`.dataflow` worklist solver — the
abstract state maps local names to sets of :class:`Taint` facts plus
parameter markers.  Function *summaries* (return taint, param→return
passthrough, param→sink flows) compose with the
:mod:`repro.analysis.callgraph` resolution; a reverse-dependency
worklist iterates the summaries to an interprocedural fixpoint, and
each finding carries the call-chain witness from the sink back to the
source expression.

Deliberate precision bounds (documented, tested):

* Mutation is not tracked — ``xs.append(tainted)`` does not taint
  ``xs``.  The flow checker's effect atoms cover mutation discipline.
* Attribute *stores* are not tracked; attribute *reads* propagate the
  receiver's taint but never the unordered-container flag (so the
  ubiquitous ``obj.doc`` frozensets do not flood — their
  order-independent consumption is the vectorized-parity suite's job).
* Tuple structure is tracked one level deep so ``part, busy =
  backend.request(...)`` keeps the ``time``-tainted busy measurement
  out of the result half.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Set, Tuple

from .callgraph import CodeGraph, FunctionInfo, dotted_name
from .cfg import CFG, CFGNode, build_cfg
from .dataflow import ForwardSolver
from .registry import (
    FS_ORDER_METHODS,
    HASH_ID_NAMES,
    KIND_FS_ORDER,
    KIND_HASH_ID,
    KIND_UNORDERED,
    SEEDED_CTOR_NAMES,
    UNORDERED_CTOR_NAMES,
    SinkSpec,
    nondet_kind,
    sanitizer_clears,
    sink_for_call,
)

__all__ = ["Taint", "TaintFinding", "TaintChecker", "check_taint"]

TAINT_RULE = "taint-to-sink"

_MAX_HOPS = 6
_MAX_TAINTS = 24
_ORDER_ITER_NAMES = frozenset({"list", "tuple", "iter", "enumerate", "reversed", "sum"})


class Taint(NamedTuple):
    """One nondeterministic fact attached to a value."""

    kind: str
    origin: str  # function key where the source expression lives
    line: int
    desc: str  # e.g. "time.perf_counter" or "iteration over set"
    hops: Tuple[Tuple[str, int], ...] = ()  # call sites crossed, recent first


class Value(NamedTuple):
    """Abstract value: taints + parameter markers + container shape."""

    taints: FrozenSet[Taint] = frozenset()
    params: FrozenSet[int] = frozenset()
    unordered: bool = False
    elements: Optional[Tuple["Value", ...]] = None


EMPTY = Value()


def _merge(values: Sequence[Value], unordered: bool = False) -> Value:
    taints: Set[Taint] = set()
    params: Set[int] = set()
    disorder = unordered
    for value in values:
        taints.update(value.taints)
        params.update(value.params)
        disorder = disorder or value.unordered
    return Value(_cap(taints), frozenset(params), disorder, None)


def _cap(taints: Set[Taint]) -> FrozenSet[Taint]:
    if len(taints) <= _MAX_TAINTS:
        return frozenset(taints)
    return frozenset(sorted(taints)[:_MAX_TAINTS])


def _join_value(a: Value, b: Value) -> Value:
    if a == b:
        return a
    elements = None
    if (
        a.elements is not None
        and b.elements is not None
        and len(a.elements) == len(b.elements)
    ):
        elements = tuple(
            _join_value(x, y) for x, y in zip(a.elements, b.elements)
        )
    return Value(
        _cap(set(a.taints) | set(b.taints)),
        a.params | b.params,
        a.unordered or b.unordered,
        elements,
    )


class ParamSink(NamedTuple):
    """Summary fact: this function passes parameter N into a sink."""

    param: int
    sink: str
    field: Optional[str]
    line: int
    exempt: FrozenSet[str]
    hops: Tuple[Tuple[str, int], ...] = ()


class Summary(NamedTuple):
    """Interprocedural summary of one function."""

    returns: Value = EMPTY
    param_sinks: FrozenSet[ParamSink] = frozenset()
    callees: FrozenSet[str] = frozenset()


@dataclass
class TaintFinding:
    """One unsanitized source→sink path."""

    rule: str
    function: str  # function containing the sink expression
    module: str
    path: str
    line: int
    kind: str
    sink: str
    message: str
    chain: List[str] = field(default_factory=list)
    waived: bool = False
    baselined: bool = False

    @property
    def key(self) -> str:
        return f"taint::{self.rule}::{self.function}::{self.sink}::{self.kind}"

    def format(self) -> str:
        header = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.chain:
            hops = "\n".join(f"    -> {hop}" for hop in self.chain)
            return header + "\n" + hops
        return header


def _param_names(func: FunctionInfo) -> List[str]:
    node = func.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    args = node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    names.extend(a.arg for a in args.kwonlyargs)
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


class _FunctionPass:
    """One intraprocedural solve of one function."""

    def __init__(
        self,
        checker: "TaintChecker",
        func: FunctionInfo,
        collect: bool,
    ) -> None:
        self.checker = checker
        self.graph = checker.graph
        self.func = func
        self.collect = collect
        self.params = _param_names(func)
        self.param_index = {name: i for i, name in enumerate(self.params)}
        self.returns: Value = EMPTY
        self.return_structs: List[Tuple[Value, ...]] = []
        self.param_sinks: Set[ParamSink] = set()
        self.callees: Set[str] = set()

    # -- summary access -------------------------------------------------

    def _summary(self, key: str) -> Summary:
        return self.checker.summaries.get(key, Summary())

    # -- solve ----------------------------------------------------------

    def run(self) -> Summary:
        cfg = self.checker.cfg_for(self.func)
        entry_env = {
            name: Value(params=frozenset({i}))
            for i, name in enumerate(self.params)
        }
        solver: ForwardSolver[Dict[str, Value]] = ForwardSolver(
            cfg,
            initial=dict,
            join=self._join_env,
            transfer=self._transfer,
            entry_state=entry_env,
        )
        solver.solve()
        returns = self.returns
        if self.return_structs and all(
            len(s) == len(self.return_structs[0]) for s in self.return_structs
        ):
            width = len(self.return_structs[0])
            elements = tuple(
                _join_all([s[i] for s in self.return_structs])
                for i in range(width)
            )
            returns = returns._replace(elements=elements)
        return Summary(
            returns=returns,
            param_sinks=frozenset(self.param_sinks),
            callees=frozenset(self.callees),
        )

    @staticmethod
    def _join_env(a: Dict[str, Value], b: Dict[str, Value]) -> Dict[str, Value]:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        for name, value in b.items():
            if name in out:
                out[name] = _join_value(out[name], value)
            else:
                out[name] = value
        return out

    # -- transfer -------------------------------------------------------

    def _transfer(self, node: CFGNode, env: Dict[str, Value]) -> Dict[str, Value]:
        stmt = node.stmt
        if stmt is None:
            return env
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                prior = env.get(stmt.target.id, EMPTY)
                env[stmt.target.id] = _join_value(prior, value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, env)
            self._bind(stmt.target, self._element_of(iterable, stmt), env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                self.returns = _join_value(self.returns, value)
                if (
                    isinstance(stmt.value, ast.Tuple)
                    and 1 < len(stmt.value.elts) <= 8
                ):
                    self.return_structs.append(
                        tuple(self._eval(e, env) for e in stmt.value.elts)
                    )
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
        return env

    def _element_of(self, iterable: Value, stmt: ast.stmt) -> Value:
        taints = set(iterable.taints)
        if iterable.unordered:
            taints.add(
                Taint(
                    kind=KIND_UNORDERED,
                    origin=self.func.key,
                    line=stmt.lineno,
                    desc="iteration over an unordered set",
                )
            )
        return Value(_cap(taints), iterable.params, False, None)

    def _bind(self, target: ast.expr, value: Value, env: Dict[str, Value]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            if value.elements is not None and len(value.elements) == len(elts):
                for elt, sub in zip(elts, value.elements):
                    self._bind(elt, sub, env)
            else:
                flat = Value(value.taints, value.params, value.unordered, None)
                for elt in elts:
                    self._bind(elt, flat, env)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, value, env)
        # Attribute / subscript stores: out of scope (see module doc).

    # -- expression evaluation ------------------------------------------

    def _eval(self, expr: ast.expr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, EMPTY)
        if isinstance(expr, ast.Constant):
            return EMPTY
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Tuple):
            values = [self._eval(e, env) for e in expr.elts]
            merged = _merge(values)
            if 1 < len(values) <= 8 and not any(
                isinstance(e, ast.Starred) for e in expr.elts
            ):
                merged = merged._replace(elements=tuple(values))
            return merged
        if isinstance(expr, (ast.List, ast.Dict)):
            children: List[Value] = []
            if isinstance(expr, ast.List):
                children = [self._eval(e, env) for e in expr.elts]
            else:
                children = [
                    self._eval(e, env)
                    for e in list(expr.keys) + list(expr.values)
                    if e is not None
                ]
            return _merge(children)
        if isinstance(expr, ast.Set):
            return _merge([self._eval(e, env) for e in expr.elts], unordered=True)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(expr, env)
        if isinstance(expr, ast.Attribute):
            inner = self._eval(expr.value, env)
            # Taint rides along attribute reads; unordered-ness doesn't
            # (attribute-typed sets are out of scope, see module doc).
            return Value(inner.taints, inner.params, False, None)
        if isinstance(expr, ast.Subscript):
            inner = self._eval(expr.value, env)
            if (
                inner.elements is not None
                and isinstance(expr.slice, ast.Constant)
                and isinstance(expr.slice.value, int)
                and -len(inner.elements) <= expr.slice.value < len(inner.elements)
            ):
                return inner.elements[expr.slice.value]
            self._eval(expr.slice, env)
            return Value(inner.taints, inner.params, inner.unordered, None)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            # Container algebra (set | set) keeps the container shape.
            return _merge([left, right], unordered=left.unordered or right.unordered)
        if isinstance(expr, ast.BoolOp):
            return _merge([self._eval(v, env) for v in expr.values])
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env)
        if isinstance(expr, ast.Compare):
            # Comparison results are booleans: order-independent for
            # membership/equality; taints still propagate (a time-vs-
            # time comparison is time-dependent).
            values = [self._eval(expr.left, env)] + [
                self._eval(c, env) for c in expr.comparators
            ]
            merged = _merge(values)
            return Value(merged.taints, merged.params, False, None)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env)
            return _join_value(
                self._eval(expr.body, env), self._eval(expr.orelse, env)
            )
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            values = [
                self._eval(child, env)
                for child in ast.iter_child_nodes(expr)
                if isinstance(child, ast.expr)
            ]
            return _merge(values)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env)
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                self._eval(expr.value, env)
            return EMPTY
        if isinstance(expr, ast.Lambda):
            return EMPTY
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value, env)
            self._bind(expr.target, value, env)
            return value
        # Anything else: conservatively merge child expressions.
        return _merge(
            [
                self._eval(child, env)
                for child in ast.iter_child_nodes(expr)
                if isinstance(child, ast.expr)
            ]
        )

    def _eval_comprehension(self, expr: ast.expr, env: Dict[str, Value]) -> Value:
        local = dict(env)
        for comp in expr.generators:  # type: ignore[attr-defined]
            iterable = self._eval(comp.iter, local)
            self._bind(comp.target, self._element_of(iterable, expr), local)
            for condition in comp.ifs:
                self._eval(condition, local)
        if isinstance(expr, ast.DictComp):
            merged = _merge(
                [self._eval(expr.key, local), self._eval(expr.value, local)]
            )
        else:
            merged = self._eval(expr.elt, local)  # type: ignore[attr-defined]
        unordered = isinstance(expr, ast.SetComp)
        return Value(merged.taints, merged.params, unordered, None)

    # -- calls ----------------------------------------------------------

    def _eval_call(self, call: ast.Call, env: Dict[str, Value]) -> Value:
        arg_values = [self._eval(a, env) for a in call.args]
        kw_values = [
            (kw.arg, self._eval(kw.value, env)) for kw in call.keywords
        ]
        all_values = arg_values + [v for _, v in kw_values]

        target = self.graph.resolve_call(self.func, call)
        dotted = dotted_name(call.func)
        name = target.key if target.kind == "external" else dotted
        if name is None:
            name = dotted

        # 1. Sinks.
        spec = sink_for_call(name)
        if spec is None and isinstance(call.func, ast.Name):
            spec = sink_for_call(call.func.id)
        if spec is not None and target.kind != "local":
            self._check_sink(spec, call, arg_values, kw_values)
            return EMPTY

        # 2. Sanitizers (never shadow a locally-defined function).
        if name is not None and target.kind != "local":
            clears = sanitizer_clears(name)
            if clears is not None:
                merged = _merge(all_values)
                kept = frozenset(
                    t for t in merged.taints if t.kind not in clears
                )
                return Value(kept, merged.params, False, None)
        if target.kind == "local" and target.key:
            callee = self.graph.functions.get(target.key)
            if (
                callee is not None
                and callee.name == "quantize"
                and callee.module.endswith("numeric")
            ):
                merged = _merge(all_values)
                return Value(frozenset(), merged.params, False, None)

        # 3. Sources.
        if name is not None and target.kind != "local":
            source = self._source_taint(name, call)
            if source is not None:
                return Value(frozenset({source}), frozenset(), False, None)
            if name in UNORDERED_CTOR_NAMES:
                merged = _merge(all_values)
                return Value(merged.taints, merged.params, True, None)
            if isinstance(call.func, ast.Attribute) and (
                call.func.attr in FS_ORDER_METHODS
            ):
                return Value(
                    frozenset(
                        {
                            Taint(
                                kind=KIND_FS_ORDER,
                                origin=self.func.key,
                                line=call.lineno,
                                desc=f".{call.func.attr}() enumeration",
                            )
                        }
                    ),
                    frozenset(),
                    True,
                    None,
                )

        # 4. Local calls: compose with the callee summary.
        if target.kind == "local" and target.key:
            return self._apply_summary(target.key, call, arg_values, kw_values)

        # 5. Unknown/external passthrough: result depends on inputs.
        merged = _merge(all_values)
        taints = set(merged.taints)
        if merged.unordered and name is not None and (
            name.split(".")[-1] in _ORDER_ITER_NAMES
        ):
            taints.add(
                Taint(
                    kind=KIND_UNORDERED,
                    origin=self.func.key,
                    line=call.lineno,
                    desc=f"{name}() over an unordered set",
                )
            )
        return Value(_cap(taints), merged.params, False, None)

    def _source_taint(self, name: str, call: ast.Call) -> Optional[Taint]:
        if name in SEEDED_CTOR_NAMES:
            if call.args or call.keywords:
                return None  # seeded construction is deterministic
            return Taint(
                kind="random",
                origin=self.func.key,
                line=call.lineno,
                desc=f"{name}() without a seed",
            )
        kind = nondet_kind(name)
        if kind is not None:
            return Taint(
                kind=kind, origin=self.func.key, line=call.lineno, desc=name
            )
        if name in HASH_ID_NAMES:
            return Taint(
                kind=KIND_HASH_ID,
                origin=self.func.key,
                line=call.lineno,
                desc=f"{name}()",
            )
        return None

    def _check_sink(
        self,
        spec: SinkSpec,
        call: ast.Call,
        arg_values: List[Value],
        kw_values: List[Tuple[Optional[str], Value]],
    ) -> None:
        labelled: List[Tuple[Optional[str], Value]] = []
        for i, value in enumerate(arg_values):
            fname = (
                spec.fields[i]
                if spec.kind == "ctor" and i < len(spec.fields)
                else None
            )
            labelled.append((fname, value))
        labelled.extend(kw_values)
        for fname, value in labelled:
            exempt = spec.exempt_kinds(fname)
            for taint in sorted(value.taints):
                if taint.kind in exempt:
                    continue
                self._record_finding(spec, fname, call.lineno, taint)
            for param in sorted(value.params):
                self.param_sinks.add(
                    ParamSink(
                        param=param,
                        sink=spec.name,
                        field=fname,
                        line=call.lineno,
                        exempt=exempt,
                    )
                )

    def _record_finding(
        self,
        spec: SinkSpec,
        fname: Optional[str],
        line: int,
        taint: Taint,
        extra_hops: Tuple[Tuple[str, int], ...] = (),
    ) -> None:
        if not self.collect:
            return
        where = spec.name if fname is None else f"{spec.name}.{fname}"
        chain = self._render_chain(taint, extra_hops)
        finding = TaintFinding(
            rule=TAINT_RULE,
            function=self.func.key,
            module=self.func.module,
            path=self.func.path,
            line=line,
            kind=taint.kind,
            sink=where,
            message=(
                f"{taint.kind} value from {taint.desc} "
                f"(line {taint.line}) reaches {where} unsanitized"
            ),
            chain=chain,
        )
        self.checker.add_finding(finding)

    def _render_chain(
        self, taint: Taint, extra_hops: Tuple[Tuple[str, int], ...]
    ) -> List[str]:
        out = []
        for func_key, line in tuple(extra_hops) + taint.hops:
            func = self.graph.functions.get(func_key)
            where = f"{func.path}:{line}" if func is not None else f"?:{line}"
            out.append(f"{func_key} ({where})")
        origin = self.graph.functions.get(taint.origin)
        where = (
            f"{origin.path}:{taint.line}"
            if origin is not None
            else f"?:{taint.line}"
        )
        out.append(f"{taint.origin} ({where}) <- {taint.desc}")
        return out

    def _apply_summary(
        self,
        callee_key: str,
        call: ast.Call,
        arg_values: List[Value],
        kw_values: List[Tuple[Optional[str], Value]],
    ) -> Value:
        self.callees.add(callee_key)
        summary = self._summary(callee_key)
        callee = self.graph.functions.get(callee_key)
        callee_params = _param_names(callee) if callee is not None else []
        offset = 0
        if (
            callee_params
            and callee_params[0] in ("self", "cls")
            and isinstance(call.func, ast.Attribute)
        ):
            offset = 1
        by_index: Dict[int, Value] = {}
        for i, value in enumerate(arg_values):
            by_index[i + offset] = value
        for kw_name, value in kw_values:
            if kw_name is not None and kw_name in callee_params:
                by_index[callee_params.index(kw_name)] = value

        hop = (self.func.key, call.lineno)

        def surface(value: Value) -> Value:
            taints = frozenset(
                t._replace(hops=((hop,) + t.hops)[:_MAX_HOPS])
                for t in value.taints
            )
            passthrough = [
                by_index[i] for i in sorted(value.params) if i in by_index
            ]
            merged = _merge(passthrough) if passthrough else EMPTY
            return Value(
                _cap(set(taints) | set(merged.taints)),
                merged.params,
                value.unordered or merged.unordered,
                None,
            )

        # Param→sink flows instantiated at this call site.
        for ps in sorted(summary.param_sinks):
            value = by_index.get(ps.param)
            if value is None:
                continue
            spec = sink_for_call(ps.sink) or SinkSpec(name=ps.sink, kind="call")
            for taint in sorted(value.taints):
                if taint.kind in ps.exempt:
                    continue
                sink_func = self.graph.functions.get(callee_key)
                pass_hops = ((hop,) + ps.hops)[:_MAX_HOPS]
                anchor = _FunctionPass(
                    self.checker, sink_func or self.func, self.collect
                )
                anchor._record_finding(
                    spec, ps.field, ps.line, taint, extra_hops=pass_hops
                )
            for param in sorted(value.params):
                self.param_sinks.add(
                    ParamSink(
                        param=param,
                        sink=ps.sink,
                        field=ps.field,
                        line=ps.line,
                        exempt=ps.exempt,
                        hops=((hop,) + ps.hops)[:_MAX_HOPS],
                    )
                )

        returns = summary.returns
        result = surface(returns)
        if returns.elements is not None:
            result = result._replace(
                elements=tuple(surface(e) for e in returns.elements)
            )
        return result


def _join_all(values: Sequence[Value]) -> Value:
    out = EMPTY
    for value in values:
        out = _join_value(out, value)
    return out


class TaintChecker:
    """Interprocedural determinism-taint over a :class:`CodeGraph`."""

    def __init__(self, graph: CodeGraph, max_rounds: int = 12) -> None:
        self.graph = graph
        self.max_rounds = max_rounds
        self.summaries: Dict[str, Summary] = {}
        self._cfgs: Dict[str, CFG] = {}
        self._findings: Dict[str, TaintFinding] = {}

    def cfg_for(self, func: FunctionInfo) -> CFG:
        cfg = self._cfgs.get(func.key)
        if cfg is None:
            cfg = build_cfg(func.node)
            self._cfgs[func.key] = cfg
        return cfg

    def add_finding(self, finding: TaintFinding) -> None:
        existing = self._findings.get(finding.key)
        if existing is None or finding.line < existing.line:
            self._findings[finding.key] = finding

    def run(self) -> List[TaintFinding]:
        keys = sorted(self.graph.functions)
        # Round 0 seeds summaries and the reverse dependency map.
        callers: Dict[str, Set[str]] = {}
        for key in keys:
            summary = _FunctionPass(
                self, self.graph.functions[key], collect=False
            ).run()
            self.summaries[key] = summary
            for callee in summary.callees:
                callers.setdefault(callee, set()).add(key)
        # Fixpoint: re-solve callers of any function whose summary grew.
        pending = set(keys)
        rounds = 0
        while pending and rounds < self.max_rounds:
            rounds += 1
            batch, pending = sorted(pending), set()
            for key in batch:
                summary = _FunctionPass(
                    self, self.graph.functions[key], collect=False
                ).run()
                if summary != self.summaries[key]:
                    self.summaries[key] = summary
                    pending.update(callers.get(key, ()))
        # Final collection pass with stable summaries.
        self._findings.clear()
        for key in keys:
            _FunctionPass(self, self.graph.functions[key], collect=True).run()
        return sorted(
            self._findings.values(), key=lambda f: (f.path, f.line, f.key)
        )


def check_taint(graph: CodeGraph) -> List[TaintFinding]:
    """Run the determinism-taint checker over a built graph."""
    return TaintChecker(graph).run()
