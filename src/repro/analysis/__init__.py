"""Correctness tooling: custom static analysis + runtime invariant sanitizer.

The reproduction's guarantees rest on fragile invariants — Theorem 1's
SetR-tree bound needs every node's union/intersection sets and MBRs
maintained exactly, and the penalty model (Eqn 4) misbehaves silently
on float-equality edge cases.  This package guards both sides:

* :mod:`repro.analysis.lint` — an AST-based rule engine with
  repo-specific rules (float-literal equality, bare asserts, mutable
  defaults, missing public annotations, stray ``print``).
  CLI: ``repro-whynot lint <paths>``.
* :mod:`repro.analysis.flow` — whole-package interprocedural effect
  inference (call graph in :mod:`repro.analysis.callgraph`, local
  effects in :mod:`repro.analysis.effects`) enforcing the three
  concurrency contracts: worker-read-only, io-through-pool (the
  call-graph-aware successor of the old syntactic ``pager-access``
  lint rule), and exception-safety on the quarantine path.
  CLI: ``repro-whynot analyze``.
* :mod:`repro.analysis.sanitize` — structural walkers validating
  R-tree/SetR-tree/KcR-tree invariants and buffer-pool accounting.
  CLI: ``repro-whynot check-invariants``.
"""

from .flow import (
    EFFECT_KINDS,
    FlowAnalysis,
    FlowConfig,
    FlowReport,
    Violation,
    analyze_paths,
    collect_waivers,
    load_baseline,
)
from .lint import Finding, LintRule, Linter, lint_paths
from .sanitize import (
    CORRUPTION_KINDS,
    InvariantViolation,
    SanitizerReport,
    check_buffer_pool,
    check_tree,
    scan_corruption,
)

__all__ = [
    "Finding",
    "LintRule",
    "Linter",
    "lint_paths",
    "EFFECT_KINDS",
    "FlowAnalysis",
    "FlowConfig",
    "FlowReport",
    "Violation",
    "analyze_paths",
    "collect_waivers",
    "load_baseline",
    "InvariantViolation",
    "SanitizerReport",
    "check_buffer_pool",
    "check_tree",
    "scan_corruption",
    "CORRUPTION_KINDS",
]
