"""Correctness tooling: custom static analysis + runtime invariant sanitizer.

The reproduction's guarantees rest on fragile invariants — Theorem 1's
SetR-tree bound needs every node's union/intersection sets and MBRs
maintained exactly, and the penalty model (Eqn 4) misbehaves silently
on float-equality edge cases.  This package guards both sides:

* :mod:`repro.analysis.lint` — an AST-based rule engine with
  repo-specific rules (float-literal equality, bare asserts, mutable
  defaults, missing public annotations, stray ``print``).
  CLI: ``repro-whynot lint <paths>``.
* :mod:`repro.analysis.flow` — whole-package interprocedural effect
  inference (call graph in :mod:`repro.analysis.callgraph`, local
  effects in :mod:`repro.analysis.effects`) enforcing the three
  concurrency contracts: worker-read-only, io-through-pool (the
  call-graph-aware successor of the old syntactic ``pager-access``
  lint rule), and exception-safety on the quarantine path.
* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` — the
  per-function control-flow graphs (with exception edges) and the
  generic forward worklist solver the dataflow checkers run on.
* :mod:`repro.analysis.taint` — determinism-taint: unsanitized
  nondeterminism (time / random / fs-order / set-iteration / hash-id,
  from the shared :mod:`repro.analysis.registry` taxonomy) reaching a
  result dataclass, checksummed persistence, or a bench emitter.
* :mod:`repro.analysis.lifetime` — resource acquire/release automata:
  spill files, shard pipes/workers, locks, and the shard quarantine
  lifecycle (leak-on-exception-edge, double-release,
  use-after-quarantine).
* :mod:`repro.analysis.driver` — the unified ``analyze`` runner
  composing all of the above over one parsed call graph, with waiver,
  stale-waiver, and baseline-ratchet semantics.
  CLI: ``repro-whynot analyze [--rules ...|--all]``.
* :mod:`repro.analysis.sanitize` — structural walkers validating
  R-tree/SetR-tree/KcR-tree invariants and buffer-pool accounting.
  CLI: ``repro-whynot check-invariants``.
"""

from .driver import ALL_RULESETS, AnalysisReport, StaleWaiver, run_analysis
from .flow import (
    EFFECT_KINDS,
    FlowAnalysis,
    FlowConfig,
    FlowReport,
    Violation,
    analyze_paths,
    collect_waivers,
    finding_is_waived,
    load_baseline,
)
from .lifetime import (
    RESOURCE_SPECS,
    LifetimeFinding,
    ResourceSpec,
    check_lifetime,
)
from .lint import Finding, LintRule, Linter, lint_paths
from .sanitize import (
    CORRUPTION_KINDS,
    InvariantViolation,
    SanitizerReport,
    check_buffer_pool,
    check_tree,
    scan_corruption,
)
from .taint import TaintFinding, check_taint

__all__ = [
    "Finding",
    "LintRule",
    "Linter",
    "lint_paths",
    "EFFECT_KINDS",
    "FlowAnalysis",
    "FlowConfig",
    "FlowReport",
    "Violation",
    "analyze_paths",
    "collect_waivers",
    "finding_is_waived",
    "load_baseline",
    "ALL_RULESETS",
    "AnalysisReport",
    "StaleWaiver",
    "run_analysis",
    "TaintFinding",
    "check_taint",
    "LifetimeFinding",
    "ResourceSpec",
    "RESOURCE_SPECS",
    "check_lifetime",
    "InvariantViolation",
    "SanitizerReport",
    "check_buffer_pool",
    "check_tree",
    "scan_corruption",
    "CORRUPTION_KINDS",
]
