"""Correctness tooling: custom static analysis + runtime invariant sanitizer.

The reproduction's guarantees rest on fragile invariants — Theorem 1's
SetR-tree bound needs every node's union/intersection sets and MBRs
maintained exactly, and the penalty model (Eqn 4) misbehaves silently
on float-equality edge cases.  This package guards both sides:

* :mod:`repro.analysis.lint` — an AST-based rule engine with
  repo-specific rules (float-literal equality, bare asserts, direct
  ``Pager`` access, mutable defaults, missing public annotations,
  stray ``print``).  CLI: ``repro-whynot lint <paths>``.
* :mod:`repro.analysis.sanitize` — structural walkers validating
  R-tree/SetR-tree/KcR-tree invariants and buffer-pool accounting.
  CLI: ``repro-whynot check-invariants``.
"""

from .lint import Finding, LintRule, Linter, lint_paths
from .sanitize import (
    CORRUPTION_KINDS,
    InvariantViolation,
    SanitizerReport,
    check_buffer_pool,
    check_tree,
    scan_corruption,
)

__all__ = [
    "Finding",
    "LintRule",
    "Linter",
    "lint_paths",
    "InvariantViolation",
    "SanitizerReport",
    "check_buffer_pool",
    "check_tree",
    "scan_corruption",
    "CORRUPTION_KINDS",
]
