"""Resource-lifetime checking: acquire/release automata on the CFG.

Four resource families matter to this repo (ROADMAP "Scale-out"):

* **spill files** — the streaming loader's per-tile spill handles
  (``path.open(...)`` / ``open(...)``), released by ``.close()``;
* **shard worker pipes/processes** — ``ctx.Pipe()`` connections and
  ``ctx.Process(...)`` workers (:mod:`repro.index.sharded`), released
  by ``.close()`` / ``.join()`` / ``.terminate()``;
* **locks** — explicit ``.acquire()`` / ``.release()`` pairs (the
  ``with lock:`` form is structurally safe and not tracked);
* **the quarantine lifecycle** — healthy → quarantined
  (``index.mark_down(shard, ...)`` quarantines its *subject argument*)
  → recovered (``recover()``, which clears every tracked subject);
  *serving* a request through a shard known to be quarantined —
  passing it back to ``request`` / ``request_many`` / ``top_k`` — is
  the bug (``use-after-quarantine``), not holding the state.

Each family is a :class:`ResourceSpec` automaton run by the forward
solver over the :mod:`.cfg` graph, whose exception edges come from the
``raises-storage`` facts of the flow analysis — so "leak on exception
edge" means precisely: a storage fault (or explicit raise) between
acquire and release escapes the frame with the resource still held.

Rules:

``lifetime-leak``
    A may-acquired resource reaches the function's normal or
    exceptional exit unreleased.
``lifetime-double-release``
    A release on a path where the resource may already be released.
``lifetime-use-after-quarantine``
    A serving method invoked on an object that was quarantined on some
    path without an intervening ``recover()``.

Precision bounds (deliberate, tested): only plain local names are
tracked — parameters, attributes (``self.conn``), and subscripts
(``handles[tid]``) are not, and any *escape* (returned, stored to an
attribute/container, passed as a call argument) ends tracking with no
reports.  ``with``-bound resources are auto-released by the context
manager and never reported as leaks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from .callgraph import CodeGraph, FunctionInfo, dotted_name
from .cfg import CFG, CFGNode, build_cfg
from .dataflow import ForwardSolver
from .effects import _ScopeModel

__all__ = [
    "ResourceSpec",
    "RESOURCE_SPECS",
    "LifetimeFinding",
    "LifetimeChecker",
    "check_lifetime",
]

RULE_LEAK = "lifetime-leak"
RULE_DOUBLE_RELEASE = "lifetime-double-release"
RULE_USE_AFTER_QUARANTINE = "lifetime-use-after-quarantine"

ACQUIRED = "A"
RELEASED = "R"


@dataclass(frozen=True)
class ResourceSpec:
    """One acquire/release automaton."""

    name: str
    # Acquisition by call result: `v = open(...)`, `a, b = ctx.Pipe()`.
    acquire_names: FrozenSet[str] = frozenset()  # plain / terminal names
    acquire_methods: FrozenSet[str] = frozenset()  # `.open(...)` style
    tuple_acquire: bool = False  # call yields a tuple of resources
    # State transitions by method call on the tracked name.
    stateful_methods: FrozenSet[str] = frozenset()  # re-acquire (quarantine)
    release_methods: FrozenSet[str] = frozenset()
    use_methods: FrozenSet[str] = frozenset()
    bad_use_state: str = RELEASED  # state in which use_methods misfire
    # Subject-argument family: the resource is the first positional
    # argument, not the receiver (``index.mark_down(shard, ...)``
    # quarantines *shard*; ``index.recover()`` with no argument clears
    # every tracked subject of this spec).
    subject_arg: bool = False
    use_rule: str = RULE_USE_AFTER_QUARANTINE
    report_leak: bool = True
    report_double_release: bool = True


RESOURCE_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        name="spill-file",
        acquire_names=frozenset({"open"}),
        acquire_methods=frozenset({"open"}),
        release_methods=frozenset({"close"}),
    ),
    ResourceSpec(
        name="shard-pipe",
        acquire_names=frozenset({"Pipe"}),
        tuple_acquire=True,
        release_methods=frozenset({"close"}),
    ),
    ResourceSpec(
        name="shard-worker",
        acquire_names=frozenset({"Process"}),
        release_methods=frozenset({"join", "terminate", "kill", "close"}),
    ),
    ResourceSpec(
        name="lock",
        stateful_methods=frozenset({"acquire"}),
        release_methods=frozenset({"release"}),
    ),
    ResourceSpec(
        name="quarantine",
        stateful_methods=frozenset({"mark_down", "quarantine"}),
        release_methods=frozenset({"recover"}),
        use_methods=frozenset(
            {"request", "request_many", "searcher", "ensure_built", "top_k"}
        ),
        bad_use_state=ACQUIRED,
        report_leak=False,
        report_double_release=False,
        subject_arg=True,
    ),
)

_SPEC_BY_ACQUIRE_METHOD: Dict[str, ResourceSpec] = {}
_SPEC_BY_ACQUIRE_NAME: Dict[str, ResourceSpec] = {}
_SPEC_BY_STATEFUL_METHOD: Dict[str, ResourceSpec] = {}
# Subject-arg families are dispatched on the method name alone (the
# receiver is a registry object of any shape): method -> (spec, role).
_SUBJECT_METHODS: Dict[str, Tuple[ResourceSpec, str]] = {}
for _spec in RESOURCE_SPECS:
    for _m in _spec.acquire_methods:
        _SPEC_BY_ACQUIRE_METHOD[_m] = _spec
    for _n in _spec.acquire_names:
        _SPEC_BY_ACQUIRE_NAME[_n] = _spec
    for _m in _spec.stateful_methods:
        _SPEC_BY_STATEFUL_METHOD[_m] = _spec
    if _spec.subject_arg:
        for _m in _spec.stateful_methods:
            _SUBJECT_METHODS[_m] = (_spec, "stateful")
        for _m in _spec.release_methods:
            _SUBJECT_METHODS[_m] = (_spec, "release")
        for _m in _spec.use_methods:
            _SUBJECT_METHODS[_m] = (_spec, "use")


class Res(NamedTuple):
    """Abstract state of one tracked local resource."""

    spec: str
    states: FrozenSet[str]
    line: int  # acquisition line (finding anchor)
    auto: bool = False  # with-bound: context manager releases it


Env = Dict[str, Res]


@dataclass
class LifetimeFinding:
    """One lifecycle violation."""

    rule: str
    function: str
    module: str
    path: str
    line: int
    resource: str  # spec name
    var: str
    message: str
    chain: List[str] = field(default_factory=list)
    waived: bool = False
    baselined: bool = False

    @property
    def key(self) -> str:
        return f"lifetime::{self.rule}::{self.function}::{self.resource}:{self.var}"

    def format(self) -> str:
        header = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.chain:
            hops = "\n".join(f"    -> {hop}" for hop in self.chain)
            return header + "\n" + hops
        return header


def _join_env(a: Env, b: Env) -> Env:
    if not a:
        return b
    if not b:
        return a
    out = dict(a)
    for name, res in b.items():
        prior = out.get(name)
        if prior is None:
            out[name] = res
        elif prior != res:
            if prior.spec != res.spec:
                # Conflicting reuse of one name: stop tracking it.
                out.pop(name, None)
            else:
                out[name] = Res(
                    spec=prior.spec,
                    states=prior.states | res.states,
                    line=min(prior.line, res.line),
                    auto=prior.auto or res.auto,
                )
    return out


class _FunctionPass:
    """Run every resource automaton over one function's CFG."""

    def __init__(self, checker: "LifetimeChecker", func: FunctionInfo) -> None:
        self.checker = checker
        self.graph = checker.graph
        self.func = func
        self.scope = _ScopeModel(checker.graph, func)
        self.findings: Dict[str, LifetimeFinding] = {}

    def run(self) -> List[LifetimeFinding]:
        cfg = build_cfg(self.func.node, may_raise=self._may_raise)
        solver: ForwardSolver[Env] = ForwardSolver(
            cfg,
            initial=dict,
            join=_join_env,
            transfer=self._transfer,
            entry_state={},
        )
        states = solver.solve()
        self._check_exit(states.get(cfg.exit, {}), exceptional=False)
        self._check_exit(states.get(cfg.exc_exit, {}), exceptional=True)
        return sorted(
            self.findings.values(), key=lambda f: (f.line, f.rule, f.var)
        )

    # -- exception edges ------------------------------------------------

    def _may_raise(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                target = self.graph.resolve_call(self.func, node)
                if (
                    target.kind == "local"
                    and target.key in self.checker.raising
                ):
                    return True
        return False

    # -- transfer -------------------------------------------------------

    def _transfer(self, node: CFGNode, env: Env) -> Env:
        stmt = node.stmt
        if stmt is None:
            if node.label == "with-exit" and node.with_stmt is not None:
                return self._close_with(node.with_stmt, env)
            return env
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value, stmt.lineno, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._handle_assign([stmt.target], stmt.value, stmt.lineno, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                spec = self._acquire_spec(item.context_expr)
                self._process_calls(item.context_expr, env)
                self._escape_names(item.context_expr, env)
                if (
                    spec is not None
                    and isinstance(item.optional_vars, ast.Name)
                    and self._is_local(item.optional_vars.id)
                ):
                    env[item.optional_vars.id] = Res(
                        spec=spec.name,
                        states=frozenset({ACQUIRED}),
                        line=stmt.lineno,
                        auto=True,
                    )
        elif isinstance(stmt, ast.Expr):
            self._touch(stmt.value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.If, ast.While)):
            # Head node only: the body statements are their own CFG
            # nodes, so touching the whole subtree here would process
            # their lifecycle events twice (and on the wrong paths).
            self._touch(stmt.test, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._touch(stmt.iter, env)
            for target in ast.walk(stmt.target):
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # A closure capturing a tracked name escapes it; the body's
            # calls do NOT run at definition time, so no events.
            self._escape_names(stmt, env)
        else:
            self._touch(stmt, env)
        return env

    def _touch(self, node: ast.AST, env: Env) -> None:
        """Process lifecycle events, then escapes, for one expression.

        Events first: ``return runtime.request(...)`` must fire the
        use-after-quarantine check before the receiver-exempt escape
        walk runs.
        """
        self._process_calls(node, env)
        self._escape_names(node, env)

    def _close_with(self, stmt: ast.With, env: Env) -> Env:
        env = dict(env)
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                res = env.get(item.optional_vars.id)
                if res is not None and res.auto and res.line == stmt.lineno:
                    env[item.optional_vars.id] = res._replace(
                        states=frozenset({RELEASED})
                    )
        return env

    def _handle_assign(
        self,
        targets: List[ast.expr],
        value: ast.expr,
        line: int,
        env: Env,
    ) -> None:
        spec = self._acquire_spec(value)
        if spec is not None:
            # Anything referenced by the acquire expression itself
            # (e.g. the path object) is not the resource.
            if len(targets) == 1:
                target = targets[0]
                if isinstance(target, ast.Name) and self._is_local(target.id):
                    self._acquire(target.id, spec, line, env)
                    return
                if spec.tuple_acquire and isinstance(
                    target, (ast.Tuple, ast.List)
                ):
                    elements = [
                        e for e in target.elts if isinstance(e, ast.Name)
                    ]
                    if len(elements) == len(target.elts):
                        for elt in elements:
                            if self._is_local(elt.id):
                                self._acquire(elt.id, spec, line, env)
                        return
            # Acquired into a non-trackable shape: nothing to track.
            return
        # Not an acquisition: the RHS may carry lifecycle events
        # (``ok = lock.acquire()``) and may reference (escape) tracked
        # resources; a rebind of a tracked name ends tracking.
        self._process_calls(value, env)
        self._escape_names(value, env)
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    env.pop(name_node.id, None)

    def _acquire(self, name: str, spec: ResourceSpec, line: int, env: Env) -> None:
        env[name] = Res(
            spec=spec.name, states=frozenset({ACQUIRED}), line=line
        )

    def _acquire_spec(self, expr: ast.expr) -> Optional[ResourceSpec]:
        if not isinstance(expr, ast.Call):
            return None
        target = self.graph.resolve_call(self.func, expr)
        if target.kind == "local":
            return None  # locally-defined helper, not the raw primitive
        if isinstance(expr.func, ast.Name):
            return _SPEC_BY_ACQUIRE_NAME.get(expr.func.id)
        if isinstance(expr.func, ast.Attribute):
            terminal = expr.func.attr
            spec = _SPEC_BY_ACQUIRE_NAME.get(terminal)
            if spec is not None:
                return spec
            return _SPEC_BY_ACQUIRE_METHOD.get(terminal)
        return None

    def _process_calls(self, node: ast.AST, env: Env) -> None:
        """Apply every ``name.method(...)`` lifecycle event in ``node``.

        Works in any expression position (``Return`` / assignment RHS /
        condition), not just bare expression statements.  Argument
        escapes are handled by the follow-up :meth:`_escape_names`
        walk, which exempts method receivers.
        """
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._method_event(child, env)

    def _method_event(self, call: ast.Call, env: Env) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        if method in _SUBJECT_METHODS:
            self._subject_event(call, method, env)
            return
        if not isinstance(func.value, ast.Name):
            return
        name = func.value.id
        res = env.get(name)
        if res is None:
            # Method-based acquisition (lock.acquire) on an untracked
            # plain local starts tracking.
            spec = _SPEC_BY_STATEFUL_METHOD.get(method)
            if spec is not None and not spec.subject_arg and self._is_local(name):
                env[name] = Res(
                    spec=spec.name,
                    states=frozenset({ACQUIRED}),
                    line=call.lineno,
                )
            return
        spec = self.checker.spec_by_name[res.spec]
        if method in spec.release_methods:
            if RELEASED in res.states and spec.report_double_release:
                self._add(
                    RULE_DOUBLE_RELEASE,
                    call.lineno,
                    spec,
                    name,
                    f"{name}.{method}() may release an already-released "
                    f"{spec.name} (acquired line {res.line})",
                )
            env[name] = res._replace(states=frozenset({RELEASED}))
        elif method in spec.stateful_methods:
            env[name] = res._replace(states=frozenset({ACQUIRED}))
        elif method in spec.use_methods and spec.bad_use_state in res.states:
            what = (
                "quarantined"
                if spec.name == "quarantine"
                else f"released {spec.name}"
            )
            self._add(
                spec.use_rule,
                call.lineno,
                spec,
                name,
                f"{name}.{method}() serves through a {what} object "
                f"(state set line {res.line}) without recover()",
            )

    def _subject_event(self, call: ast.Call, method: str, env: Env) -> None:
        """One quarantine-family event: the resource is the *argument*.

        ``index.mark_down(shard, ...)`` quarantines ``shard``;
        ``index.recover()`` (no subject argument) clears every tracked
        subject; serving methods misfire when any Name they receive —
        or their receiver — is a quarantined subject.
        """
        spec, role = _SUBJECT_METHODS[method]
        arg0 = call.args[0] if call.args else None
        subject = arg0.id if isinstance(arg0, ast.Name) else None
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None
        receiver_name = receiver.id if isinstance(receiver, ast.Name) else None
        if role == "stateful":
            target = subject or receiver_name
            if target is None:
                return
            res = env.get(target)
            if res is None:
                if self._is_local(target):
                    env[target] = Res(
                        spec=spec.name,
                        states=frozenset({ACQUIRED}),
                        line=call.lineno,
                    )
            elif res.spec == spec.name:
                env[target] = res._replace(states=frozenset({ACQUIRED}))
            else:
                env.pop(target, None)
        elif role == "release":
            if subject is not None:
                res = env.get(subject)
                if res is not None and res.spec == spec.name:
                    env[subject] = res._replace(states=frozenset({RELEASED}))
            else:
                # recover() with no subject clears every quarantine.
                for tracked, res in list(env.items()):
                    if res.spec == spec.name:
                        env[tracked] = res._replace(
                            states=frozenset({RELEASED})
                        )
        else:  # use
            candidates: List[str] = []
            if receiver_name is not None:
                candidates.append(receiver_name)
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    candidates.append(arg.id)
                elif isinstance(arg, (ast.Tuple, ast.List)):
                    candidates.extend(
                        e.id for e in arg.elts if isinstance(e, ast.Name)
                    )
            for cand in candidates:
                res = env.get(cand)
                if (
                    res is not None
                    and res.spec == spec.name
                    and spec.bad_use_state in res.states
                ):
                    self._add(
                        spec.use_rule,
                        call.lineno,
                        spec,
                        cand,
                        f"{method}() serves '{cand}' while quarantined "
                        f"(marked down line {res.line}) without recover()",
                    )

    def _escape_names(self, node: ast.AST, env: Env) -> None:
        """End tracking for any tracked name referenced inside ``node``.

        Receivers of method calls are exempt (``fh.write(...)`` is a
        use, not an escape), as are subject arguments of quarantine
        mark/recover events (the call is the tracking action itself);
        everything else — argument positions, container literals,
        returns, attribute stores — is an escape.
        """
        if not env:
            return
        skip: Set[int] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                receiver = child.func.value
                if isinstance(receiver, ast.Name):
                    skip.add(id(receiver))
                entry = _SUBJECT_METHODS.get(child.func.attr)
                if entry is not None and entry[1] in ("stateful", "release"):
                    if child.args and isinstance(child.args[0], ast.Name):
                        skip.add(id(child.args[0]))
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Load)
                and id(child) not in skip
                and child.id in env
            ):
                env.pop(child.id, None)

    def _is_local(self, name: str) -> bool:
        return self.scope.classify(name) == "local"

    # -- exits ----------------------------------------------------------

    def _check_exit(self, env: Env, exceptional: bool) -> None:
        for name in sorted(env):
            res = env[name]
            spec = self.checker.spec_by_name[res.spec]
            if not spec.report_leak or res.auto:
                continue
            if ACQUIRED not in res.states:
                continue
            how = (
                "an exception edge leaves the frame"
                if exceptional
                else "the function returns"
            )
            self._add(
                RULE_LEAK,
                res.line,
                spec,
                name,
                f"{spec.name} '{name}' acquired at line {res.line} is "
                f"still held when {how}",
                exceptional=exceptional,
            )

    def _add(
        self,
        rule: str,
        line: int,
        spec: ResourceSpec,
        var: str,
        message: str,
        exceptional: bool = False,
    ) -> None:
        finding = LifetimeFinding(
            rule=rule,
            function=self.func.key,
            module=self.func.module,
            path=self.func.path,
            line=line,
            resource=spec.name,
            var=var,
            message=message,
        )
        existing = self.findings.get(finding.key)
        # Exceptional-exit leaks carry strictly more signal than the
        # same resource's normal-exit leak; keep the richer message.
        if existing is None or (exceptional and "exception" not in existing.message):
            self.findings[finding.key] = finding


class LifetimeChecker:
    """Resource-lifetime automata over every function in a graph."""

    def __init__(
        self, graph: CodeGraph, raising: Optional[Set[str]] = None
    ) -> None:
        self.graph = graph
        self.spec_by_name = {spec.name: spec for spec in RESOURCE_SPECS}
        if raising is None:
            from .flow import FlowAnalysis

            analysis = FlowAnalysis(graph).run()
            raising = {
                key
                for key, sig in analysis.signatures.items()
                if "raises-storage" in sig
            }
        self.raising = raising

    def run(self) -> List[LifetimeFinding]:
        findings: List[LifetimeFinding] = []
        for key in sorted(self.graph.functions):
            findings.extend(
                _FunctionPass(self, self.graph.functions[key]).run()
            )
        findings.sort(key=lambda f: (f.path, f.line, f.key))
        return findings


def check_lifetime(
    graph: CodeGraph, raising: Optional[Set[str]] = None
) -> List[LifetimeFinding]:
    """Run the lifetime checker; ``raising`` is the set of function
    keys whose calls sprout exception edges (defaults to the flow
    analysis' ``raises-storage`` signatures)."""
    return LifetimeChecker(graph, raising).run()
