"""Whole-package call-graph construction for the flow analyser.

This module parses every ``.py`` file under the analysed roots and
builds a best-effort static call graph: modules, classes (with resolved
base classes and inferred attribute types), and functions (with
resolved parameter types).  Resolution is intentionally conservative —
when a callee cannot be pinned to a function defined in the analysed
tree it is reported as an *external* dotted name and the effect
extractor falls back to name-based heuristics.

Resolution features, in rough order of how much repo code they unlock:

* import maps (absolute and relative, including function-local imports),
* ``self.``/``cls.`` method lookup with an MRO walk through resolved
  base classes,
* attribute-type inference from ``self.x = <annotated param>``,
  ``self.x = ClassName(...)``, ``self.x: T`` annotations, property
  return annotations, and chained ``self.x = self.y.z`` lookups
  (iterated to a small fixpoint so two-hop chains resolve),
* parameter-annotation receiver typing (``def f(tree: RTreeBase)``),
* local-variable typing from ``name = ClassName(...)`` /
  ``name = ClassName.create(...)`` assignments,
* instantiation edges (``ClassName(...)`` resolves to ``__init__``),
* nested functions and lambdas (qualnames keep the enclosing chain, so
  closures such as thread workers are first-class graph nodes).

Module names are anchored by walking up the directory tree while an
``__init__.py`` is present, so a fixture tree named ``repro/...`` under
a temporary directory lands in the same contract scopes as the shipped
library — fixtures are parsed, never imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "CallTarget",
    "ClassInfo",
    "CodeGraph",
    "FunctionInfo",
    "ModuleInfo",
    "build_graph",
    "iter_python_files",
    "module_name_for",
]

PathLike = Union[str, Path]

_INIT_NAMES = frozenset({"__init__", "__post_init__", "__new__"})

_OPTIONAL_WRAPPERS = frozenset({"Optional", "Final", "ClassVar"})


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    seen: Dict[Path, None] = {}
    for path in out:
        seen.setdefault(path.resolve(), None)
    return sorted(seen)


def module_name_for(path: PathLike) -> str:
    """Dotted module name anchored at the outermost package directory.

    Walks parent directories while they contain an ``__init__.py`` so
    both ``src/repro/core/engine.py`` and a test fixture written to
    ``tmp/repro/core/engine.py`` resolve to ``repro.core.engine``.
    """
    resolved = Path(path).resolve()
    names: List[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").exists():
        names.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(names) if names else resolved.stem


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return base + "." + node.attr
    return None


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """A class definition with resolved bases and inferred attr types."""

    key: str
    name: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """A function, method, or nested function in the analysed tree."""

    key: str
    name: str
    module: str
    path: str
    node: ast.AST
    class_key: Optional[str] = None
    parent: Optional[str] = None
    children: Dict[str, str] = field(default_factory=dict)
    param_types: Dict[str, str] = field(default_factory=dict)
    local_types: Dict[str, str] = field(default_factory=dict)

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class CallTarget:
    """Resolution result for one call expression.

    ``kind`` is ``"local"`` (a function in the graph, ``key`` is its
    function key), ``"external"`` (``key`` is the best-effort dotted
    name, e.g. ``time.perf_counter``), or ``"unknown"``.
    ``receiver`` is the object expression for method calls and
    ``attr`` the method name, when the call has that shape.
    """

    kind: str
    key: Optional[str] = None
    receiver: Optional[ast.expr] = None
    attr: Optional[str] = None


class CodeGraph:
    """Modules, classes, and functions of an analysed package tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.errors: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_source(self, path: PathLike, source: Optional[str] = None) -> None:
        resolved = Path(path)
        text = resolved.read_text(encoding="utf-8") if source is None else source
        try:
            tree = ast.parse(text, filename=str(resolved))
        except SyntaxError as exc:
            self.errors.append(f"{resolved}: {exc.msg} (line {exc.lineno})")
            return
        name = module_name_for(resolved)
        info = ModuleInfo(name=name, path=str(resolved), tree=tree)
        info.imports = self._collect_imports(info)
        self.modules[name] = info
        self._collect_definitions(info)

    def finalize(self) -> None:
        """Resolve class bases, attribute types, and parameter types."""
        for cls in self.classes.values():
            cls.bases = self._resolve_bases(cls)
        # Parameter types first: ``self.x = <annotated param>`` is the
        # main attr-type source and needs them.
        for func in self.functions.values():
            self._infer_param_types(func)
        for func in self.functions.values():
            self._infer_local_types(func)
        # Attribute types can chain through other attributes; a few
        # passes reach a fixpoint on everything the repo actually does.
        for _ in range(3):
            changed = False
            for cls in self.classes.values():
                if self._infer_attr_types(cls):
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # collection helpers
    # ------------------------------------------------------------------

    def _collect_imports(self, module: ModuleInfo) -> Dict[str, str]:
        imports: Dict[str, str] = {}
        parts = module.name.split(".")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = parts[: len(parts) - node.level]
                    base = ".".join(base_parts)
                else:
                    base = ""
                if node.module:
                    base = base + "." + node.module if base else node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports[local] = base + "." + alias.name if base else alias.name
        return imports

    def _collect_definitions(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            self._collect_node(module, node, prefix=module.name, class_info=None, parent=None)

    def _collect_node(
        self,
        module: ModuleInfo,
        node: ast.stmt,
        prefix: str,
        class_info: Optional[ClassInfo],
        parent: Optional[FunctionInfo],
    ) -> None:
        if isinstance(node, ast.ClassDef):
            key = prefix + "." + node.name
            cls = ClassInfo(key=key, name=node.name, module=module.name, node=node)
            self.classes[key] = cls
            for child in node.body:
                self._collect_node(module, child, prefix=key, class_info=cls, parent=None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = prefix + "." + node.name
            func = FunctionInfo(
                key=key,
                name=node.name,
                module=module.name,
                path=module.path,
                node=node,
                class_key=class_info.key if class_info is not None else (
                    parent.class_key if parent is not None else None
                ),
                parent=parent.key if parent is not None else None,
            )
            self.functions[key] = func
            if class_info is not None:
                class_info.methods[node.name] = key
            if parent is not None:
                parent.children[node.name] = key
            for child in node.body:
                self._collect_node(module, child, prefix=key, class_info=None, parent=func)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    self._collect_node(module, child, prefix, class_info, parent)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve_symbol(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Absolute dotted name for a symbol referenced in ``module``."""
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            base = module.imports[head]
            return base + "." + rest if rest else base
        scoped = module.name + "." + dotted
        if scoped in self.classes or scoped in self.functions:
            return scoped
        local_head = module.name + "." + head
        if local_head in self.classes and rest:
            return local_head + "." + rest
        return None

    def _resolve_bases(self, cls: ClassInfo) -> List[str]:
        module = self.modules.get(cls.module)
        out: List[str] = []
        if module is None:
            return out
        for base in cls.node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            resolved = self.resolve_symbol(module, dotted)
            if resolved is not None and resolved in self.classes:
                out.append(resolved)
        return out

    def class_mro(self, class_key: str) -> List[str]:
        """Depth-first linearisation (good enough for lookup)."""
        order: List[str] = []
        stack = [class_key]
        seen: Dict[str, None] = {}
        while stack:
            key = stack.pop(0)
            if key in seen or key not in self.classes:
                continue
            seen[key] = None
            order.append(key)
            stack = self.classes[key].bases + stack
        return order

    def lookup_method(self, class_key: str, name: str) -> Optional[str]:
        for key in self.class_mro(class_key):
            method = self.classes[key].methods.get(name)
            if method is not None:
                return method
        return None

    def lookup_attr_type(self, class_key: str, attr: str) -> Optional[str]:
        for key in self.class_mro(class_key):
            found = self.classes[key].attr_types.get(attr)
            if found is not None:
                return found
        return None

    def annotation_to_class(
        self, module: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            wrapper = dotted_name(annotation.value)
            if wrapper is not None and wrapper.split(".")[-1] in _OPTIONAL_WRAPPERS:
                inner = annotation.slice
                if isinstance(inner, ast.Tuple):
                    for elt in inner.elts:
                        found = self.annotation_to_class(module, elt)
                        if found is not None:
                            return found
                    return None
                return self.annotation_to_class(module, inner)
            return None
        dotted = dotted_name(annotation)
        if dotted is None:
            return None
        resolved = self.resolve_symbol(module, dotted)
        if resolved is not None and resolved in self.classes:
            return resolved
        return None

    def _infer_param_types(self, func: FunctionInfo) -> None:
        node = func.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        module = self.modules.get(func.module)
        if module is None:
            return
        args = list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs)
        for arg in args:
            if arg.arg in ("self", "cls") and func.class_key is not None:
                func.param_types[arg.arg] = func.class_key
                continue
            resolved = self.annotation_to_class(module, arg.annotation)
            if resolved is not None:
                func.param_types[arg.arg] = resolved
        if args and args[0].arg in ("self", "cls") and func.class_key is not None:
            func.param_types.setdefault(args[0].arg, func.class_key)

    def _value_class(self, module: ModuleInfo, value: ast.expr) -> Optional[str]:
        """Class key for the value of an assignment, best effort."""
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is None:
                return None
            resolved = self.resolve_symbol(module, dotted)
            if resolved is not None and resolved in self.classes:
                return resolved
            # ClassName.create(...) style factory: assume it returns an
            # instance of ClassName.
            head, _, _tail = dotted.rpartition(".")
            if head:
                resolved = self.resolve_symbol(module, head)
                if resolved is not None and resolved in self.classes:
                    return resolved
        return None

    def _infer_attr_types(self, cls: ClassInfo) -> bool:
        module = self.modules.get(cls.module)
        if module is None:
            return False
        changed = False

        def record(attr: str, type_key: Optional[str]) -> None:
            nonlocal changed
            if type_key is not None and cls.attr_types.get(attr) != type_key:
                cls.attr_types[attr] = type_key
                changed = True

        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                record(stmt.target.id, self.annotation_to_class(module, stmt.annotation))
        for method_key in cls.methods.values():
            func = self.functions.get(method_key)
            if func is None or not isinstance(
                func.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            decorators = [dotted_name(d) for d in func.node.decorator_list]
            if "property" in [d.split(".")[-1] for d in decorators if d]:
                record(func.name, self.annotation_to_class(module, func.node.returns))
            for node in ast.walk(func.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if annotation is not None:
                    record(attr, self.annotation_to_class(module, annotation))
                    continue
                if value is None:
                    continue
                if isinstance(value, ast.Name):
                    record(attr, func.param_types.get(value.id))
                elif isinstance(value, ast.Call):
                    record(attr, self._value_class(module, value))
                elif isinstance(value, ast.Attribute):
                    chain_type = self.expr_type(func, value)
                    record(attr, chain_type)
        return changed

    def _infer_local_types(self, func: FunctionInfo) -> None:
        node = func.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        module = self.modules.get(func.module)
        if module is None:
            return
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                inferred = self._value_class(module, stmt.value)
                if inferred is not None:
                    func.local_types[stmt.targets[0].id] = inferred

    # ------------------------------------------------------------------
    # typing of expressions and call resolution
    # ------------------------------------------------------------------

    def expr_type(self, func: FunctionInfo, expr: ast.expr) -> Optional[str]:
        """Class key for an expression in ``func``'s scope, best effort."""
        module = self.modules.get(func.module)
        if isinstance(expr, ast.Name):
            scope: Optional[FunctionInfo] = func
            while scope is not None:
                if expr.id in scope.param_types:
                    return scope.param_types[expr.id]
                if expr.id in scope.local_types:
                    return scope.local_types[expr.id]
                scope = self.functions.get(scope.parent) if scope.parent else None
            return None
        if isinstance(expr, ast.Attribute):
            base_type = self.expr_type(func, expr.value)
            if base_type is not None:
                return self.lookup_attr_type(base_type, expr.attr)
            return None
        if isinstance(expr, ast.Call) and module is not None:
            return self._value_class(module, expr)
        return None

    def resolve_name_target(self, func: FunctionInfo, name: str) -> Optional[CallTarget]:
        """Resolve a bare-name callable reference in ``func``'s scope."""
        scope: Optional[FunctionInfo] = func
        while scope is not None:
            if name in scope.children:
                return CallTarget(kind="local", key=scope.children[name])
            scope = self.functions.get(scope.parent) if scope.parent else None
        module = self.modules.get(func.module)
        if module is None:
            return None
        resolved = self.resolve_symbol(module, name)
        if resolved is not None:
            if resolved in self.functions:
                return CallTarget(kind="local", key=resolved)
            if resolved in self.classes:
                init = self.lookup_method(resolved, "__init__")
                if init is not None:
                    return CallTarget(kind="local", key=init)
                return CallTarget(kind="external", key=resolved)
            return CallTarget(kind="external", key=resolved)
        return None

    def resolve_call(self, func: FunctionInfo, call: ast.Call) -> CallTarget:
        target = call.func
        if isinstance(target, ast.Name):
            resolved = self.resolve_name_target(func, target.id)
            if resolved is not None:
                return resolved
            return CallTarget(kind="external", key=target.id)
        if isinstance(target, ast.Attribute):
            receiver = target.value
            method = target.attr
            receiver_type = self.expr_type(func, receiver)
            if receiver_type is not None:
                found = self.lookup_method(receiver_type, method)
                if found is not None:
                    return CallTarget(
                        kind="local", key=found, receiver=receiver, attr=method
                    )
                return CallTarget(
                    kind="external",
                    key=receiver_type + "." + method,
                    receiver=receiver,
                    attr=method,
                )
            dotted = dotted_name(target)
            module = self.modules.get(func.module)
            if dotted is not None and module is not None:
                resolved = self.resolve_symbol(module, dotted)
                if resolved is not None:
                    if resolved in self.functions:
                        return CallTarget(kind="local", key=resolved)
                    if resolved in self.classes:
                        init = self.lookup_method(resolved, "__init__")
                        if init is not None:
                            return CallTarget(kind="local", key=init)
                    return CallTarget(
                        kind="external", key=resolved, receiver=receiver, attr=method
                    )
            return CallTarget(
                kind="external", key=dotted, receiver=receiver, attr=method
            )
        return CallTarget(kind="unknown")


def build_graph(
    paths: Sequence[PathLike],
    sources: Optional[Iterable[tuple]] = None,
) -> CodeGraph:
    """Build and finalize a :class:`CodeGraph` over ``paths``.

    ``sources`` optionally supplies ``(path, text)`` pairs for content
    not on disk (used by tests).
    """
    graph = CodeGraph()
    for path in iter_python_files(paths):
        graph.add_source(path)
    if sources is not None:
        for path, text in sources:
            graph.add_source(path, text)
    graph.finalize()
    return graph
