"""Interprocedural effect inference and concurrency-contract checking.

Built on :mod:`repro.analysis.callgraph` (whole-package call graph) and
:mod:`repro.analysis.effects` (per-function local facts), this module
propagates effects to a fixpoint and enforces the three concurrency
contracts the ROADMAP's parallel/serving work depends on:

1. **worker-read-only** — everything reachable from the parallel worker
   entry points and the top-k search surface must be read-only on
   shared tree/node/dataset state.  Dominator-cache writes are allowed
   only through the sanctioned lock-guarded surface
   (:meth:`DominatorCache.record_dominators`).
2. **io-through-pool** — all I/O flows through ``BufferPool``: raw
   pager access outside ``repro.storage`` is a violation wherever it
   syntactically occurs or wherever a receiver is *typed* as the pager,
   and file I/O reachable from a worker entry point is a violation with
   a call-chain witness.  This supersedes the old syntactic
   ``pager-access`` lint rule; waive with ``# flow:
   waiver(io-through-pool)``.
3. **exception-safety** — on the fault/quarantine path
   (``repro.core.engine`` / ``repro.core.degraded``) no shared-state
   mutation may precede a possibly-raising storage call, so a fault
   never leaves the engine half-updated.

Effect atoms
------------

``mutates-param``, ``mutates-self``, ``mutates-global``,
``mutates-closure``, ``shared-write`` (a derived atom: an unguarded
write to state classified as *shared* — anything in ``repro.index`` /
``repro.storage`` / ``repro.model`` plus the dominator cache),
``buffer-io``, ``raw-io``, ``file-io``, ``raises-storage``, ``nondet``.

Masking during propagation is per call site: a call lexically inside a
``with <...lock...>:`` block drops ``shared-write``; a call inside a
``try`` whose handler catches the storage family (and does not
re-raise) drops ``raises-storage``; calling into ``repro.storage``
drops ``raw-io``/``file-io`` (the storage layer is where raw I/O is
supposed to live); calling a sanctioned writer drops ``shared-write``.

Waivers and baseline
--------------------

A finding is waived by ``# flow: waiver(<rule>)`` on the finding line,
the line above, or the anchor function's ``def`` line.  A checked-in
baseline file (JSON list of violation keys) lets CI ratchet: only *new*
violations fail the build.
"""

from __future__ import annotations

import fnmatch
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CodeGraph, FunctionInfo, build_graph
from .effects import FunctionEffects, Mutation, extract_all_effects

__all__ = [
    "EFFECT_KINDS",
    "FlowAnalysis",
    "FlowConfig",
    "FlowReport",
    "Violation",
    "analyze_paths",
    "collect_waivers",
    "finding_is_waived",
    "load_baseline",
]

EFFECT_KINDS = (
    "mutates-param",
    "mutates-self",
    "mutates-global",
    "mutates-closure",
    "shared-write",
    "buffer-io",
    "raw-io",
    "file-io",
    "raises-storage",
    "nondet",
)

FLOW_RULES = ("worker-read-only", "io-through-pool", "exception-safety")

_INIT_NAMES = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass(frozen=True)
class FlowConfig:
    """Declarative contract configuration.

    The defaults encode this repo's contracts; tests override fields to
    exercise the engine against fixture packages.
    """

    shared_module_prefixes: Tuple[str, ...] = (
        "repro.index",
        "repro.storage",
        "repro.model",
        # The vectorized kernel substrate is read from worker entry
        # chains (parallel candidate evaluation); its classes must obey
        # the same read-only contract as the index/storage layers.
        "repro.core.vectorized",
    )
    shared_classes: Tuple[str, ...] = (
        "repro.core.dominator_cache.DominatorCache",
    )
    storage_prefix: str = "repro.storage"
    accounting_attrs: Tuple[str, ...] = ("stats",)
    sanctioned_writers: Tuple[str, ...] = (
        "repro.core.dominator_cache.DominatorCache.record_dominators",
        "repro.core.dominator_cache.DominatorCache.add",
    )
    entry_patterns: Tuple[str, ...] = (
        "repro.core.parallel.ParallelAdvanced._evaluate_candidate",
        "repro.core.parallel.*.worker",
        "repro.core.kcr_algorithm.KcRAlgorithm._bound_and_prune",
        "repro.index.search.TopKSearcher.top_k",
        "repro.index.search.TopKSearcher.rank_of_missing",
        # The sharded execution path: every read-only shard operation
        # (bound / top_k / rank / kcr_init / kcr_step) funnels through
        # this single dispatcher, in-process in simulate mode and inside
        # the forked worker in process mode, so one entry covers both.
        "repro.index.sharded._worker_execute",
        # The serving layer's executor path: every admitted request runs
        # through this one method on a worker thread, against the shared
        # engine snapshot; it is held to the same read-only contract as
        # the shard workers (policy mutations live on the event loop).
        "repro.serve.server.WhyNotServer._execute",
    )
    exception_safe_modules: Tuple[str, ...] = (
        "repro.core.engine",
        "repro.core.degraded",
        # The server's promise is "never crash, classify instead":
        # its modules carry the same no-bare-raise discipline.
        "repro.serve.server",
        "repro.serve.breakers",
    )
    coverage_packages: Tuple[str, ...] = (
        "repro.core",
        "repro.index",
        "repro.storage",
        "repro.serve",
    )

    def is_shared_class(self, class_key: Optional[str]) -> bool:
        if class_key is None:
            return False
        if class_key in self.shared_classes:
            return True
        return any(
            class_key.startswith(prefix + ".")
            for prefix in self.shared_module_prefixes
        )

    def in_storage(self, module: str) -> bool:
        return module == self.storage_prefix or module.startswith(
            self.storage_prefix + "."
        )


@dataclass
class Violation:
    """One contract violation with its call-chain witness."""

    rule: str
    function: str  # anchor function (where the offending primitive is)
    entry: Optional[str]  # contract entry point, for chain-based rules
    module: str
    path: str
    line: int
    message: str
    chain: List[str] = field(default_factory=list)
    waived: bool = False
    baselined: bool = False

    @property
    def key(self) -> str:
        anchor = self.entry if self.entry is not None else self.function
        return f"{self.rule}::{anchor}::{self.function}"

    def format(self) -> str:
        header = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.chain:
            hops = "\n".join(f"    -> {hop}" for hop in self.chain)
            return header + "\n" + hops
        return header


class FlowAnalysis:
    """Fixpoint effect propagation over a :class:`CodeGraph`."""

    def __init__(self, graph: CodeGraph, config: Optional[FlowConfig] = None) -> None:
        self.graph = graph
        self.config = config or FlowConfig()
        self.effects: Dict[str, FunctionEffects] = {}
        self.signatures: Dict[str, Set[str]] = {}
        # (function, atom) -> ("local", line) | ("call", callee, line)
        self.sources: Dict[Tuple[str, str], Tuple] = {}

    # ------------------------------------------------------------------
    # fixpoint
    # ------------------------------------------------------------------

    def run(self) -> "FlowAnalysis":
        self.effects = extract_all_effects(self.graph)
        for key in self.graph.functions:
            self.signatures[key] = set()
        for key, eff in self.effects.items():
            self._seed_local_atoms(key, eff)
        self._propagate()
        return self

    def _mutation_is_exempt(self, func: FunctionInfo, mut: Mutation) -> bool:
        if mut.kind == "self" and func.name in _INIT_NAMES:
            return True
        if mut.kind == "self" and mut.attr in self.config.accounting_attrs:
            return True
        return False

    def _seed_local_atoms(self, key: str, eff: FunctionEffects) -> None:
        func = self.graph.functions[key]
        sig = self.signatures[key]

        def add(atom: str, line: int) -> None:
            if atom not in sig:
                sig.add(atom)
                self.sources[(key, atom)] = ("local", line)

        for mut in eff.mutations:
            if mut.guarded or mut.kind == "local":
                continue
            if self._mutation_is_exempt(func, mut):
                continue
            if mut.kind == "self":
                add("mutates-self", mut.line)
                if self.config.is_shared_class(func.class_key):
                    add("shared-write", mut.line)
            elif mut.kind == "param":
                add("mutates-param", mut.line)
                param_type = func.param_types.get(mut.root or "")
                if self.config.is_shared_class(param_type):
                    add("shared-write", mut.line)
            elif mut.kind == "global":
                add("mutates-global", mut.line)
                add("shared-write", mut.line)
            elif mut.kind == "closure":
                add("mutates-closure", mut.line)
        for site in eff.io_sites:
            add(site.kind, site.line)
        for line in eff.raise_lines:
            add("raises-storage", line)
        if eff.nondet_names:
            add("nondet", func.line)

    def _origin_mutation_kind(self, key: str, atom: str) -> Optional[str]:
        """Mutation kind ("self"/"param"/"global") at the atom's origin."""
        hops = self.chain(key, atom)
        if not hops:
            return None
        origin_key, origin_line = hops[-1]
        eff = self.effects.get(origin_key)
        if eff is None:
            return None
        for mut in eff.mutations:
            if mut.line == origin_line:
                return mut.kind
        return None

    def _masked_atoms(self, callee_key: str, site) -> Set[str]:
        """Atoms of ``callee_key`` that survive ``site``'s masks."""
        callee_sig = self.signatures.get(callee_key, set())
        callee = self.graph.functions.get(callee_key)
        # ``ClassName(...)`` instantiation: the new object is private to
        # the caller until published, so writes *to it* are not effects
        # of the caller (the standard escape assumption).  An explicit
        # ``obj.__init__()`` call keeps its receiver and is not masked.
        is_instantiation = (
            callee is not None
            and callee.name == "__init__"
            and site.target.receiver is None
        )
        out = set()
        for atom in callee_sig:
            if atom == "mutates-self" and is_instantiation:
                continue
            if atom == "shared-write":
                if site.in_lock:
                    continue
                if callee_key in self.config.sanctioned_writers:
                    continue
                if (
                    is_instantiation
                    and self._origin_mutation_kind(callee_key, atom) == "self"
                ):
                    continue
            if atom == "raises-storage" and site.storage_masked:
                continue
            if atom in ("raw-io", "file-io") and callee is not None:
                if self.config.in_storage(callee.module):
                    continue
            out.add(atom)
        return out

    def _propagate(self) -> None:
        callers: Dict[str, List[Tuple[str, object]]] = {}
        for key, eff in self.effects.items():
            for site in eff.calls:
                if site.target.kind == "local" and site.target.key:
                    callers.setdefault(site.target.key, []).append((key, site))
        worklist = sorted(self.signatures)
        pending = set(worklist)
        while worklist:
            callee_key = worklist.pop()
            pending.discard(callee_key)
            for caller_key, site in callers.get(callee_key, []):
                caller_sig = self.signatures[caller_key]
                incoming = self._masked_atoms(callee_key, site)
                new_atoms = incoming - caller_sig
                if not new_atoms:
                    continue
                for atom in sorted(new_atoms):
                    caller_sig.add(atom)
                    self.sources[(caller_key, atom)] = (
                        "call",
                        callee_key,
                        site.line,
                    )
                if caller_key not in pending:
                    pending.add(caller_key)
                    worklist.append(caller_key)

    # ------------------------------------------------------------------
    # witnesses
    # ------------------------------------------------------------------

    def chain(self, key: str, atom: str) -> List[Tuple[str, int]]:
        """Hops from ``key`` to the local origin of ``atom``."""
        hops: List[Tuple[str, int]] = []
        seen: Set[str] = set()
        current = key
        while current not in seen:
            seen.add(current)
            source = self.sources.get((current, atom))
            if source is None:
                break
            if source[0] == "local":
                hops.append((current, source[1]))
                break
            _, callee, line = source
            hops.append((current, line))
            current = callee
        return hops

    def render_chain(self, key: str, atom: str) -> List[str]:
        out = []
        for func_key, line in self.chain(key, atom):
            func = self.graph.functions.get(func_key)
            where = f"{func.path}:{line}" if func is not None else f"?:{line}"
            out.append(f"{func_key} ({where})")
        return out

    # ------------------------------------------------------------------
    # contracts
    # ------------------------------------------------------------------

    def entry_points(self) -> List[str]:
        out = []
        for key in sorted(self.graph.functions):
            if any(fnmatch.fnmatch(key, pat) for pat in self.config.entry_patterns):
                out.append(key)
        return out

    def check_contracts(self) -> List[Violation]:
        violations: List[Violation] = []
        violations.extend(self._check_worker_read_only())
        violations.extend(self._check_io_through_pool())
        violations.extend(self._check_exception_safety())
        return violations

    def _anchor_of(self, entry: str, atom: str) -> Tuple[str, int]:
        hops = self.chain(entry, atom)
        if hops:
            return hops[-1]
        func = self.graph.functions[entry]
        return entry, func.line

    def _check_worker_read_only(self) -> List[Violation]:
        out = []
        for entry in self.entry_points():
            if "shared-write" not in self.signatures.get(entry, set()):
                continue
            anchor_key, line = self._anchor_of(entry, "shared-write")
            anchor = self.graph.functions[anchor_key]
            out.append(
                Violation(
                    rule="worker-read-only",
                    function=anchor_key,
                    entry=entry,
                    module=anchor.module,
                    path=anchor.path,
                    line=line,
                    message=(
                        f"worker entry point {entry} reaches an unguarded "
                        f"write to shared state in {anchor_key}"
                    ),
                    chain=self.render_chain(entry, "shared-write"),
                )
            )
        return out

    def _check_io_through_pool(self) -> List[Violation]:
        out = []
        for key in sorted(self.graph.functions):
            func = self.graph.functions[key]
            if self.config.in_storage(func.module):
                continue
            eff = self.effects.get(key)
            if eff is None:
                continue
            seen_lines: Set[int] = set()
            for site in eff.io_sites:
                if site.kind != "raw-io" or site.line in seen_lines:
                    continue
                seen_lines.add(site.line)
                out.append(
                    Violation(
                        rule="io-through-pool",
                        function=key,
                        entry=None,
                        module=func.module,
                        path=func.path,
                        line=site.line,
                        message=(
                            f"{key} accesses the pager directly "
                            f"({site.detail}); all I/O must go through "
                            f"BufferPool"
                        ),
                    )
                )
        for entry in self.entry_points():
            if "file-io" not in self.signatures.get(entry, set()):
                continue
            anchor_key, line = self._anchor_of(entry, "file-io")
            anchor = self.graph.functions[anchor_key]
            out.append(
                Violation(
                    rule="io-through-pool",
                    function=anchor_key,
                    entry=entry,
                    module=anchor.module,
                    path=anchor.path,
                    line=line,
                    message=(
                        f"worker entry point {entry} reaches file I/O in "
                        f"{anchor_key}; the hot path must stay inside "
                        f"BufferPool"
                    ),
                    chain=self.render_chain(entry, "file-io"),
                )
            )
        return out

    def _callee_mutates_shared_locally(self, callee_key: str) -> Optional[Mutation]:
        callee = self.graph.functions.get(callee_key)
        eff = self.effects.get(callee_key)
        if callee is None or eff is None or callee.name in _INIT_NAMES:
            return None
        for mut in eff.mutations:
            if mut.guarded or mut.kind not in ("self", "global"):
                continue
            if self._mutation_is_exempt(callee, mut):
                continue
            return mut
        return None

    def _check_exception_safety(self) -> List[Violation]:
        out = []
        subject_modules = set(self.config.exception_safe_modules)
        for key in sorted(self.graph.functions):
            func = self.graph.functions[key]
            if func.module not in subject_modules or func.name in _INIT_NAMES:
                continue
            eff = self.effects[key]
            markers: List[Tuple[int, int, str]] = []
            for mut in eff.mutations:
                if mut.guarded or mut.kind not in ("self", "global"):
                    continue
                if self._mutation_is_exempt(func, mut):
                    continue
                markers.append(
                    (mut.stmt_index, mut.line, f"mutates {mut.kind}.{mut.attr}")
                )
            for site in eff.calls:
                if site.is_reference or site.target.kind != "local":
                    continue
                if site.receiver_kind not in ("self", "param", "global", "closure"):
                    continue
                mut = self._callee_mutates_shared_locally(site.target.key or "")
                if mut is not None:
                    markers.append(
                        (
                            site.stmt_index,
                            site.line,
                            f"call to {site.target.key} mutates shared state",
                        )
                    )
            if not markers:
                continue
            raising: List[Tuple[int, int, Optional[str]]] = []
            for site in eff.calls:
                if site.is_reference or site.storage_masked:
                    continue
                if site.target.kind != "local" or site.target.key is None:
                    continue
                if "raises-storage" in self.signatures.get(site.target.key, set()):
                    raising.append((site.stmt_index, site.line, site.target.key))
            for index, line in zip(eff.raise_indexes, eff.raise_lines):
                raising.append((index, line, None))
            for r_index, r_line, callee in sorted(raising):
                earlier = [m for m in markers if m[0] < r_index]
                if not earlier:
                    continue
                _, m_line, m_desc = earlier[0]
                chain = (
                    self.render_chain(callee, "raises-storage")
                    if callee is not None
                    else []
                )
                out.append(
                    Violation(
                        rule="exception-safety",
                        function=key,
                        entry=None,
                        module=func.module,
                        path=func.path,
                        line=r_line,
                        message=(
                            f"{key} mutates state at line {m_line} "
                            f"({m_desc}) before a possibly-raising storage "
                            f"call at line {r_line}; a fault would leave "
                            f"the engine half-updated"
                        ),
                        chain=chain,
                    )
                )
                break  # one finding per function keeps the report readable
        return out


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------


def collect_waivers(path: str, source: Optional[str] = None) -> Dict[int, Set[str]]:
    """Map line -> waived rule names for one file.

    Recognises ``# flow: waiver(rule[, rule])``.  (The one-time
    ``# lint: pager-access`` alias from the lint-era annotations was
    retired once every site migrated to the flow form.)
    """
    if source is None:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            return {}
    waivers: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            line = token.start[0]
            if text.startswith("flow:"):
                body = text[len("flow:") :].strip()
                if body.startswith("waiver(") and body.endswith(")"):
                    names = {
                        n.strip() for n in body[len("waiver(") : -1].split(",")
                    }
                    waivers.setdefault(line, set()).update(n for n in names if n)
    except tokenize.TokenError:
        pass
    return waivers


def finding_is_waived(
    rule: str,
    path: str,
    line: int,
    function: Optional[str],
    graph: Optional[CodeGraph],
    waiver_cache: Dict[str, Dict[int, Set[str]]],
    used: Optional[Set[Tuple[str, int, str]]] = None,
) -> bool:
    """Shared waiver predicate for flow/taint/lifetime findings.

    A finding is waived by ``# flow: waiver(<rule>)`` (or ``waiver(*)``)
    on the finding line, the line above, or the anchor function's
    ``def`` line.  When ``used`` is given, every matching waiver's
    ``(path, line, rule-name)`` position is recorded — the stale-waiver
    detector reports inventory positions that never match anything.
    """
    if path not in waiver_cache:
        waiver_cache[path] = collect_waivers(path)
    waivers = waiver_cache[path]
    lines = {line, line - 1}
    anchor = graph.functions.get(function) if graph and function else None
    if anchor is not None:
        lines.update({anchor.line, anchor.line - 1})
    accepted = {rule, "*"}
    hit = False
    for cand in lines:
        matched = waivers.get(cand, set()) & accepted
        if matched:
            hit = True
            if used is not None:
                for name in matched:
                    used.add((path, cand, name))
    return hit


def _violation_is_waived(
    violation: Violation,
    graph: CodeGraph,
    waiver_cache: Dict[str, Dict[int, Set[str]]],
    used: Optional[Set[Tuple[str, int, str]]] = None,
) -> bool:
    return finding_is_waived(
        violation.rule,
        violation.path,
        violation.line,
        violation.function,
        graph,
        waiver_cache,
        used,
    )


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------


def load_baseline(path: str) -> Set[str]:
    """Violation keys recorded in a baseline file (empty if absent)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    return set(payload.get("violations", []))


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


@dataclass
class FlowReport:
    """Machine-readable result of one analysis run."""

    n_modules: int
    n_functions: int
    coverage: Dict[str, Dict[str, int]]
    signatures: Dict[str, List[str]]
    violations: List[Violation]
    errors: List[str]

    @property
    def blocking(self) -> List[Violation]:
        return [v for v in self.violations if not v.waived and not v.baselined]

    def baseline_payload(self) -> Dict:
        keys = sorted({v.key for v in self.violations if not v.waived})
        return {"version": 1, "violations": keys}

    def to_dict(self, include_signatures: bool = True) -> Dict:
        payload: Dict = {
            "modules": self.n_modules,
            "functions": self.n_functions,
            "coverage": self.coverage,
            "violations": [
                {
                    "rule": v.rule,
                    "key": v.key,
                    "function": v.function,
                    "entry": v.entry,
                    "module": v.module,
                    "path": v.path,
                    "line": v.line,
                    "message": v.message,
                    "chain": v.chain,
                    "waived": v.waived,
                    "baselined": v.baselined,
                }
                for v in self.violations
            ],
            "errors": list(self.errors),
        }
        if include_signatures:
            payload["signatures"] = self.signatures
        return payload

    def to_json(self, include_signatures: bool = True) -> str:
        return json.dumps(self.to_dict(include_signatures), indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [
            f"flow: {self.n_functions} functions across "
            f"{self.n_modules} modules"
        ]
        for package in sorted(self.coverage):
            stats = self.coverage[package]
            lines.append(
                f"  {package}: {stats['signed']}/{stats['functions']} "
                f"functions signed"
            )
        blocking = self.blocking
        suppressed = len(self.violations) - len(blocking)
        if suppressed:
            lines.append(f"  {suppressed} finding(s) waived or baselined")
        for violation in blocking:
            lines.append(violation.format())
        if not blocking:
            lines.append("  no new contract violations")
        for error in self.errors:
            lines.append(f"  parse error: {error}")
        return "\n".join(lines)


def _coverage(graph: CodeGraph, signatures: Dict[str, Set[str]], config: FlowConfig):
    coverage: Dict[str, Dict[str, int]] = {}
    for package in config.coverage_packages:
        total = 0
        signed = 0
        for key, func in graph.functions.items():
            if func.module == package or func.module.startswith(package + "."):
                total += 1
                if key in signatures:
                    signed += 1
        coverage[package] = {"functions": total, "signed": signed}
    return coverage


def analyze_paths(
    paths: Sequence,
    config: Optional[FlowConfig] = None,
    baseline: Optional[Set[str]] = None,
    graph: Optional[CodeGraph] = None,
) -> FlowReport:
    """Run the full pipeline over ``paths`` and return a report.

    Pass a prebuilt ``graph`` to share one :func:`build_graph` result
    across the lint/flow/taint/lifetime layers (the unified driver
    does); otherwise the graph is built here.
    """
    config = config or FlowConfig()
    if graph is None:
        graph = build_graph(paths)
    analysis = FlowAnalysis(graph, config).run()
    violations = analysis.check_contracts()
    waiver_cache: Dict[str, Dict[int, Set[str]]] = {}
    for violation in violations:
        violation.waived = _violation_is_waived(violation, graph, waiver_cache)
        if baseline and violation.key in baseline:
            violation.baselined = True
    return FlowReport(
        n_modules=len(graph.modules),
        n_functions=len(graph.functions),
        coverage=_coverage(graph, analysis.signatures, config),
        signatures={
            key: sorted(atoms) for key, atoms in analysis.signatures.items()
        },
        violations=violations,
        errors=list(graph.errors),
    )
