"""Custom AST lint rules for the ``repro`` codebase.

A small, dependency-free rule engine plus the repo-specific rules that
guard the reproduction's correctness conventions.  Generic linters
cannot know that ``lam == 0.0`` silently breaks the Eqn 6 early-stop
bound, that a bare ``assert`` protecting a Theorem 1 precondition
vanishes under ``python -O``, or that calling the :class:`Pager`
directly bypasses the buffer pool and corrupts the paper's VII-A1 I/O
counters — these rules do.

Rules (names are what waiver comments reference):

``exact-float``
    No ``==``/``!=`` against float literals in scoring / penalty /
    geometry / index code.  Use :mod:`repro.model.numeric` helpers
    (``approx_eq`` / ``approx_zero``) or waive with
    ``# lint: exact-float`` when bit-exactness is intended.
``bare-assert``
    No ``assert`` statements anywhere under ``repro.*`` runtime code
    (stripped by ``python -O``); raise from :mod:`repro.errors`
    (``ensure`` / ``ensure_not_none``) instead.
``pager-access``
    No direct :class:`Pager` construction or method access outside
    :mod:`repro.storage` — all page I/O flows through
    :class:`~repro.storage.buffer_pool.BufferPool` so hit/miss
    accounting stays honest.
``mutable-default``
    No mutable default argument values (lists, dicts, sets, comprehensions,
    ``Counter()``-style constructor calls).
``public-annotations``
    Public functions in ``repro.core`` / ``repro.index`` /
    ``repro.model`` must annotate every parameter and the return type.
``no-print``
    No ``print()`` in library code; only :mod:`repro.cli` and
    :mod:`repro.experiments.reporting` talk to stdout.

**Waivers.**  A finding is suppressed when the offending line — or a
comment-only line directly above it — carries ``# lint: <rule>`` (a
comma-separated rule list, or ``# lint: *`` for all rules).  Waivers
are deliberate, reviewable markers; the CI workflow fails on any
unwaived finding.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

PathLike = Union[str, Path]

__all__ = [
    "Finding",
    "LintRule",
    "ModuleSource",
    "Linter",
    "DEFAULT_RULES",
    "default_linter",
    "lint_paths",
]

WAIVE_ALL = "*"
_WAIVER_PREFIX = "lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class ModuleSource:
    """A parsed module plus the metadata rules need to scope themselves."""

    path: Path
    module: Optional[str]  # dotted module, e.g. "repro.core.penalty"
    tree: ast.Module
    waivers: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path) -> "ModuleSource":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            module=_module_name(path),
            tree=tree,
            waivers=_collect_waivers(source),
        )

    def in_package(self, *prefixes: str) -> bool:
        """True when the module lives under any of the dotted prefixes."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def is_waived(
        self,
        rule: str,
        line: int,
        used: Optional[Set[Tuple[str, int, str]]] = None,
    ) -> bool:
        """Waived on the finding's line or a comment line directly above.

        When ``used`` is given, every matching waiver's
        ``(path, line, rule-name)`` position is recorded so the
        stale-waiver detector can report comments that suppress
        nothing.
        """
        hit = False
        for candidate in (line, line - 1):
            waived = self.waivers.get(candidate)
            if waived is None:
                continue
            matched = waived & {rule, WAIVE_ALL}
            if matched:
                hit = True
                if used is not None:
                    for name in matched:
                        used.add((str(self.path), candidate, name))
        return hit


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name, anchored at the ``repro`` package directory."""
    parts = [p for p in path.resolve().parts]
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][:-3]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def _collect_waivers(source: str) -> Dict[int, Set[str]]:
    """Map line number -> waived rule names from ``# lint:`` comments."""
    waivers: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(_WAIVER_PREFIX):
                continue
            names = text[len(_WAIVER_PREFIX):].strip()
            rules = {name.strip() for name in names.split(",") if name.strip()}
            if rules:
                waivers.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # unterminated strings etc.; the ast parse will have failed too
    return waivers


class LintRule:
    """Base class: one named check over a parsed module."""

    name: str = "abstract"
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=str(module.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class FloatEqualityRule(LintRule):
    """No ``==``/``!=`` against float literals in numeric-critical code.

    ``score == 0.95`` is almost never what the author means once the
    operands are derived values; Eqn 4 penalties and Eqn 1 scores are
    sums of products of floats and differ by ulps across evaluation
    orders.  Compare through :func:`repro.model.numeric.approx_eq` /
    ``approx_zero``, or waive with ``# lint: exact-float`` when the
    compared value is provably bit-exact (e.g. assigned literally in
    the same scope).
    """

    name = "exact-float"
    description = "float-literal ==/!= comparison in scoring/penalty/geometry code"
    scopes = ("repro.model", "repro.core", "repro.index")
    exempt_modules = ("repro.model.numeric",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scopes):
            return
        if module.module in self.exempt_modules:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        module,
                        node,
                        "float-literal equality comparison; use "
                        "repro.model.numeric.approx_eq/approx_zero or waive "
                        "with '# lint: exact-float' if exactness is intended",
                    )
                    break


class BareAssertRule(LintRule):
    """No ``assert`` in runtime library code.

    ``python -O`` strips asserts, so an invariant guarded by one simply
    disappears in optimised deployments.  Use
    :func:`repro.errors.ensure` / :func:`repro.errors.ensure_not_none`,
    which raise :class:`repro.errors.InvariantViolationError`.
    """

    name = "bare-assert"
    description = "assert statement in runtime code (stripped by python -O)"
    scopes = ("repro",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scopes):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module,
                    node,
                    "bare assert is stripped by 'python -O'; raise via "
                    "repro.errors.ensure/ensure_not_none instead",
                )


class PagerAccessRule(LintRule):
    """All page I/O outside ``repro.storage`` must go through BufferPool.

    .. deprecated::
        Retired from :data:`DEFAULT_RULES` in favour of the call-graph
        aware ``io-through-pool`` contract in
        :mod:`repro.analysis.flow`, which sees through typed receivers
        and helper indirection this syntactic rule cannot.  The class
        stays importable for bespoke :class:`Linter` configurations;
        waive the flow contract with ``# flow:
        waiver(io-through-pool)`` (the transitional ``# lint:
        pager-access`` alias is gone).

    Flags (outside :mod:`repro.storage`):

    * ``Pager(...)`` construction — use ``BufferPool.create(...)``;
    * any attribute access *on* a ``pager`` object (``self.pager.read``,
      ``tree.pager.allocate``, ``pager.free`` …) — use the pool's
      ``fetch`` / ``allocate`` / ``update`` / ``free`` pass-throughs,
      which keep the cache coherent and the hit/miss counters honest.

    Handing the pager object itself to storage-layer helpers
    (``PackedWriter(tree.buffer.pager)``) is allowed: passing a
    reference is not I/O.
    """

    name = "pager-access"
    description = "direct Pager construction/method access outside repro.storage"
    scopes = ("repro",)
    exempt = ("repro.storage",)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scopes):
            return
        if module.in_package(*self.exempt):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Pager"
            ):
                yield self.finding(
                    module,
                    node,
                    "direct Pager construction; use BufferPool.create() so "
                    "all I/O is pool-accounted",
                )
            elif isinstance(node, ast.Attribute) and self._is_pager_member(node):
                yield self.finding(
                    module,
                    node,
                    f"direct pager access '.pager.{node.attr}'; route page "
                    "I/O through the BufferPool "
                    "(fetch/allocate/update/free)",
                )

    @staticmethod
    def _is_pager_member(node: ast.Attribute) -> bool:
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "pager":
            return True
        if isinstance(value, ast.Name) and value.id == "pager":
            return True
        return False


class MutableDefaultRule(LintRule):
    """No mutable default argument values."""

    name = "mutable-default"
    description = "mutable default argument value"
    scopes = ("repro",)
    _mutable_calls = {
        "list",
        "dict",
        "set",
        "bytearray",
        "Counter",
        "defaultdict",
        "OrderedDict",
        "deque",
    }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scopes):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default in {node.name}(); default to None "
                        "and materialise inside the function",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            return name in self._mutable_calls
        return False


class PublicAnnotationRule(LintRule):
    """Public API in core/index/model must be fully type-annotated.

    Covers module-level and class-level functions whose name does not
    start with ``_`` (plus ``__init__``): every parameter except
    ``self``/``cls`` needs an annotation, and so does the return type.
    Nested helper functions are implementation details and exempt.
    """

    name = "public-annotations"
    description = "missing type annotations on public repro.core/index/model API"
    scopes = ("repro.core", "repro.index", "repro.model")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scopes):
            return
        yield from self._check_body(module, module.tree.body)

    def _check_body(
        self, module: ModuleSource, body: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(module, node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_") and node.name != "__init__":
                    continue
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleSource, node: ast.FunctionDef
    ) -> Iterator[Finding]:
        args = node.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        missing = [
            p.arg
            for p in params
            if p.annotation is None and p.arg not in ("self", "cls")
        ]
        for vararg, prefix in ((args.vararg, "*"), (args.kwarg, "**")):
            if vararg is not None and vararg.annotation is None:
                missing.append(prefix + vararg.arg)
        if missing:
            yield self.finding(
                module,
                node,
                f"public function {node.name}() lacks parameter annotations: "
                + ", ".join(missing),
            )
        if node.returns is None:
            yield self.finding(
                module,
                node,
                f"public function {node.name}() lacks a return annotation",
            )


class NoPrintRule(LintRule):
    """Library code must not print; only CLI/reporting surfaces do."""

    name = "no-print"
    description = "print() call outside repro.cli / repro.experiments.reporting"
    scopes = ("repro",)
    exempt_modules = ("repro.cli", "repro.experiments.reporting")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not module.in_package(*self.scopes):
            return
        if module.module in self.exempt_modules:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code; return data or log through "
                    "repro.cli / repro.experiments.reporting",
                )


# PagerAccessRule is intentionally absent: the call-graph-aware
# io-through-pool contract (repro.analysis.flow) replaced it.
DEFAULT_RULES: Tuple[LintRule, ...] = (
    FloatEqualityRule(),
    BareAssertRule(),
    MutableDefaultRule(),
    PublicAnnotationRule(),
    NoPrintRule(),
)


class Linter:
    """Runs a rule set over files, applying per-line waivers."""

    def __init__(self, rules: Optional[Sequence[LintRule]] = None) -> None:
        self.rules: Tuple[LintRule, ...] = (
            tuple(rules) if rules is not None else DEFAULT_RULES
        )
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names: {sorted(names)}")

    def lint_file(
        self,
        path: Path,
        include_waived: bool = False,
        used_waivers: Optional[Set[Tuple[str, int, str]]] = None,
    ) -> List[Finding]:
        """Findings for one file.

        Waived findings are dropped unless ``include_waived`` is set, in
        which case they are returned with ``waived=True`` (the unified
        ``analyze`` report shows them as suppressed rather than hiding
        them).  ``used_waivers`` collects the waiver positions that
        actually matched a finding — see :meth:`ModuleSource.is_waived`.
        """
        try:
            module = ModuleSource.parse(path)
        except SyntaxError as exc:
            return [
                Finding(
                    rule="syntax",
                    path=str(path),
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                waived = module.is_waived(
                    rule.name, finding.line, used=used_waivers
                )
                if not waived:
                    findings.append(finding)
                elif include_waived:
                    findings.append(replace(finding, waived=True))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def lint(
        self,
        paths: Iterable[PathLike],
        include_waived: bool = False,
        used_waivers: Optional[Set[Tuple[str, int, str]]] = None,
    ) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(set(self._expand(paths))):
            findings.extend(
                self.lint_file(
                    path,
                    include_waived=include_waived,
                    used_waivers=used_waivers,
                )
            )
        return findings

    @staticmethod
    def _expand(paths: Iterable[PathLike]) -> Iterator[Path]:
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                yield from path.rglob("*.py")
            else:
                yield path


def default_linter() -> Linter:
    """A linter with the full repo rule set."""
    return Linter(DEFAULT_RULES)


def lint_paths(paths: Iterable[PathLike]) -> List[Finding]:
    """Lint files/directories with the default rules; sorted findings."""
    return default_linter().lint(paths)
