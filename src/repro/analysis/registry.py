"""Shared nondeterminism taxonomy: sources, sanitizers, and sinks.

Both the per-function ``nondet`` effect (:mod:`repro.analysis.effects`)
and the determinism-taint checker (:mod:`repro.analysis.taint`) consume
this single registry, so the two passes cannot drift — a name added
here immediately flags in the effect signatures *and* participates in
source→sink propagation.

Sources are classified by *kind*, because sinks exempt kinds
selectively (``WhyNotAnswer.elapsed_seconds`` is allowed to carry a
``time`` value — it *is* a measured duration — while a ``time`` value
in ``results`` would be a reproducibility bug):

``time``
    ``time.time`` / ``perf_counter`` / ``monotonic`` / ``process_time``
    families.  ``time.sleep`` is deliberately absent: it delays, it
    does not vary results.
``random``
    ``random.*`` / ``numpy.random.*`` / ``uuid.*`` / ``secrets.*`` /
    ``os.urandom``.  Seeded generator *construction*
    (``default_rng(seed)``, ``Random(seed)``) is excluded — a seeded
    stream is the repo's sanctioned randomness.
``fs-order``
    ``os.listdir`` / ``os.scandir`` / ``Path.iterdir`` / ``glob`` —
    directory enumeration order is filesystem-dependent.
``unordered-iter``
    Iteration over a ``set`` / ``frozenset`` literal, constructor, or
    comprehension.  The *container* is fine; the *iteration order* is
    what taints.
``hash-id``
    ``hash()`` / ``id()`` values (PYTHONHASHSEED / allocator
    dependent).

Sanitizers erase kinds from a value: ``sorted()`` (and ``min`` /
``max`` / ``len``) erase order-dependence; ``numeric.quantize`` is the
explicit blessing for a value intended to be emitted bit-stably.

Sinks are where nondeterminism becomes an externally visible artifact:
the result dataclasses (:class:`repro.core.result.TopKOutcome` /
``WhyNotAnswer`` / ``RefinedQuery``), the checksummed persistence
writers, and the ``BENCH_*`` emitters (``json.dump`` — exempt for
``time`` because latency payloads are recorded by design and the bench
gate normalizes them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "KIND_TIME",
    "KIND_RANDOM",
    "KIND_FS_ORDER",
    "KIND_UNORDERED",
    "KIND_HASH_ID",
    "TAINT_KINDS",
    "NONDET_PREFIXES",
    "NONDET_NAMES",
    "SEEDED_CTOR_NAMES",
    "FS_ORDER_NAMES",
    "FS_ORDER_METHODS",
    "HASH_ID_NAMES",
    "UNORDERED_CTOR_NAMES",
    "SANITIZERS",
    "SinkSpec",
    "SINKS",
    "nondet_kind",
    "sanitizer_clears",
    "sink_for_call",
]

KIND_TIME = "time"
KIND_RANDOM = "random"
KIND_FS_ORDER = "fs-order"
KIND_UNORDERED = "unordered-iter"
KIND_HASH_ID = "hash-id"

TAINT_KINDS: Tuple[str, ...] = (
    KIND_TIME,
    KIND_RANDOM,
    KIND_FS_ORDER,
    KIND_UNORDERED,
    KIND_HASH_ID,
)

ORDER_KINDS: FrozenSet[str] = frozenset({KIND_FS_ORDER, KIND_UNORDERED})

# -- sources -----------------------------------------------------------

# Dotted-prefix families: any call under these is nondeterministic.
NONDET_PREFIXES: Tuple[str, ...] = (
    "random.",
    "numpy.random.",
    "np.random.",
    "uuid.",
    "secrets.",
)

# Exact names.  time.sleep is excluded by omission (see module doc).
NONDET_NAMES: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "os.urandom",
        "random",
    }
)

# Seeded generator construction: deterministic by definition when the
# seed argument is present, so these are *not* taint sources.
SEEDED_CTOR_NAMES: FrozenSet[str] = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "np.random.default_rng",
        "numpy.random.RandomState",
        "np.random.RandomState",
        "numpy.random.Generator",
        "np.random.Generator",
    }
)

FS_ORDER_NAMES: FrozenSet[str] = frozenset({"os.listdir", "os.scandir"})
# Matched by terminal method name on any receiver (Path-like objects).
FS_ORDER_METHODS: FrozenSet[str] = frozenset({"iterdir", "glob", "rglob"})

HASH_ID_NAMES: FrozenSet[str] = frozenset({"hash", "id"})

# set()/frozenset() construction yields an *unordered container* — not
# tainted yet; iterating it produces KIND_UNORDERED values.
UNORDERED_CTOR_NAMES: FrozenSet[str] = frozenset({"set", "frozenset"})


def nondet_kind(candidate: str) -> Optional[str]:
    """Taint kind for a dotted call name, or ``None`` if deterministic.

    This is the single decision point shared by the ``nondet`` effect
    and the taint checker.
    """
    if candidate in NONDET_NAMES:
        return KIND_TIME if candidate.startswith("time.") else KIND_RANDOM
    if candidate.startswith(NONDET_PREFIXES):
        return KIND_RANDOM
    if candidate in FS_ORDER_NAMES:
        return KIND_FS_ORDER
    return None


# -- sanitizers --------------------------------------------------------

# Callable name -> kinds the call's *result* no longer carries.  "*"
# means all kinds (the full determinism blessing).
SANITIZERS: Dict[str, FrozenSet[str]] = {
    # Canonical ordering: the result of sorted() is order-independent
    # of its input's iteration order.
    "sorted": ORDER_KINDS,
    # min/max/len over exact values are iteration-order independent.
    "min": ORDER_KINDS,
    "max": ORDER_KINDS,
    "len": frozenset(TAINT_KINDS),
    # The repo's explicit emit-stability blessing (Eqn 4/6 penalties
    # are quantized before comparison or persistence).
    "quantize": frozenset(TAINT_KINDS),
    "repro.model.numeric.quantize": frozenset(TAINT_KINDS),
    # Deterministic merge helpers: tie-broken, order-canonical merges.
    "merged": ORDER_KINDS,
    "merge": ORDER_KINDS,
}


def sanitizer_clears(name: str) -> Optional[FrozenSet[str]]:
    """Kinds cleared by calling ``name``, or None if not a sanitizer."""
    if name in SANITIZERS:
        return SANITIZERS[name]
    terminal = name.split(".")[-1]
    return SANITIZERS.get(terminal)


# -- sinks -------------------------------------------------------------


@dataclass(frozen=True)
class SinkSpec:
    """One place where nondeterminism becomes externally visible.

    ``fields`` gives the positional-argument → field-name mapping for
    constructor sinks so positional construction is checked the same
    as keyword construction.  ``field_exempt`` allows specific kinds
    into specific fields; ``exempt`` allows kinds into every argument.
    """

    name: str  # terminal callable name ("TopKOutcome", "json.dump")
    kind: str  # "ctor" | "call"
    fields: Tuple[str, ...] = ()
    field_exempt: Tuple[Tuple[str, FrozenSet[str]], ...] = ()
    exempt: FrozenSet[str] = frozenset()

    def exempt_kinds(self, field_name: Optional[str]) -> FrozenSet[str]:
        out = set(self.exempt)
        if field_name is not None:
            for name, kinds in self.field_exempt:
                if name == field_name:
                    out.update(kinds)
        return frozenset(out)


SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec(
        name="TopKOutcome",
        kind="ctor",
        fields=("results", "degraded", "events"),
    ),
    SinkSpec(
        name="WhyNotAnswer",
        kind="ctor",
        fields=(
            "refined",
            "initial_rank",
            "algorithm",
            "elapsed_seconds",
            "io",
            "counters",
            "degraded",
            "fault_events",
        ),
        # elapsed_seconds IS a measured duration; time belongs there.
        field_exempt=(("elapsed_seconds", frozenset({KIND_TIME})),),
    ),
    SinkSpec(
        name="RefinedQuery",
        kind="ctor",
        fields=("keywords", "k", "delta_doc", "rank", "penalty", "alpha"),
    ),
    # The serving layer's externally visible artifact.  busy_ms is the
    # measured process_time cost — time belongs there (the serve bench
    # normalizes it); anything time/random/order-tainted in the other
    # fields would make responses irreproducible.
    SinkSpec(
        name="ServeResponse",
        kind="ctor",
        fields=(
            "status",
            "kind",
            "session",
            "seq",
            "result",
            "reason",
            "busy_ms",
        ),
        field_exempt=(("busy_ms", frozenset({KIND_TIME})),),
    ),
    # v2 checksummed persistence: every byte written must be stable.
    SinkSpec(name="save_checked_json", kind="call"),
    SinkSpec(name="atomic_write_text", kind="call"),
    # BENCH_* emitters: latency payloads are time-derived by design
    # (the bench gate normalizes them); order/random taint still flags.
    SinkSpec(name="json.dump", kind="call", exempt=frozenset({KIND_TIME})),
    SinkSpec(name="json.dumps", kind="call", exempt=frozenset({KIND_TIME})),
)

_SINKS_BY_NAME: Dict[str, SinkSpec] = {spec.name: spec for spec in SINKS}


def sink_for_call(name: Optional[str]) -> Optional[SinkSpec]:
    """Match a resolved dotted call name against the sink registry."""
    if name is None:
        return None
    spec = _SINKS_BY_NAME.get(name)
    if spec is not None:
        return spec
    return _SINKS_BY_NAME.get(name.split(".")[-1])
