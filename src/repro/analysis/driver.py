"""Unified analysis driver: lint → flow → taint → lifetime in one run.

The four layers compose over ONE parsed call graph:

* **lint** (:mod:`.lint`) — syntactic per-file rules;
* **flow** (:mod:`.flow`) — interprocedural effect signatures and the
  three concurrency contracts;
* **taint** (:mod:`.taint`) — determinism-taint dataflow over the CFG,
  reusing the shared source/sanitizer/sink registry;
* **lifetime** (:mod:`.lifetime`) — resource acquire/release automata,
  whose exception edges come from the flow layer's ``raises-storage``
  signatures.

Waivers: lint findings use ``# lint: <rule>`` comments; flow, taint,
and lifetime findings use ``# flow: waiver(<rule>)`` (the finding
line, the line above, or the anchor function's ``def`` line).  When
every ruleset runs, the driver also inventories all waiver comments
and reports any that suppressed nothing as ``stale-waiver`` findings —
a waiver that outlives its violation is a lie in the margins.

Baseline: one checked-in ratchet file shared across rulesets.  Flow
violation keys are stored unprefixed (compatible with the PR 3-era
``flow-baseline.json``); taint and lifetime keys carry their
``taint::`` / ``lifetime::`` prefixes.  Lint and stale-waiver findings
are never baselined — they are cheap to fix and the ratchet would
invite rot.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CodeGraph, build_graph
from .flow import (
    FlowAnalysis,
    FlowConfig,
    FlowReport,
    _coverage,
    collect_waivers,
    finding_is_waived,
)
from .lifetime import LifetimeFinding, check_lifetime
from .lint import Finding as LintFinding
from .lint import _collect_waivers as collect_lint_waivers
from .lint import default_linter
from .taint import TaintFinding, check_taint

__all__ = [
    "ALL_RULESETS",
    "AnalysisReport",
    "StaleWaiver",
    "run_analysis",
]

ALL_RULESETS: Tuple[str, ...] = ("lint", "flow", "taint", "lifetime")

STALE_WAIVER_RULE = "stale-waiver"


@dataclass(frozen=True)
class StaleWaiver:
    """A waiver comment that suppressed no finding in this run."""

    comment_kind: str  # "lint" | "flow"
    path: str
    line: int
    rule: str

    @property
    def key(self) -> str:
        return f"{STALE_WAIVER_RULE}::{self.path}::{self.line}::{self.rule}"

    def format(self) -> str:
        marker = (
            f"# lint: {self.rule}"
            if self.comment_kind == "lint"
            else f"# flow: waiver({self.rule})"
        )
        return (
            f"{self.path}:{self.line}: [{STALE_WAIVER_RULE}] '{marker}' "
            f"suppresses nothing; delete it or fix the rule name"
        )


@dataclass
class AnalysisReport:
    """Combined result of one ``analyze`` run."""

    rulesets: Tuple[str, ...]
    n_modules: int
    n_functions: int
    lint: List[LintFinding] = field(default_factory=list)
    flow: Optional[FlowReport] = None
    taint: List[TaintFinding] = field(default_factory=list)
    lifetime: List[LifetimeFinding] = field(default_factory=list)
    stale_waivers: List[StaleWaiver] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    # -- gating ---------------------------------------------------------

    @property
    def blocking_count(self) -> int:
        count = len([f for f in self.lint if not f.waived])
        if self.flow is not None:
            count += len(self.flow.blocking)
        count += len(
            [f for f in self.taint if not f.waived and not f.baselined]
        )
        count += len(
            [f for f in self.lifetime if not f.waived and not f.baselined]
        )
        count += len(self.stale_waivers)
        return count

    @property
    def suppressed_count(self) -> int:
        count = len([f for f in self.lint if f.waived])
        if self.flow is not None:
            count += len(
                [v for v in self.flow.violations if v.waived or v.baselined]
            )
        count += len([f for f in self.taint if f.waived or f.baselined])
        count += len([f for f in self.lifetime if f.waived or f.baselined])
        return count

    def baseline_payload(self) -> Dict:
        """Ratchet keys: flow unprefixed, taint/lifetime prefixed."""
        keys: Set[str] = set()
        if self.flow is not None:
            keys.update(
                v.key for v in self.flow.violations if not v.waived
            )
        keys.update(f.key for f in self.taint if not f.waived)
        keys.update(f.key for f in self.lifetime if not f.waived)
        return {"version": 1, "violations": sorted(keys)}

    # -- serialization --------------------------------------------------

    def to_dict(self, include_signatures: bool = False) -> Dict:
        payload: Dict = {
            "rulesets": list(self.rulesets),
            "modules": self.n_modules,
            "functions": self.n_functions,
            "blocking": self.blocking_count,
            "suppressed": self.suppressed_count,
            "elapsed_seconds": self.elapsed_seconds,
            "errors": list(self.errors),
            "findings": {},
        }
        if "lint" in self.rulesets:
            payload["findings"]["lint"] = [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "waived": f.waived,
                }
                for f in self.lint
            ]
        if self.flow is not None:
            flow_payload = self.flow.to_dict(
                include_signatures=include_signatures
            )
            payload["findings"]["flow"] = flow_payload.pop("violations")
            payload["flow"] = flow_payload
        for name, findings in (
            ("taint", self.taint),
            ("lifetime", self.lifetime),
        ):
            if name not in self.rulesets:
                continue
            payload["findings"][name] = [
                {
                    "rule": f.rule,
                    "key": f.key,
                    "function": f.function,
                    "module": f.module,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                    "chain": list(f.chain),
                    "waived": f.waived,
                    "baselined": f.baselined,
                }
                for f in findings
            ]
        if len(self.rulesets) == len(ALL_RULESETS):
            payload["findings"]["stale-waiver"] = [
                {
                    "comment_kind": w.comment_kind,
                    "path": w.path,
                    "line": w.line,
                    "rule": w.rule,
                }
                for w in self.stale_waivers
            ]
        return payload

    def to_json(self, include_signatures: bool = False) -> str:
        return json.dumps(
            self.to_dict(include_signatures), indent=2, sort_keys=True
        )

    def format_text(self) -> str:
        lines = [
            f"analyze[{','.join(self.rulesets)}]: {self.n_functions} "
            f"functions across {self.n_modules} modules "
            f"({self.elapsed_seconds:.2f}s)"
        ]
        blocking_lint = [f for f in self.lint if not f.waived]
        for finding in blocking_lint:
            lines.append(finding.format())
        if self.flow is not None:
            for package in sorted(self.flow.coverage):
                stats = self.flow.coverage[package]
                lines.append(
                    f"  {package}: {stats['signed']}/{stats['functions']} "
                    f"functions signed"
                )
            for violation in self.flow.blocking:
                lines.append(violation.format())
        for finding in self.taint:
            if not finding.waived and not finding.baselined:
                lines.append(finding.format())
        for finding in self.lifetime:
            if not finding.waived and not finding.baselined:
                lines.append(finding.format())
        for waiver in self.stale_waivers:
            lines.append(waiver.format())
        if self.suppressed_count:
            lines.append(
                f"  {self.suppressed_count} finding(s) waived or baselined"
            )
        if not self.blocking_count:
            lines.append("  no new findings")
        for error in self.errors:
            lines.append(f"  parse error: {error}")
        return "\n".join(lines)


def _expand_files(paths: Sequence) -> List[Path]:
    out: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        else:
            out.add(path)
    return sorted(out)


def _apply_flow_waivers(findings, graph, waiver_cache, used, baseline) -> None:
    """Mark waived/baselined on taint/lifetime-shaped findings."""
    for finding in findings:
        finding.waived = finding_is_waived(
            finding.rule,
            finding.path,
            finding.line,
            finding.function,
            graph,
            waiver_cache,
            used,
        )
        if baseline and finding.key in baseline:
            finding.baselined = True


def _find_stale_waivers(
    files: Sequence[Path],
    used_lint: Set[Tuple[str, int, str]],
    used_flow: Set[Tuple[str, int, str]],
) -> List[StaleWaiver]:
    """Inventory every waiver comment; report the ones never used.

    Only meaningful when every ruleset ran — a lifetime waiver looks
    unused to a lint-only run — so :func:`run_analysis` gates the call.

    Usage positions are compared on resolved paths: lint findings carry
    the invocation-relative path while flow/lifetime findings carry the
    graph's absolute path, and a waiver must not look stale just
    because ``analyze`` was launched from a different directory.
    """

    def _norm(used: Set[Tuple[str, int, str]]) -> Set[Tuple[str, int, str]]:
        return {
            (str(Path(p).resolve()), line, name) for p, line, name in used
        }

    lint_keys = _norm(used_lint)
    flow_keys = _norm(used_flow)
    stale: List[StaleWaiver] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        spath = str(path)
        resolved = str(path.resolve())
        for line, names in collect_lint_waivers(source).items():
            for name in sorted(names):
                if (resolved, line, name) not in lint_keys:
                    stale.append(StaleWaiver("lint", spath, line, name))
        for line, names in collect_waivers(spath, source=source).items():
            for name in sorted(names):
                if (resolved, line, name) not in flow_keys:
                    stale.append(StaleWaiver("flow", spath, line, name))
    stale.sort(key=lambda w: (w.path, w.line, w.rule))
    return stale


def run_analysis(
    paths: Sequence,
    rulesets: Sequence[str] = ALL_RULESETS,
    baseline: Optional[Set[str]] = None,
    config: Optional[FlowConfig] = None,
    graph: Optional[CodeGraph] = None,
) -> AnalysisReport:
    """Run the requested rulesets over ``paths`` and combine reports.

    One :func:`build_graph` parse feeds every layer; the flow layer's
    ``raises-storage`` signatures seed the lifetime checker's
    exception edges (computed here even when ``flow`` itself is not a
    requested ruleset, because the lifetime automaton needs them).
    """
    started = time.perf_counter()
    rulesets = tuple(r for r in ALL_RULESETS if r in set(rulesets))
    if not rulesets:
        raise ValueError("no known rulesets requested")
    config = config or FlowConfig()
    if graph is None:
        graph = build_graph(paths)
    report = AnalysisReport(
        rulesets=rulesets,
        n_modules=len(graph.modules),
        n_functions=len(graph.functions),
        errors=list(graph.errors),
    )
    used_lint: Set[Tuple[str, int, str]] = set()
    used_flow: Set[Tuple[str, int, str]] = set()
    waiver_cache: Dict[str, Dict[int, Set[str]]] = {}

    if "lint" in rulesets:
        report.lint = default_linter().lint(
            paths, include_waived=True, used_waivers=used_lint
        )

    analysis: Optional[FlowAnalysis] = None
    if "flow" in rulesets or "lifetime" in rulesets:
        analysis = FlowAnalysis(graph, config).run()

    if "flow" in rulesets and analysis is not None:
        violations = analysis.check_contracts()
        for violation in violations:
            violation.waived = finding_is_waived(
                violation.rule,
                violation.path,
                violation.line,
                violation.function,
                graph,
                waiver_cache,
                used_flow,
            )
            if baseline and violation.key in baseline:
                violation.baselined = True
        report.flow = FlowReport(
            n_modules=len(graph.modules),
            n_functions=len(graph.functions),
            coverage=_coverage(graph, analysis.signatures, config),
            signatures={
                key: sorted(atoms)
                for key, atoms in analysis.signatures.items()
            },
            violations=violations,
            errors=list(graph.errors),
        )

    if "taint" in rulesets:
        report.taint = check_taint(graph)
        _apply_flow_waivers(
            report.taint, graph, waiver_cache, used_flow, baseline
        )

    if "lifetime" in rulesets and analysis is not None:
        raising = {
            key
            for key, sig in analysis.signatures.items()
            if "raises-storage" in sig
        }
        report.lifetime = check_lifetime(graph, raising=raising)
        _apply_flow_waivers(
            report.lifetime, graph, waiver_cache, used_flow, baseline
        )

    if set(rulesets) == set(ALL_RULESETS):
        report.stale_waivers = _find_stale_waivers(
            _expand_files(paths), used_lint, used_flow
        )

    report.elapsed_seconds = time.perf_counter() - started
    return report
