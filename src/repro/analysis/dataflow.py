"""Generic forward worklist dataflow solver over :mod:`.cfg` graphs.

A client supplies the lattice (``initial`` / ``join`` / equality) and a
per-node ``transfer`` function; the solver iterates to a fixpoint.

Exception-edge policy: the *pre*-state of a node flows along its
exception edges (an exception may fire before the statement's effect
completes — the may-analysis assumption the lifetime checker needs:
``fh.write(...)`` raising mid-call still holds the file).  The
*post*-state flows along normal edges.

The checkers compose this intraprocedural solver with the
:mod:`repro.analysis.callgraph` summaries: each function is solved with
its callees' summaries as transfer-function inputs, and the summary
loop in :mod:`repro.analysis.taint` iterates the per-function solves to
an interprocedural fixpoint, yielding call-chain witnesses.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Optional, TypeVar

from .cfg import CFG, CFGNode

__all__ = ["ForwardSolver"]

S = TypeVar("S")


class ForwardSolver(Generic[S]):
    """Worklist fixpoint: node -> state-at-entry.

    ``transfer(node, state)`` must be pure (no mutation of ``state``).
    ``join`` must be commutative/associative with ``initial()`` as its
    identity; termination requires the usual finite-height lattice (all
    production clients use finite set unions).
    """

    def __init__(
        self,
        cfg: CFG,
        initial: Callable[[], S],
        join: Callable[[S, S], S],
        transfer: Callable[[CFGNode, S], S],
        entry_state: Optional[S] = None,
        max_passes: int = 64,
    ) -> None:
        self.cfg = cfg
        self.initial = initial
        self.join = join
        self.transfer = transfer
        self.entry_state = entry_state
        self.max_passes = max_passes
        self.in_states: Dict[int, S] = {}

    def solve(self) -> Dict[int, S]:
        cfg = self.cfg
        states: Dict[int, S] = {
            node.index: self.initial() for node in cfg.nodes
        }
        if self.entry_state is not None:
            states[cfg.entry] = self.entry_state
        worklist: List[int] = [cfg.entry]
        queued = {cfg.entry}
        # Reachability is tracked separately from state change: with an
        # empty entry state the first propagation is a no-op join, and
        # successors still must be visited once (their transfer runs
        # the checks) before the worklist can quiesce.
        reached = {cfg.entry}
        visits: Dict[int, int] = {}
        while worklist:
            index = worklist.pop(0)
            queued.discard(index)
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > self.max_passes:
                continue  # widen by truncation: keep current state
            node = cfg.nodes[index]
            pre = states[index]
            post = self.transfer(node, pre)
            for dst, out in self._edges(index, pre, post):
                merged = self.join(states[dst], out)
                first_touch = dst not in reached
                reached.add(dst)
                if merged != states[dst] or first_touch:
                    states[dst] = merged
                    if dst not in queued:
                        queued.add(dst)
                        worklist.append(dst)
        self.in_states = states
        return states

    def _edges(self, index: int, pre: S, post: S):
        for dst in sorted(self.cfg.succ.get(index, ())):
            yield dst, post
        for dst in sorted(self.cfg.exc_succ.get(index, ())):
            yield dst, pre

    def state_at(self, index: int) -> S:
        return self.in_states.get(index, self.initial())
