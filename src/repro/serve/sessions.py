"""Bounded session registry with per-dialogue dominator-cache reuse.

The paper's why-not interaction is a *dialogue*: a merchant asks why
their listing missed the top-k, inspects the suggested keywords, and
asks again with an adjusted ``k`` or ``λ``.  Every round of that
dialogue shares the same (query location, α, missing objects) triple —
exactly the parameters the Opt3 :class:`DominatorCache` depends on.
Dominance of a cached object over the missing objects is independent
of the *candidate keyword sets* being enumerated, so the dominators
harvested by round one are legal prune evidence for round two.

The registry therefore keys caches on
``(loc.x, loc.y, α, missing oids, model name)`` and hands the same
cache object back for every request in the dialogue.  A changed
location, α, or missing set is a different key and gets a fresh cache
— correctness never depends on the user behaving.

Both bounds are LRU: at most ``capacity`` live sessions, each holding
at most ``caches_per_session`` dialogue caches, so the registry's
memory is fixed no matter how many distinct users hit the server.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from ..core.dominator_cache import DominatorCache
from ..errors import InvalidParameterError, MissingObjectError
from ..model.query import WhyNotQuestion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import WhyNotEngine

__all__ = ["SessionRegistry", "SessionState"]

CacheKey = Tuple[float, float, float, Tuple[int, ...], str]


class SessionState:
    """Per-session bookkeeping: dialogue caches + counters."""

    __slots__ = ("session_id", "caches", "requests", "cache_hits")

    def __init__(self, session_id: str) -> None:
        self.session_id = session_id
        self.caches: "OrderedDict[CacheKey, DominatorCache]" = OrderedDict()
        self.requests = 0
        self.cache_hits = 0


class SessionRegistry:
    """LRU registry of sessions and their refinement-dialogue caches."""

    def __init__(
        self, capacity: int = 128, caches_per_session: int = 4
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"session capacity must be >= 1, got {capacity}"
            )
        if caches_per_session < 1:
            raise InvalidParameterError(
                f"caches per session must be >= 1, got {caches_per_session}"
            )
        self.capacity = capacity
        self.caches_per_session = caches_per_session
        self._sessions: "OrderedDict[str, SessionState]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: object) -> bool:
        return session_id in self._sessions

    def touch(self, session_id: str) -> SessionState:
        """Fetch-or-create a session, bumping it to most recently used."""
        state = self._sessions.get(session_id)
        if state is None:
            state = SessionState(session_id)
            self._sessions[session_id] = state
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self.evictions += 1
        else:
            self._sessions.move_to_end(session_id)
        return state

    @staticmethod
    def _cache_key(
        engine: "WhyNotEngine", question: WhyNotQuestion
    ) -> CacheKey:
        query = question.query
        return (
            query.loc[0],
            query.loc[1],
            query.alpha,
            question.missing,
            engine.model.name,
        )

    def dominator_cache(
        self, session_id: str, engine: "WhyNotEngine", question: WhyNotQuestion
    ) -> Optional[DominatorCache]:
        """The dialogue cache for ``question``, shared across rounds.

        Returns ``None`` when a missing oid cannot be resolved — the
        engine will raise its own, better error during execution; the
        session layer must not pre-empt it.
        """
        state = self.touch(session_id)
        key = self._cache_key(engine, question)
        cache = state.caches.get(key)
        if cache is not None:
            state.caches.move_to_end(key)
            state.cache_hits += 1
            return cache
        try:
            missing = tuple(
                engine.dataset.get(oid) for oid in question.missing
            )
        except (MissingObjectError, KeyError):
            return None
        cache = DominatorCache(
            engine.dataset, question.query, missing, engine.model
        )
        state.caches[key] = cache
        while len(state.caches) > self.caches_per_session:
            state.caches.popitem(last=False)
        return cache

    def snapshot(self) -> Dict[str, Any]:
        """Health-endpoint view: bounded sizes and hit counters."""
        return {
            "sessions": len(self._sessions),
            "capacity": self.capacity,
            "evictions": self.evictions,
            "cache_hits": sum(
                state.cache_hits for state in self._sessions.values()
            ),
            "requests": sum(
                state.requests for state in self._sessions.values()
            ),
        }
