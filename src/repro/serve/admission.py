"""Bounded deterministic admission control.

Overload policy is decided *here*, before any engine work happens: a
request either gets a queue slot or an immediate ``rejected:
overloaded`` response.  Nothing about the decision consults a clock or
a random source — admission is a pure function of the sequence of
``offer``/``take`` calls, which is what makes the overload tests and
the serve bench replayable.

Two properties the rest of the layer leans on:

**Bounded memory.**  Each request class has a fixed depth limit; an
``offer`` beyond the limit is refused without being stored.  Total
retained entries never exceed ``sum(limits.values())`` regardless of
how many requests are thrown at the queue (the 10k-burst property
test pins this).

**Session fairness.**  Entries are kept per session in FIFO order and
``take`` round-robins across sessions, so one chatty session cannot
monopolize the worker while other sessions starve: with ``S``
non-empty sessions, each gets every ``S``-th slot.  Per-session order
is preserved exactly (a session's requests never overtake each other),
which the dialogue layer requires — a refinement dialogue's cache
reuse assumes its own requests execute in submission order.

The queue is deliberately *not* thread-safe: the server confines every
call to the asyncio event-loop thread, keeping the executed request
path free of queue mutation (see the flow checker's worker-read-only
contract).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Mapping, Optional, Tuple

from ..errors import InvalidParameterError

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Per-class bounded queue with round-robin session fairness."""

    def __init__(self, limits: Mapping[str, int]) -> None:
        if not limits:
            raise InvalidParameterError("admission limits must not be empty")
        for name, bound in limits.items():
            if bound < 1:
                raise InvalidParameterError(
                    f"admission limit for {name!r} must be >= 1, got {bound}"
                )
        self.limits: Dict[str, int] = dict(limits)
        self._depths: Dict[str, int] = {name: 0 for name in self.limits}
        # session id -> FIFO of (request class, item); OrderedDict order
        # is the round-robin rotation.
        self._sessions: "OrderedDict[str, Deque[Tuple[str, Any]]]" = OrderedDict()
        self._size = 0
        self.offered = 0
        self.accepted = 0
        self.shed = 0

    def __len__(self) -> int:
        return self._size

    def depth(self, request_class: str) -> int:
        """Entries currently queued for one request class."""
        try:
            return self._depths[request_class]
        except KeyError:
            raise InvalidParameterError(
                f"unknown request class {request_class!r}; "
                f"expected one of {tuple(self.limits)}"
            ) from None

    @property
    def capacity(self) -> int:
        """The hard memory bound: total entries the queue can retain."""
        return sum(self.limits.values())

    def offer(self, request_class: str, session: str, item: Any) -> bool:
        """Admit ``item`` or shed it; returns whether it was admitted."""
        depth = self.depth(request_class)  # validates the class
        self.offered += 1
        if depth >= self.limits[request_class]:
            self.shed += 1
            return False
        bucket = self._sessions.get(session)
        if bucket is None:
            bucket = deque()
            self._sessions[session] = bucket
        bucket.append((request_class, item))
        self._depths[request_class] = depth + 1
        self._size += 1
        self.accepted += 1
        return True

    def take(self) -> Optional[Any]:
        """Pop the next item round-robin, or ``None`` when empty.

        The front session yields its oldest entry and rotates to the
        back of the session ring (or drops out when drained).
        """
        if not self._sessions:
            return None
        session, bucket = next(iter(self._sessions.items()))
        request_class, item = bucket.popleft()
        if bucket:
            self._sessions.move_to_end(session)
        else:
            del self._sessions[session]
        self._depths[request_class] -= 1
        self._size -= 1
        return item

    def snapshot(self) -> Dict[str, Any]:
        """Health-endpoint view of the queue state."""
        return {
            "depths": dict(self._depths),
            "limits": dict(self.limits),
            "sessions_waiting": len(self._sessions),
            "offered": self.offered,
            "accepted": self.accepted,
            "shed": self.shed,
        }
