"""Request/response contract of the serving layer.

Two request classes exist — plain top-k lookups and why-not questions
— because they have wildly different cost profiles (a why-not answer
enumerates candidate keyword sets; a top-k is one index descent).  The
admission queue bounds them separately so a burst of expensive why-not
work cannot starve cheap lookups.

Response statuses form a small, closed taxonomy:

``ok``
    Exact answer, on time.
``degraded``
    Exact answer computed by the quarantine fallback path (the engine
    flags it); correct but produced while some index unit is down.
``timeout``
    The request's deadline expired before the answer finished.  The
    answer that *was* computed is still attached — it is exact, just
    late.
``rejected``
    Load-shedding: the admission queue was at its class bound.  The
    request was never executed (``reason`` is ``"overloaded"``).
``failed``
    An unexpected error escaped the engine.  The server survives;
    the response carries the error type in ``reason``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import InvalidParameterError
from ..model.query import SpatialKeywordQuery, WhyNotQuestion

__all__ = [
    "REQUEST_CLASSES",
    "CLASS_TOPK",
    "CLASS_WHYNOT",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_TIMEOUT",
    "STATUS_REJECTED",
    "STATUS_FAILED",
    "STATUSES",
    "ServeRequest",
    "ServeResponse",
]

CLASS_TOPK = "topk"
CLASS_WHYNOT = "whynot"
REQUEST_CLASSES: Tuple[str, ...] = (CLASS_TOPK, CLASS_WHYNOT)

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_TIMEOUT = "timeout"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"
STATUSES: Tuple[str, ...] = (
    STATUS_OK,
    STATUS_DEGRADED,
    STATUS_TIMEOUT,
    STATUS_REJECTED,
    STATUS_FAILED,
)


@dataclass(frozen=True)
class ServeRequest:
    """One admitted unit of work.

    ``kind`` selects the request class; exactly one of ``query`` /
    ``question`` must be set to match it.  ``budget_seconds`` is the
    caller's deadline (``None`` falls back to the server's per-class
    default); ``options`` flows into
    :meth:`~repro.core.engine.WhyNotEngine.answer` untouched.
    """

    kind: str
    session: str
    seq: int
    query: Optional[SpatialKeywordQuery] = None
    question: Optional[WhyNotQuestion] = None
    method: str = "kcr"
    budget_seconds: Optional[float] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_CLASSES:
            raise InvalidParameterError(
                f"unknown request class {self.kind!r}; "
                f"expected one of {REQUEST_CLASSES}"
            )
        if self.kind == CLASS_TOPK and self.query is None:
            raise InvalidParameterError("a topk request needs a query")
        if self.kind == CLASS_WHYNOT and self.question is None:
            raise InvalidParameterError("a whynot request needs a question")
        if self.budget_seconds is not None and self.budget_seconds < 0:
            raise InvalidParameterError(
                f"budget must be non-negative, got {self.budget_seconds}"
            )


@dataclass(frozen=True)
class ServeResponse:
    """The server's verdict on one request.

    ``result`` is the engine's :class:`~repro.core.result.TopKOutcome`
    or :class:`~repro.core.result.WhyNotAnswer` (``None`` for rejected
    or failed requests).  ``busy_ms`` is the worker's
    ``time.process_time`` cost — the makespan-discount currency, never
    wall clock.
    """

    status: str
    kind: str
    session: str
    seq: int
    result: Any = None
    reason: str = ""
    busy_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise InvalidParameterError(
                f"unknown status {self.status!r}; expected one of {STATUSES}"
            )

    @property
    def accepted(self) -> bool:
        return self.status != STATUS_REJECTED

    @property
    def exact(self) -> bool:
        """Whether an exact answer is attached (possibly late/degraded)."""
        return self.result is not None and self.status != STATUS_FAILED
