"""Resilient serving layer over the why-not engine.

The ROADMAP's production goal is a long-running service in front of
the paper's algorithms.  This package is that front door, built around
one principle: *the engine never sees load it cannot survive*.

``protocol``
    Request/response dataclasses and the response status taxonomy.
``admission``
    Bounded, deterministic admission queue with per-class depth limits
    and round-robin fairness across sessions.
``sessions``
    Bounded LRU session registry; shares one Opt3
    :class:`~repro.core.dominator_cache.DominatorCache` across a
    user's refinement dialogue.
``breakers``
    Per-quarantine-unit circuit breakers over the engine's fault
    events, with half-open probes through ``recover(only=...)``.
``server``
    The asyncio :class:`WhyNotServer` tying the above together, plus
    deadline propagation into the storage retry loop.
``bench``
    The ``serve-bench`` load generator: thousands of simulated users
    in virtual time over measured ``process_time`` service costs.
"""

from .admission import AdmissionQueue
from .breakers import BreakerBoard, CircuitBreaker
from .protocol import (
    REQUEST_CLASSES,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeRequest,
    ServeResponse,
)
from .server import ServerConfig, WhyNotServer
from .sessions import SessionRegistry

__all__ = [
    "AdmissionQueue",
    "BreakerBoard",
    "CircuitBreaker",
    "REQUEST_CLASSES",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_TIMEOUT",
    "STATUS_REJECTED",
    "STATUS_FAILED",
    "ServeRequest",
    "ServeResponse",
    "ServerConfig",
    "SessionRegistry",
    "WhyNotServer",
]
