"""The asyncio why-not server.

One event loop owns *all* mutable serving state — the admission queue,
the session registry, the breaker board, the counters.  Requests
execute on an executor thread, but that thread runs a deliberately
narrow function (:meth:`WhyNotServer._execute`) that only *reads* the
shared snapshot (engine + indexes) and writes through the engine's own
sanctioned fault-containment surfaces; every policy decision happens
before dispatch or after completion, on the loop thread.  That split
is what lets the flow checker hold the serving layer to the same
worker-read-only contract as the sharded query workers.

Life of a request::

    submit() ── admission.offer ──┬─ shed → rejected: overloaded
                                  └─ queued (per-session FIFO)
    _pump() ── admission.take (round-robin) ── executor:
        _execute(): deadline_scope(budget) → engine → classify
    loop thread: breakers.observe() → counters → future resolved

Deadlines are budgets, not watchdogs: the worker is never interrupted
(a Python thread cannot be safely killed mid-index-descent), but the
budget flows into :class:`~repro.storage.BufferPool`'s retry loop —
the place a request can stall longest — and the response is classified
``timeout`` whenever the budget was exceeded, so callers always learn
whether the latency promise held.

The default is a single worker: on the single-core containers this
repo targets, real thread parallelism buys nothing and costs
determinism.  Scale-out behaviour is measured by the virtual-time
bench (:mod:`repro.serve.bench`) instead, per the makespan-discount
convention.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.dominator_cache import DominatorCache
from ..core.engine import WhyNotEngine
from ..errors import (
    InvalidParameterError,
    ReproError,
    ensure_not_none,
)
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..storage.deadline import Deadline, deadline_scope
from .admission import AdmissionQueue
from .breakers import BreakerBoard
from .protocol import (
    CLASS_TOPK,
    CLASS_WHYNOT,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeRequest,
    ServeResponse,
)
from .sessions import SessionRegistry

__all__ = ["ServerConfig", "WhyNotServer"]


def _default_limits() -> Dict[str, int]:
    return {CLASS_TOPK: 64, CLASS_WHYNOT: 16}


def _default_budgets() -> Dict[str, Optional[float]]:
    return {CLASS_TOPK: 1.0, CLASS_WHYNOT: 5.0}


@dataclass
class ServerConfig:
    """Tunables for one :class:`WhyNotServer`."""

    limits: Dict[str, int] = field(default_factory=_default_limits)
    budgets: Dict[str, Optional[float]] = field(default_factory=_default_budgets)
    session_capacity: int = 128
    caches_per_session: int = 4
    breaker_cooldown: int = 8
    breaker_max_cooldown: int = 64
    workers: int = 1
    warm: Tuple[str, ...] = ("setr", "kcr")


class WhyNotServer:
    """Admission-controlled asyncio front door over one engine."""

    def __init__(
        self, engine: WhyNotEngine, config: Optional[ServerConfig] = None
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        if self.config.workers < 1:
            raise InvalidParameterError(
                f"server needs >= 1 worker, got {self.config.workers}"
            )
        self.admission = AdmissionQueue(self.config.limits)
        self.sessions = SessionRegistry(
            self.config.session_capacity, self.config.caches_per_session
        )
        self.breakers = BreakerBoard(
            engine,
            self.config.breaker_cooldown,
            self.config.breaker_max_cooldown,
        )
        self.status_counts: Dict[str, int] = {
            STATUS_OK: 0,
            STATUS_DEGRADED: 0,
            STATUS_TIMEOUT: 0,
            STATUS_REJECTED: 0,
            STATUS_FAILED: 0,
        }
        self._seq = 0
        self._running = False
        self._wakeup: Optional[asyncio.Event] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._slots: Optional[asyncio.Semaphore] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Warm the indexes and start the dispatch pump."""
        if self._running:
            return
        self.warm()
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.workers)
        self._running = True
        self._pump_task = asyncio.create_task(self._pump())

    async def stop(self) -> None:
        """Drain nothing, stop the pump; queued requests get failed."""
        if not self._running:
            return
        self._running = False
        ensure_not_none(self._wakeup, "stop() on a never-started server").set()
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        while True:
            entry = self.admission.take()
            if entry is None:
                break
            request, future = entry
            if not future.done():
                future.set_result(
                    self._response(
                        request, STATUS_FAILED, reason="server stopped"
                    )
                )

    async def __aenter__(self) -> "WhyNotServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    def warm(self) -> None:
        """Build every index the serving paths will read.

        Serving threads must never trigger a lazy bulk load — builds
        are massive write bursts that belong to startup, not to a
        request with a deadline.
        """
        if self.engine.is_sharded:
            for kind in self.config.warm:
                self.engine.sharded_index.ensure_built(kind, self.engine.model)
            return
        for kind in self.config.warm:
            if kind == "setr":
                self.engine.setr_tree
            elif kind == "kcr":
                self.engine.kcr_tree

    # -- request intake ------------------------------------------------

    async def top_k(
        self,
        session: str,
        query: SpatialKeywordQuery,
        *,
        budget_seconds: Optional[float] = None,
    ) -> ServeResponse:
        """Submit a top-k lookup and await its response."""
        return await self.submit(
            ServeRequest(
                kind=CLASS_TOPK,
                session=session,
                seq=self._next_seq(),
                query=query,
                budget_seconds=budget_seconds,
            )
        )

    async def why_not(
        self,
        session: str,
        question: WhyNotQuestion,
        *,
        method: str = "kcr",
        budget_seconds: Optional[float] = None,
        **options: Any,
    ) -> ServeResponse:
        """Submit a why-not question and await its response."""
        return await self.submit(
            ServeRequest(
                kind=CLASS_WHYNOT,
                session=session,
                seq=self._next_seq(),
                question=question,
                method=method,
                budget_seconds=budget_seconds,
                options=dict(options),
            )
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """Admit-or-shed, then await execution."""
        if not self._running:
            raise InvalidParameterError(
                "server is not running; use 'async with WhyNotServer(...)'"
            )
        future: "asyncio.Future[ServeResponse]" = (
            asyncio.get_running_loop().create_future()
        )
        admitted = self.admission.offer(
            request.kind, request.session, (request, future)
        )
        if not admitted:
            self.status_counts[STATUS_REJECTED] += 1
            return self._response(
                request, STATUS_REJECTED, reason="overloaded"
            )
        ensure_not_none(self._wakeup, "running server lost its wakeup").set()
        return await future

    # -- dispatch ------------------------------------------------------

    async def _pump(self) -> None:
        wakeup = ensure_not_none(self._wakeup, "pump started before start()")
        slots = ensure_not_none(self._slots, "pump started before start()")
        while self._running:
            entry = self.admission.take()
            if entry is None:
                wakeup.clear()
                await wakeup.wait()
                continue
            # The slot is handed off to the task and released in
            # _run_one's finally — a cross-task pairing the lifetime
            # automaton cannot see.
            await slots.acquire()  # flow: waiver(lifetime-leak)
            asyncio.create_task(self._run_one(entry))

    async def _run_one(
        self,
        entry: Tuple[ServeRequest, "asyncio.Future[ServeResponse]"],
    ) -> None:
        request, future = entry
        slots = ensure_not_none(self._slots, "dispatch before start()")
        loop = asyncio.get_running_loop()
        cache = self._dialogue_cache(request)
        try:
            response = await loop.run_in_executor(
                None, self._execute, request, cache
            )
        except BaseException as exc:  # pragma: no cover - defensive
            response = self._response(
                request, STATUS_FAILED, reason=type(exc).__name__
            )
        finally:
            slots.release()
        self.breakers.observe()
        self.status_counts[response.status] += 1
        state = self.sessions.touch(request.session)
        state.requests += 1
        if not future.done():
            future.set_result(response)

    def _dialogue_cache(
        self, request: ServeRequest
    ) -> Optional[DominatorCache]:
        """Opt3 cache shared across a session's refinement dialogue.

        Only the ``advanced`` method consumes a dominator cache, and
        only with Opt3 (``filtering``) enabled; anything else runs
        cache-less.
        """
        if request.kind != CLASS_WHYNOT or request.method != "advanced":
            return None
        if not request.options.get("filtering", True):
            return None
        question = ensure_not_none(
            request.question, "whynot request without a question"
        )
        return self.sessions.dominator_cache(
            request.session, self.engine, question
        )

    def _execute(
        self, request: ServeRequest, cache: Optional[DominatorCache]
    ) -> ServeResponse:
        """Run one admitted request on the worker thread.

        Reads the shared engine snapshot; the only mutations on this
        path are the engine's own fault containment and the
        lock-guarded dominator-cache ingest — both sanctioned surfaces
        of the worker-read-only contract.  Never raises: unexpected
        errors become ``failed`` responses.
        """
        budget = request.budget_seconds
        if budget is None:
            budget = self.config.budgets.get(request.kind)
        deadline = None if budget is None else Deadline(budget)
        busy_start = time.process_time()
        try:
            with deadline_scope(deadline):
                if request.kind == CLASS_TOPK:
                    query = ensure_not_none(
                        request.query, "topk request without a query"
                    )
                    result: Any = self.engine.run_top_k(query)
                    degraded = result.degraded
                else:
                    question = ensure_not_none(
                        request.question, "whynot request without a question"
                    )
                    options = dict(request.options)
                    if cache is not None:
                        options["cache"] = cache
                    result = self.engine.answer(
                        question, request.method, **options
                    )
                    degraded = result.degraded
        except ReproError as exc:
            busy_ms = (time.process_time() - busy_start) * 1000.0
            return self._response(
                request,
                STATUS_FAILED,
                reason=f"{type(exc).__name__}: {exc}",
                busy_ms=busy_ms,
            )
        busy_ms = (time.process_time() - busy_start) * 1000.0
        if deadline is not None and deadline.expired():
            status = STATUS_TIMEOUT
            reason = "deadline expired"
        elif degraded:
            status = STATUS_DEGRADED
            reason = "served by quarantine fallback"
        else:
            status = STATUS_OK
            reason = ""
        return self._response(
            request, status, result=result, reason=reason, busy_ms=busy_ms
        )

    @staticmethod
    def _response(
        request: ServeRequest,
        status: str,
        *,
        result: Any = None,
        reason: str = "",
        busy_ms: float = 0.0,
    ) -> ServeResponse:
        return ServeResponse(
            status=status,
            kind=request.kind,
            session=request.session,
            seq=request.seq,
            result=result,
            reason=reason,
            busy_ms=busy_ms,
        )

    # -- observability -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Aggregate health: engine quarantines, breakers, queue, sessions."""
        quarantined = sorted(self.engine.quarantined)
        open_units = self.breakers.open_units
        return {
            "status": "degraded" if (quarantined or open_units) else "ok",
            "quarantined": quarantined,
            "breakers": self.breakers.snapshot(),
            "queue": self.admission.snapshot(),
            "sessions": self.sessions.snapshot(),
            "responses": dict(self.status_counts),
        }
