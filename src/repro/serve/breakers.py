"""Circuit breakers over the engine's quarantine events.

The engine already *contains* storage faults: a quarantined index unit
is served by the exact :class:`~repro.core.degraded.ScanFallback`
(tile-scoped on sharded engines, so only the broken shard's partition
degrades).  What the engine does not decide is *when to try coming
back* — ``recover()`` rebuilds on demand, and rebuilding too eagerly
replays the failure loop at full query cost.

Breakers supply that policy with the classic three-state machine,
clocked in **observed requests** rather than wall time so every chaos
run replays identically:

``closed``
    Unit healthy.  A quarantine event trips the breaker to ``open``.
``open``
    Unit down; requests route around it via the fallback (the engine
    does this on its own).  After ``cooldown`` observed requests the
    breaker half-opens.
``half_open``
    The board probes: ``engine.recover(only=[unit])`` drops the broken
    tree for lazy rebuild, and the *next* observed request exercises
    it.  If the unit re-quarantines, the probe failed — back to
    ``open`` with the cooldown doubled (capped); otherwise the breaker
    closes and the cooldown resets.

The board is driven from the server's control (event-loop) thread,
once per completed request; the executed-request path never mutates
breaker state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from ..errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.engine import WhyNotEngine

__all__ = ["BreakerBoard", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Three-state breaker for one quarantine unit."""

    __slots__ = (
        "unit",
        "state",
        "base_cooldown",
        "max_cooldown",
        "cooldown",
        "remaining",
        "trips",
        "recoveries",
    )

    def __init__(
        self, unit: str, base_cooldown: int = 8, max_cooldown: int = 64
    ) -> None:
        if base_cooldown < 1:
            raise InvalidParameterError(
                f"breaker cooldown must be >= 1, got {base_cooldown}"
            )
        if max_cooldown < base_cooldown:
            raise InvalidParameterError(
                "max cooldown must be >= base cooldown "
                f"({max_cooldown} < {base_cooldown})"
            )
        self.unit = unit
        self.state = CLOSED
        self.base_cooldown = base_cooldown
        self.max_cooldown = max_cooldown
        self.cooldown = base_cooldown
        self.remaining = 0
        self.trips = 0
        self.recoveries = 0

    def trip(self) -> None:
        """Quarantine observed: open (escalating after a failed probe)."""
        if self.state == OPEN:
            return
        if self.state == HALF_OPEN:
            # The probe request re-broke the unit — back off harder.
            self.cooldown = min(self.cooldown * 2, self.max_cooldown)
        self.state = OPEN
        self.remaining = self.cooldown
        self.trips += 1

    def tick(self) -> bool:
        """Count one observed request; True when the breaker half-opens."""
        if self.state != OPEN:
            return False
        self.remaining -= 1
        if self.remaining <= 0:
            self.state = HALF_OPEN
            return True
        return False

    def close(self) -> None:
        """Probe survived: unit healthy again, cooldown forgiven."""
        self.state = CLOSED
        self.cooldown = self.base_cooldown
        self.remaining = 0
        self.recoveries += 1

    def describe(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "cooldown": self.cooldown,
            "remaining": self.remaining,
            "trips": self.trips,
            "recoveries": self.recoveries,
        }


class BreakerBoard:
    """All breakers for one engine, driven by quarantine observations."""

    def __init__(
        self,
        engine: "WhyNotEngine",
        base_cooldown: int = 8,
        max_cooldown: int = 64,
    ) -> None:
        self.engine = engine
        self.base_cooldown = base_cooldown
        self.max_cooldown = max_cooldown
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, unit: str) -> CircuitBreaker:
        found = self._breakers.get(unit)
        if found is None:
            found = CircuitBreaker(
                unit, self.base_cooldown, self.max_cooldown
            )
            self._breakers[unit] = found
        return found

    def observe(self) -> List[str]:
        """Advance every breaker after one completed request.

        Order matters and is deterministic (units sorted):

        1. Half-open breakers are judged by the request that just ran:
           unit re-quarantined → failed probe (escalated re-open);
           still clean → close.
        2. Fresh quarantine events trip their breakers.
        3. Open breakers count the request; any that reach zero
           half-open and probe via ``engine.recover(only=[unit])``.

        Returns the units probed this round.
        """
        quarantined = set(self.engine.quarantined)
        for unit in sorted(self._breakers):
            breaker = self._breakers[unit]
            if breaker.state == HALF_OPEN:
                if unit in quarantined:
                    breaker.trip()
                else:
                    breaker.close()
        for unit in sorted(quarantined):
            self.breaker(unit).trip()
        probed: List[str] = []
        for unit in sorted(self._breakers):
            breaker = self._breakers[unit]
            if breaker.tick():
                self.engine.recover(only=[unit])
                probed.append(unit)
        return probed

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Health-endpoint view, keyed by unit name."""
        return {
            unit: self._breakers[unit].describe()
            for unit in sorted(self._breakers)
        }

    @property
    def open_units(self) -> List[str]:
        return sorted(
            unit
            for unit, breaker in self._breakers.items()
            if breaker.state != CLOSED
        )
