"""``serve-bench``: simulated heavy traffic over measured busy costs.

A single-core container cannot *run* thousands of concurrent users,
but it can *simulate* them exactly, which is the same trick the
sharded index uses for fan-out (the makespan discount): measure what
each piece of work costs in ``time.process_time`` busy seconds, then
replay the fleet in **virtual time** where those costs overlap across
``W`` simulated workers.  Wall clock never enters the books, so the
reported p50/p99 are core-count-independent and the bench gate's
calibration bracket normalizes away machine speed like every other
figure.

The bench has three moving parts:

1. **Probe** — a small request mix executes *for real* through a real
   :class:`~repro.serve.server.WhyNotServer` (admission, deadline
   scope, session caches — the full path) and yields the mean busy
   cost per request class.
2. **Simulation** — a discrete-event loop drives the *real*
   :class:`~repro.serve.admission.AdmissionQueue` with a seeded
   arrival process; service times are the probed costs with seeded
   ±15% jitter.  Everything downstream of the seed is deterministic:
   same seed, same shed/timeout counts, same latency multiset.
3. **Burst** — the overload scenario: ``burst_factor ×`` the admission
   capacity arrives at one instant, pinning the shed count to an exact
   arithmetic consequence of the class limits.

Arrival rate is expressed as a *load factor* — the ratio of offered
work to fleet capacity ``W / mean_service`` — so the queueing regime
(and therefore the shape of the latency distribution) is the same on
a fast machine and a slow one.
"""

from __future__ import annotations

import asyncio
import heapq
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.engine import WhyNotEngine
from ..errors import InvalidParameterError
from ..experiments.workload import WorkloadCase
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from .admission import AdmissionQueue
from .protocol import CLASS_TOPK, CLASS_WHYNOT, STATUS_REJECTED
from .server import ServerConfig, WhyNotServer

__all__ = ["probe_costs", "simulate_load", "run_serve_bench", "run_dialogue"]


def probe_costs(
    engine: WhyNotEngine,
    cases: Sequence[WorkloadCase],
    *,
    method: str = "kcr",
    repetitions: int = 2,
) -> Dict[str, float]:
    """Mean busy cost (ms) per request class, measured for real.

    Each case contributes one top-k (its underlying query) and one
    why-not request per repetition, executed through a real server so
    the measured path is the served path.
    """
    if not cases:
        raise InvalidParameterError("probe needs at least one workload case")
    config = ServerConfig(
        budgets={CLASS_TOPK: None, CLASS_WHYNOT: None},
        limits={CLASS_TOPK: max(4, len(cases)), CLASS_WHYNOT: max(4, len(cases))},
    )

    async def _drive() -> Tuple[List[float], List[float]]:
        topk_ms: List[float] = []
        whynot_ms: List[float] = []
        async with WhyNotServer(engine, config) as server:
            for rep in range(repetitions):
                for idx, case in enumerate(cases):
                    session = f"probe-{idx}"
                    top = await server.top_k(
                        session, case.question.query
                    )
                    topk_ms.append(top.busy_ms)
                    why = await server.why_not(
                        session, case.question, method=method
                    )
                    whynot_ms.append(why.busy_ms)
        return topk_ms, whynot_ms

    topk_ms, whynot_ms = asyncio.run(_drive())
    return {
        CLASS_TOPK: sum(topk_ms) / len(topk_ms),
        CLASS_WHYNOT: sum(whynot_ms) / len(whynot_ms),
    }


def simulate_load(
    service_ms: Dict[str, float],
    *,
    n_requests: int,
    users: int,
    seed: int,
    workers: int = 4,
    load_factor: float = 0.65,
    whynot_share: float = 0.2,
    limits: Optional[Dict[str, int]] = None,
    budget_factor: float = 12.0,
    burst: bool = False,
) -> Dict[str, Any]:
    """Discrete-event replay of ``n_requests`` over ``workers`` workers.

    ``burst=True`` collapses the arrival process to a single instant
    (the overload scenario); otherwise inter-arrivals are exponential
    at ``load_factor × workers / mean_service``.  Latency = completion
    − arrival in virtual ms; a request whose latency exceeds
    ``budget_factor ×`` its class's service mean counts as a timeout
    (it still completes — deadlines bound promises, not work).
    """
    if n_requests < 1 or users < 1 or workers < 1:
        raise InvalidParameterError(
            "simulate_load needs n_requests, users, workers >= 1"
        )
    if not 0.0 <= whynot_share <= 1.0:
        raise InvalidParameterError(
            f"whynot share must be in [0, 1], got {whynot_share}"
        )
    limits = dict(limits or {CLASS_TOPK: 64, CLASS_WHYNOT: 16})
    rng = random.Random(seed)
    mean_service = (
        (1.0 - whynot_share) * service_ms[CLASS_TOPK]
        + whynot_share * service_ms[CLASS_WHYNOT]
    )
    budgets = {name: budget_factor * cost for name, cost in service_ms.items()}

    # -- arrival schedule (all seeded, generated up front) -------------
    arrivals: List[Tuple[float, int, str, str, float]] = []
    clock = 0.0
    rate_per_ms = load_factor * workers / mean_service
    for seq in range(n_requests):
        if not burst:
            clock += rng.expovariate(rate_per_ms)
        kind = CLASS_WHYNOT if rng.random() < whynot_share else CLASS_TOPK
        session = f"user-{rng.randrange(users)}"
        service = service_ms[kind] * rng.uniform(0.85, 1.15)
        arrivals.append((clock, seq, kind, session, service))

    # -- event loop ----------------------------------------------------
    queue = AdmissionQueue(limits)
    events: List[Tuple[float, int, int, Any]] = []  # (time, priority, order, payload)
    ARRIVE, COMPLETE = 0, 1
    order = 0
    for arrival in arrivals:
        heapq.heappush(events, (arrival[0], ARRIVE, order, arrival))
        order += 1
    idle_workers = workers
    latencies: Dict[str, List[float]] = {CLASS_TOPK: [], CLASS_WHYNOT: []}
    shed = {CLASS_TOPK: 0, CLASS_WHYNOT: 0}
    timeouts = {CLASS_TOPK: 0, CLASS_WHYNOT: 0}

    def start(now: float, entry: Tuple[float, int, str, str, float]) -> None:
        nonlocal idle_workers, order
        idle_workers -= 1
        heapq.heappush(events, (now + entry[4], COMPLETE, order, entry))
        order += 1

    while events:
        now, event_kind, _, payload = heapq.heappop(events)
        if event_kind == ARRIVE:
            _, _, kind, session, _ = payload
            if not queue.offer(kind, session, payload):
                shed[kind] += 1
                continue
            if idle_workers > 0:
                start(now, queue.take())
        else:
            arrived_at, _, kind, _, _ = payload
            latency = now - arrived_at
            latencies[kind].append(latency)
            if latency > budgets[kind]:
                timeouts[kind] += 1
            idle_workers += 1
            entry = queue.take()
            if entry is not None:
                start(now, entry)

    every = sorted(latencies[CLASS_TOPK] + latencies[CLASS_WHYNOT])
    return {
        "latencies_ms": every,
        "shed": dict(shed),
        "timeouts": dict(timeouts),
        "completed": {name: len(vals) for name, vals in latencies.items()},
        "budget_ms": {name: round(value, 4) for name, value in budgets.items()},
        "admission": queue.snapshot(),
        "workers": workers,
        "load_factor": load_factor,
    }


def run_serve_bench(
    engine: WhyNotEngine,
    cases: Sequence[WorkloadCase],
    *,
    n_requests: int = 2000,
    users: int = 300,
    seed: int = 2016,
    workers: int = 4,
    load_factor: float = 0.65,
    whynot_share: float = 0.2,
    limits: Optional[Dict[str, int]] = None,
    budget_factor: float = 12.0,
    method: str = "kcr",
    burst: bool = False,
) -> Dict[str, Any]:
    """Probe + simulate in one call; the CLI/bench entry point."""
    service = probe_costs(engine, cases, method=method)
    report = simulate_load(
        service,
        n_requests=n_requests,
        users=users,
        seed=seed,
        workers=workers,
        load_factor=load_factor,
        whynot_share=whynot_share,
        limits=limits,
        budget_factor=budget_factor,
        burst=burst,
    )
    report["service_ms"] = {
        name: round(value, 4) for name, value in service.items()
    }
    report["simulated_users"] = users
    report["requests"] = n_requests
    return report


def run_dialogue(
    engine: WhyNotEngine,
    question: WhyNotQuestion,
    *,
    rounds: int = 4,
    session: str = "dialogue",
    reuse_cache: bool = True,
) -> Dict[str, Any]:
    """One refinement dialogue through the server, advanced method.

    Rounds vary ``k`` and ``λ`` while keeping the (location, α,
    missing) triple fixed — the regime where the session layer shares
    one dominator cache across rounds.  ``reuse_cache=False`` runs
    each round in its own session as the no-sharing baseline.
    """
    if rounds < 1:
        raise InvalidParameterError(f"dialogue needs >= 1 round, got {rounds}")
    base = question.query
    config = ServerConfig(budgets={CLASS_TOPK: None, CLASS_WHYNOT: None})

    async def _drive() -> Dict[str, Any]:
        busy: List[float] = []
        statuses: List[str] = []
        async with WhyNotServer(engine, config) as server:
            for round_no in range(rounds):
                varied = SpatialKeywordQuery(
                    loc=base.loc,
                    doc=base.doc,
                    k=base.k + round_no,
                    alpha=base.alpha,
                )
                round_question = WhyNotQuestion(
                    varied,
                    question.missing,
                    lam=min(0.9, question.lam + 0.1 * round_no),
                )
                who = session if reuse_cache else f"{session}-{round_no}"
                response = await server.why_not(
                    who, round_question, method="advanced"
                )
                if response.status == STATUS_REJECTED:  # pragma: no cover
                    raise InvalidParameterError(
                        "dialogue request shed; raise the limits"
                    )
                busy.append(response.busy_ms)
                statuses.append(response.status)
            hits = server.sessions.snapshot()["cache_hits"]
        return {
            "busy_ms": busy,
            "statuses": statuses,
            "cache_hits": hits,
            "rounds": rounds,
            "reused": reuse_cache,
        }

    return asyncio.run(_drive())
