"""High-level facade: one object that answers why-not questions.

:class:`WhyNotEngine` owns the dataset, builds the two indexes lazily
(the SetR-tree for BS/AdvancedBS, the KcR-tree for KcRBased), and
dispatches a :class:`~repro.model.query.WhyNotQuestion` to any of the
paper's methods by name.  It is the recommended entry point:

>>> engine = WhyNotEngine(dataset)
>>> answer = engine.answer(question, method="kcr")
>>> answer.refined.describe(vocabulary)
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError
from ..index.kcr_tree import KcRTree
from ..index.rtree import DEFAULT_CAPACITY
from ..index.search import TopKSearcher
from ..index.setr_tree import SetRTree
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel, get_model
from .advanced import AdvancedAlgorithm
from .alpha_refinement import AlphaRefinementAlgorithm, IntegratedAlgorithm
from .approximate import ApproximateAlgorithm
from .basic import BasicAlgorithm
from .kcr_algorithm import KcRAlgorithm
from .location_refinement import LocationRefinementAlgorithm
from .parallel import ParallelAdvanced, ParallelKcR
from .result import WhyNotAnswer

__all__ = ["WhyNotEngine"]

METHODS = (
    "basic",
    "advanced",
    "kcr",
    "approximate",
    "parallel-advanced",
    "parallel-kcr",
    "alpha",
    "location",
    "integrated",
)


class WhyNotEngine:
    """Facade over the dataset, the indexes, and the five algorithms."""

    def __init__(
        self,
        dataset: Dataset,
        *,
        capacity: int = DEFAULT_CAPACITY,
        similarity: str = "jaccard",
        buffer_fraction: Optional[float] = 0.25,
    ) -> None:
        """``buffer_fraction`` re-sizes each index's buffer pool to that
        fraction of the index's on-disk pages (min 32), preserving the
        paper's buffer-pressure ratio on scaled-down datasets; pass
        ``None`` to keep the paper's absolute 4 MB buffer."""
        self.dataset = dataset
        self.capacity = capacity
        self.model: SimilarityModel = get_model(similarity)
        self.buffer_fraction = buffer_fraction
        self._setr: Optional[SetRTree] = None
        self._kcr: Optional[KcRTree] = None

    def _apply_buffer_policy(self, tree):
        if self.buffer_fraction is not None:
            pages = max(32, int(tree.buffer.total_pages * self.buffer_fraction))
            tree.resize_buffer(min(pages, tree.buffer.capacity_pages or pages))
        return tree

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    @property
    def setr_tree(self) -> SetRTree:
        """The SetR-tree, built on first use."""
        if self._setr is None:
            self._setr = self._apply_buffer_policy(
                SetRTree(self.dataset, capacity=self.capacity)
            )
        return self._setr

    @property
    def kcr_tree(self) -> KcRTree:
        """The KcR-tree, built on first use."""
        if self._kcr is None:
            self._kcr = self._apply_buffer_policy(
                KcRTree(self.dataset, capacity=self.capacity)
            )
        return self._kcr

    def reset_buffers(self) -> None:
        """Cold-start both indexes' buffer pools (between experiments)."""
        if self._setr is not None:
            self._setr.reset_buffer()
        if self._kcr is not None:
            self._kcr.reset_buffer()

    def insert(self, obj: SpatialObject) -> None:
        """Add an object to the dataset and every built index.

        Indexes not built yet pick the object up when they are built;
        already-built indexes receive a dynamic R-tree insertion with
        summary maintenance.  Brute-force oracles constructed from the
        dataset before the insert are snapshots and must be rebuilt.
        """
        self.dataset.add(obj)
        if self._setr is not None:
            self._setr.insert(obj)
        if self._kcr is not None:
            self._kcr.insert(obj)

    def remove(self, oid: int) -> None:
        """Remove an object from every built index and the dataset."""
        obj = self.dataset.get(oid)
        if self._setr is not None:
            self._setr.delete(obj)
        if self._kcr is not None:
            self._kcr.delete(obj)
        self.dataset.remove(oid)

    def update_keywords(self, oid: int, keywords: Iterable[int]) -> None:
        """Replace an object's document (delete + reinsert).

        This is the merchant loop closed: answer a why-not question
        about your own listing, then apply the suggested keywords.
        The object keeps its id and location; document frequencies,
        node summaries, and count maps all update.
        """
        old = self.dataset.get(oid)
        updated = SpatialObject(oid=oid, loc=old.loc, doc=frozenset(keywords))
        self.remove(oid)
        self.insert(updated)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def top_k(self, query: SpatialKeywordQuery) -> List[Tuple[float, int]]:
        """Run a plain spatial keyword top-k query (Definition 1)."""
        return TopKSearcher(self.setr_tree, self.model).top_k(query)

    def answer(
        self,
        question: WhyNotQuestion,
        method: str = "kcr",
        *,
        sample_size: int = 200,
        n_threads: int = 4,
        **options: Any,
    ) -> WhyNotAnswer:
        """Answer a why-not question with the chosen method.

        ``method`` selects among ``basic`` (BS), ``advanced``
        (AdvancedBS; accepts ``early_stop``/``ordering``/``filtering``
        toggles via ``options``), ``kcr`` (KcRBased), ``approximate``
        (accepts ``strategy``), and the two ``parallel-*`` variants.
        """
        if method == "basic":
            return BasicAlgorithm(self.setr_tree, self.model).answer(question)
        if method == "advanced":
            return AdvancedAlgorithm(
                self.setr_tree, self.model, **options
            ).answer(question)
        if method == "kcr":
            return KcRAlgorithm(self.kcr_tree, self.model).answer(question)
        if method == "approximate":
            strategy = options.pop("strategy", "kcr")
            tree = self.kcr_tree if strategy == "kcr" else self.setr_tree
            return ApproximateAlgorithm(
                tree, sample_size, strategy=strategy, model=self.model, **options
            ).answer(question)
        if method == "parallel-advanced":
            return ParallelAdvanced(
                self.setr_tree, n_threads, model=self.model, **options
            ).answer(question)
        if method == "parallel-kcr":
            return ParallelKcR(
                self.kcr_tree, n_threads, model=self.model
            ).answer(question)
        if method == "alpha":
            return AlphaRefinementAlgorithm(
                self.setr_tree, self.model, **options
            ).answer(question)
        if method == "location":
            return LocationRefinementAlgorithm(
                self.setr_tree, self.model, **options
            ).answer(question)
        if method == "integrated":
            return IntegratedAlgorithm(
                self.kcr_tree, self.model, **options
            ).answer(question)
        raise InvalidParameterError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
