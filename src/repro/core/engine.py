"""High-level facade: one object that answers why-not questions.

:class:`WhyNotEngine` owns the dataset, builds the two indexes lazily
(the SetR-tree for BS/AdvancedBS, the KcR-tree for KcRBased), and
dispatches a :class:`~repro.model.query.WhyNotQuestion` to any of the
paper's methods by name.  It is the recommended entry point:

>>> engine = WhyNotEngine(dataset)
>>> answer = engine.answer(question, method="kcr")
>>> answer.refined.describe(vocabulary)

**Fault tolerance.**  Pass ``faults=FaultInjector(...)`` to attach a
deterministic fault schedule to the storage layer (each index gets an
independent fork, so injection replays identically regardless of build
order).  Transient faults are absorbed by the buffer pool's retry
loop; an *unrecoverable* fault mid-query (checksum mismatch, lost
record, exhausted retries) quarantines the damaged index and re-routes
the query through the index-free :class:`~repro.core.degraded.ScanFallback`
— the caller gets an exact answer flagged ``degraded`` instead of an
exception.  :meth:`WhyNotEngine.recover` rebuilds quarantined indexes
from the authoritative in-memory dataset; :meth:`WhyNotEngine.health`
reports quarantine state and scans live indexes for corruption.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError, StorageError
from ..index.kcr_tree import KcRTree
from ..index.rtree import DEFAULT_CAPACITY
from ..index.search import TopKSearcher
from ..index.setr_tree import SetRTree
from ..model.objects import Dataset, SpatialObject
from ..model.query import SpatialKeywordQuery, WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel, get_model
from ..storage.faults import FaultInjector
from .advanced import AdvancedAlgorithm
from .alpha_refinement import AlphaRefinementAlgorithm, IntegratedAlgorithm
from .approximate import ApproximateAlgorithm
from .basic import BasicAlgorithm
from .degraded import ScanFallback
from .kcr_algorithm import KcRAlgorithm
from .location_refinement import LocationRefinementAlgorithm
from .parallel import ParallelAdvanced, ParallelKcR
from .result import FaultEvent, TopKOutcome, WhyNotAnswer

__all__ = ["WhyNotEngine"]

METHODS = (
    "basic",
    "advanced",
    "kcr",
    "approximate",
    "parallel-advanced",
    "parallel-kcr",
    "alpha",
    "location",
    "integrated",
)

#: Which index each method reads — the quarantine/degradation unit.
#: ``approximate`` is strategy-dependent; see
#: :meth:`WhyNotEngine._method_tree`.
TREE_OF_METHOD: Dict[str, str] = {
    "basic": "setr",
    "advanced": "setr",
    "alpha": "setr",
    "location": "setr",
    "parallel-advanced": "setr",
    "kcr": "kcr",
    "parallel-kcr": "kcr",
    "integrated": "kcr",
    "approximate": "kcr",
}


class WhyNotEngine:
    """Facade over the dataset, the indexes, and the five algorithms."""

    #: Methods available when the engine runs over a sharded index.
    SHARDED_METHODS = ("basic", "advanced", "kcr")

    def __init__(
        self,
        dataset: Dataset,
        *,
        capacity: int = DEFAULT_CAPACITY,
        similarity: str = "jaccard",
        buffer_fraction: Optional[float] = 0.25,
        faults: Optional[FaultInjector] = None,
        shards: Optional[int] = None,
        shard_mode: str = "simulate",
        fault_shards: Optional[Sequence[int]] = None,
    ) -> None:
        """``buffer_fraction`` re-sizes each index's buffer pool to that
        fraction of the index's on-disk pages (min 32), preserving the
        paper's buffer-pressure ratio on scaled-down datasets; pass
        ``None`` to keep the paper's absolute 4 MB buffer.
        ``faults`` attaches a deterministic fault schedule: each index
        gets an independent fork, and rebuilt indexes (after
        :meth:`recover`) get fresh forks so recovery does not replay
        the exact faults that broke them.

        ``shards=N`` partitions the dataset across ``N`` STR tiles and
        answers ``basic``/``advanced``/``kcr`` questions (and top-k
        queries) by per-shard fan-out with bit-identical results;
        ``shard_mode`` picks between the deterministic makespan
        simulation (``"simulate"``) and real forked workers
        (``"process"``).  With faults attached, ``fault_shards``
        restricts injection to those shard ids — the containment story:
        only the faulted shard degrades.  The sharded engine is
        read-only (no insert/remove)."""
        if shards is not None and shards < 1:
            raise InvalidParameterError(
                f"shards must be >= 1 when set, got {shards}"
            )
        self.dataset = dataset
        self.capacity = capacity
        self.model: SimilarityModel = get_model(similarity)
        self.buffer_fraction = buffer_fraction
        self.faults = faults
        self.shards = shards
        self.shard_mode = shard_mode
        self.fault_shards = (
            None if fault_shards is None else tuple(fault_shards)
        )
        self._setr: Optional[SetRTree] = None
        self._kcr: Optional[KcRTree] = None
        self._sharded: Optional[Any] = None
        self._quarantined: Dict[str, List[FaultEvent]] = {}
        self._rebuilds: Dict[str, int] = {"setr": 0, "kcr": 0}
        self._scan: Optional[ScanFallback] = None

    @property
    def is_sharded(self) -> bool:
        return self.shards is not None

    def _apply_buffer_policy(self, tree):
        if self.buffer_fraction is not None:
            pages = max(32, int(tree.buffer.total_pages * self.buffer_fraction))
            tree.resize_buffer(min(pages, tree.buffer.capacity_pages or pages))
        return tree

    def _tree_faults(self, name: str) -> Optional[FaultInjector]:
        """The fork driving one index's pager (fresh seed per rebuild)."""
        if self.faults is None:
            return None
        generation = self._rebuilds[name]
        label = name if generation == 0 else f"{name}:rebuild-{generation}"
        return self.faults.fork(label)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    @property
    def setr_tree(self) -> SetRTree:
        """The SetR-tree, built on first use."""
        if self._setr is None:
            self._setr = self._apply_buffer_policy(
                SetRTree(
                    self.dataset,
                    capacity=self.capacity,
                    faults=self._tree_faults("setr"),
                )
            )
        return self._setr

    @property
    def kcr_tree(self) -> KcRTree:
        """The KcR-tree, built on first use."""
        if self._kcr is None:
            self._kcr = self._apply_buffer_policy(
                KcRTree(
                    self.dataset,
                    capacity=self.capacity,
                    faults=self._tree_faults("kcr"),
                )
            )
        return self._kcr

    @property
    def sharded_index(self) -> Any:
        """The shard set, built on first use (``shards=N`` engines)."""
        if not self.is_sharded:
            raise InvalidParameterError(
                "this engine was not constructed with shards=N"
            )
        if self._sharded is None:
            # Imported lazily: repro.index.sharded reaches back into
            # repro.core for FaultEvent and the KcR driver.
            from ..index.sharded import ShardedIndex

            self._sharded = ShardedIndex.build(
                self.dataset,
                self.shards,
                mode=self.shard_mode,
                capacity=self.capacity,
                buffer_fraction=self.buffer_fraction,
                faults=self.faults,
                fault_shards=self.fault_shards,
            )
        return self._sharded

    def attach_sharded_index(self, index: Any) -> None:
        """Adopt a pre-built shard set (e.g. from ``build_streaming``).

        Saves a redundant in-memory rebuild when the caller already
        paid for a streaming bulk load.  The index must match this
        engine's configuration exactly — answers are served from it.
        """
        if not self.is_sharded:
            raise InvalidParameterError(
                "this engine was not constructed with shards=N"
            )
        if len(index.shards) != self.shards or index.mode != self.shard_mode:
            raise InvalidParameterError(
                f"shard set ({len(index.shards)} shards, {index.mode!r} mode)"
                f" does not match engine (shards={self.shards},"
                f" shard_mode={self.shard_mode!r})"
            )
        if index.dataset is not self.dataset:
            raise InvalidParameterError(
                "shard set was built over a different dataset object"
            )
        self._sharded = index

    @property
    def scan_fallback(self) -> ScanFallback:
        """The index-free exact fallback (shared, stateless)."""
        if self._scan is None:
            self._scan = ScanFallback(self.dataset, self.model)
        return self._scan

    # ------------------------------------------------------------------
    # quarantine and recovery
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> Dict[str, Tuple[FaultEvent, ...]]:
        """Quarantined index names mapped to the faults that broke them.

        Sharded engines quarantine per shard tree: keys are
        ``"shard-<tid>:<kind>"``, and every other shard stays live."""
        if self.is_sharded:
            if self._sharded is None:
                return {}
            grouped: Dict[str, List[FaultEvent]] = {}
            for event in self._sharded.runtime.fault_events:
                grouped.setdefault(event.tree, []).append(event)
            return {name: tuple(events) for name, events in grouped.items()}
        return {name: tuple(events) for name, events in self._quarantined.items()}

    def _quarantine(self, name: str, operation: str, exc: StorageError) -> None:
        """Take an index out of service after an unrecoverable fault."""
        event = FaultEvent(
            tree=name,
            operation=operation,
            error=type(exc).__name__,
            record_id=getattr(exc, "record_id", None),
            detail=str(exc),
        )
        self._quarantined.setdefault(name, []).append(event)

    def recover(
        self, only: Optional[Iterable[str]] = None
    ) -> Tuple[FaultEvent, ...]:
        """Drop quarantined indexes for rebuild from the dataset.

        The dataset is authoritative (indexes never own object data),
        so recovery is a rebuild: quarantined trees are discarded and
        lazily reconstructed on next use, with a *fresh* fault-injector
        fork so the rebuilt tree does not replay the exact schedule
        that broke it.  Returns the fault events that were cleared.

        ``only`` limits recovery to the named quarantine units (index
        names, or ``"shard-<tid>:<kind>"`` for sharded engines).  The
        serving layer's circuit breakers rely on this to half-open one
        unit at a time instead of resurrecting everything.
        """
        if self.is_sharded:
            if self._sharded is None:
                return ()
            if only is None:
                cleared = tuple(self._sharded.runtime.fault_events)
                self._sharded.recover()
                return cleared
            selected = set(only)
            cleared = tuple(
                event
                for event in self._sharded.runtime.fault_events
                if event.tree in selected
            )
            self._sharded.recover(only=selected)
            return cleared
        selected = None if only is None else set(only)
        names = [
            name
            for name in list(self._quarantined)
            if selected is None or name in selected
        ]
        cleared = tuple(
            event for name in names for event in self._quarantined[name]
        )
        for name in names:
            self._rebuilds[name] += 1
            if name == "setr":
                self._setr = None
            else:
                self._kcr = None
            del self._quarantined[name]
        return cleared

    def health(self) -> Dict[str, Any]:
        """Fault-tolerance status report.

        Returns a dict with ``quarantined`` (index name -> fault
        events), ``corruption`` (index name ->
        :class:`~repro.analysis.sanitize.SanitizerReport` from a
        corruption scan of each *live* built index, with one
        ``quarantined-subtree`` violation per quarantine event), and
        ``injector`` (the schedule's injection ledger, if any).
        """
        from ..analysis.sanitize import SanitizerReport, scan_corruption

        corruption: Dict[str, Any] = {}
        if self.is_sharded:
            for name, events in self.quarantined.items():
                report = SanitizerReport()
                for event in events:
                    report.add(
                        "quarantined-subtree", f"tree {name}", event.format()
                    )
                corruption[name] = report
            return {
                "quarantined": self.quarantined,
                "corruption": corruption,
                "injector": (
                    None if self.faults is None else self.faults.summary()
                ),
            }
        for name, tree in (("setr", self._setr), ("kcr", self._kcr)):
            if name in self._quarantined:
                report = SanitizerReport()
                for event in self._quarantined[name]:
                    report.add("quarantined-subtree", f"tree {name}", event.format())
                corruption[name] = report
            elif tree is not None:
                corruption[name] = scan_corruption(tree)
        return {
            "quarantined": self.quarantined,
            "corruption": corruption,
            "injector": None if self.faults is None else self.faults.summary(),
        }

    def reset_buffers(self) -> None:
        """Cold-start every index's buffer pools (between experiments)."""
        if self.is_sharded:
            if self._sharded is not None:
                self._sharded.reset_buffers()
            return
        if self._setr is not None:
            self._setr.reset_buffer()
        if self._kcr is not None:
            self._kcr.reset_buffer()

    def close(self) -> None:
        """Release shard workers (a no-op for unsharded engines)."""
        if self._sharded is not None:
            self._sharded.close()

    def _reject_sharded_mutation(self, operation: str) -> None:
        if self.is_sharded:
            raise InvalidParameterError(
                f"{operation} is not supported on a sharded engine; "
                "shards are read-only after bulk load"
            )

    def insert(self, obj: SpatialObject) -> None:
        """Add an object to the dataset and every built index.

        Indexes not built yet pick the object up when they are built;
        already-built indexes receive a dynamic R-tree insertion with
        summary maintenance.  Brute-force oracles constructed from the
        dataset before the insert are snapshots and must be rebuilt.

        An unrecoverable storage fault mid-insertion leaves that index
        half-updated, so it is quarantined (the dataset, which is
        authoritative, still gains the object); queries degrade to the
        fallback until :meth:`recover` rebuilds the index.
        """
        self._reject_sharded_mutation("insert")
        self.dataset.add(obj)
        self._mutate_tree("setr", f"insert:{obj.oid}", lambda t: t.insert(obj))
        self._mutate_tree("kcr", f"insert:{obj.oid}", lambda t: t.insert(obj))

    def remove(self, oid: int) -> None:
        """Remove an object from every built index and the dataset.

        Like :meth:`insert`, a storage fault mid-deletion quarantines
        the affected index instead of propagating.
        """
        self._reject_sharded_mutation("remove")
        obj = self.dataset.get(oid)
        self._mutate_tree("setr", f"remove:{oid}", lambda t: t.delete(obj))
        self._mutate_tree("kcr", f"remove:{oid}", lambda t: t.delete(obj))
        self.dataset.remove(oid)

    def _mutate_tree(self, name: str, operation: str, action: Any) -> None:
        """Apply one mutation to a built, non-quarantined index."""
        tree = self._setr if name == "setr" else self._kcr
        if tree is None or name in self._quarantined:
            return
        try:
            action(tree)
        except StorageError as exc:
            self._quarantine(name, operation, exc)

    def update_keywords(self, oid: int, keywords: Iterable[int]) -> None:
        """Replace an object's document (delete + reinsert).

        This is the merchant loop closed: answer a why-not question
        about your own listing, then apply the suggested keywords.
        The object keeps its id and location; document frequencies,
        node summaries, and count maps all update.
        """
        old = self.dataset.get(oid)
        updated = SpatialObject(oid=oid, loc=old.loc, doc=frozenset(keywords))
        self.remove(oid)
        self.insert(updated)

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def top_k(self, query: SpatialKeywordQuery) -> List[Tuple[float, int]]:
        """Run a plain spatial keyword top-k query (Definition 1).

        Degradation-transparent: see :meth:`run_top_k` for the variant
        that also reports whether the answer came from the fallback.
        """
        return self.run_top_k(query).results

    def run_top_k(self, query: SpatialKeywordQuery) -> TopKOutcome:
        """Top-k with an explicit fault-tolerance verdict.

        Runs over the SetR-tree; on an unrecoverable storage fault the
        index is quarantined and the query re-runs on the index-free
        scan, yielding an exact but ``degraded``-flagged outcome.
        Sharded engines fan the query across shards; a faulted shard's
        partition is served by the exact scan (only that shard
        degrades) and the merged answer is still bit-identical.
        """
        if self.is_sharded:
            index = self.sharded_index
            index.ensure_built("setr", self.model)
            results = index.searcher("setr", self.model).top_k(query)
            index.runtime.consume_discount()
            if index.runtime.down:
                return TopKOutcome(
                    results=results,
                    degraded=True,
                    events=tuple(index.runtime.fault_events),
                )
            return TopKOutcome(results=results)
        if "setr" not in self._quarantined:
            try:
                return TopKOutcome(
                    results=TopKSearcher(self.setr_tree, self.model).top_k(query)
                )
            except StorageError as exc:
                self._quarantine("setr", "top_k", exc)
        return TopKOutcome(
            results=self.scan_fallback.top_k(query),
            degraded=True,
            events=tuple(self._quarantined["setr"]),
        )

    def _method_tree(self, method: str, options: Dict[str, Any]) -> str:
        """Which index (quarantine unit) a method call will read."""
        if method == "approximate":
            return "kcr" if options.get("strategy", "kcr") == "kcr" else "setr"
        return TREE_OF_METHOD.get(method, "setr")

    def answer(
        self,
        question: WhyNotQuestion,
        method: str = "kcr",
        *,
        sample_size: int = 200,
        n_threads: int = 4,
        **options: Any,
    ) -> WhyNotAnswer:
        """Answer a why-not question with the chosen method.

        ``method`` selects among ``basic`` (BS), ``advanced``
        (AdvancedBS; accepts ``early_stop``/``ordering``/``filtering``
        toggles via ``options``), ``kcr`` (KcRBased), ``approximate``
        (accepts ``strategy``), and the two ``parallel-*`` variants.

        If the method's index is quarantined — or an unrecoverable
        storage fault surfaces mid-query — the answer is recomputed by
        the exact index-free fallback and returned flagged
        ``degraded`` instead of raising.
        """
        if method not in METHODS:
            raise InvalidParameterError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        if self.is_sharded:
            if method not in self.SHARDED_METHODS:
                raise InvalidParameterError(
                    f"method {method!r} is not available on a sharded "
                    f"engine; expected one of {self.SHARDED_METHODS}"
                )
            return self._sharded_answer(question, method, options)
        tree_name = self._method_tree(method, options)
        if tree_name in self._quarantined:
            return self._degraded_answer(question, method, tree_name)
        try:
            return self._dispatch(
                question, method, sample_size, n_threads, options
            )
        except StorageError as exc:
            self._quarantine(tree_name, f"answer:{method}", exc)
            return self._degraded_answer(question, method, tree_name)

    def _sharded_answer(
        self,
        question: WhyNotQuestion,
        method: str,
        options: Dict[str, Any],
    ) -> WhyNotAnswer:
        """Fan one question across the shard set.

        Storage faults never propagate: the searchers and the KcR
        driver contain them per shard (exact scan substitution), so the
        answer is always the bit-exact one — flagged ``degraded`` while
        any shard is down.  The accrued fan-out discount (``Σ busy −
        max busy`` per parallel region) is subtracted here, reporting
        the makespan-simulated elapsed time.
        """
        index = self.sharded_index
        kind = "kcr" if method == "kcr" else "setr"
        index.ensure_built(kind, self.model)
        if method == "basic":
            answer = BasicAlgorithm(index.view("setr"), self.model).answer(
                question
            )
        elif method == "advanced":
            answer = AdvancedAlgorithm(
                index.view("setr"), self.model, **options
            ).answer(question)
        else:
            from .kcr_sharded import ShardedKcRAlgorithm

            answer = ShardedKcRAlgorithm(index, self.model).answer(question)
        answer.elapsed_seconds = max(
            0.0, answer.elapsed_seconds - index.runtime.consume_discount()
        )
        if index.runtime.down:
            answer.degraded = True
            answer.fault_events = tuple(index.runtime.fault_events)
        return answer

    def _degraded_answer(
        self, question: WhyNotQuestion, method: str, tree_name: str
    ) -> WhyNotAnswer:
        """Exact fallback answer, flagged with the quarantine's faults."""
        answer = self.scan_fallback.answer(question)
        answer.algorithm = f"{method}/{ScanFallback.name}"
        answer.fault_events = tuple(self._quarantined[tree_name])
        return answer

    def _dispatch(
        self,
        question: WhyNotQuestion,
        method: str,
        sample_size: int,
        n_threads: int,
        options: Dict[str, Any],
    ) -> WhyNotAnswer:
        """Route one question to the chosen algorithm (no fault handling)."""
        if method == "basic":
            return BasicAlgorithm(self.setr_tree, self.model).answer(question)
        if method == "advanced":
            return AdvancedAlgorithm(
                self.setr_tree, self.model, **options
            ).answer(question)
        if method == "kcr":
            return KcRAlgorithm(self.kcr_tree, self.model).answer(question)
        if method == "approximate":
            strategy = options.pop("strategy", "kcr")
            tree = self.kcr_tree if strategy == "kcr" else self.setr_tree
            return ApproximateAlgorithm(
                tree, sample_size, strategy=strategy, model=self.model, **options
            ).answer(question)
        if method == "parallel-advanced":
            return ParallelAdvanced(
                self.setr_tree, n_threads, model=self.model, **options
            ).answer(question)
        if method == "parallel-kcr":
            return ParallelKcR(
                self.kcr_tree, n_threads, model=self.model
            ).answer(question)
        if method == "alpha":
            return AlphaRefinementAlgorithm(
                self.setr_tree, self.model, **options
            ).answer(question)
        if method == "location":
            return LocationRefinementAlgorithm(
                self.setr_tree, self.model, **options
            ).answer(question)
        if method == "integrated":
            return IntegratedAlgorithm(
                self.kcr_tree, self.model, **options
            ).answer(question)
        raise InvalidParameterError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
