"""Parallel candidate processing (Section IV-C4 / Fig 10).

The paper parallelises both algorithms by partitioning the candidate
keyword sets over worker threads while synchronising the incumbent
penalty ``p_c`` for pruning.  CPython's GIL makes real threads useless
for CPU-bound speedup, so the default mode here is a **deterministic
makespan simulation** (documented in DESIGN.md): candidates are
evaluated in the usual shared-``p_c`` order, the wall time of each
evaluation is measured, and evaluations are list-scheduled onto ``T``
workers greedily (each next unit goes to the least-loaded worker).
The reported elapsed time is the makespan — exactly what a
work-sharing thread pool with a shared incumbent achieves, minus lock
contention.

A ``mode="threads"`` variant runs a real
:class:`~concurrent.futures.ThreadPoolExecutor` with a lock-protected
shared incumbent; it demonstrates correctness of the synchronisation
(the answer is identical) rather than speedup.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError
from ..index.kcr_tree import KcRTree
from ..index.setr_tree import SetRTree
from ..model.query import WhyNotQuestion
from ..model.similarity import JACCARD, SimilarityModel
from .candidates import Candidate
from .context import QuestionContext
from .dominator_cache import DominatorCache
from .kcr_algorithm import KcRAlgorithm
from .penalty import PenaltyModel
from .result import RefinedQuery, SearchCounters, WhyNotAnswer

__all__ = ["ParallelAdvanced", "ParallelKcR", "makespan"]


def makespan(unit_times: Sequence[float], n_workers: int) -> float:
    """Greedy list-scheduling makespan of ``unit_times`` on ``n_workers``.

    Units are assigned in order to the least-loaded worker — the
    schedule a work-sharing pool converges to.  The worker set is a
    min-heap of ``(load, worker_index)`` pairs, so each assignment is
    O(log T) instead of the O(T) ``loads.index(min(loads))`` scan; the
    index component reproduces the scan's tie rule exactly (among
    equally-loaded workers, the lowest index wins).
    """
    if n_workers <= 0:
        raise InvalidParameterError(f"need at least one worker, got {n_workers}")
    loads: List[Tuple[float, int]] = [(0.0, worker) for worker in range(n_workers)]
    for unit in unit_times:
        load, worker = loads[0]
        heapq.heapreplace(loads, (load + unit, worker))
    return max(load for load, _ in loads)


class ParallelAdvanced:
    """AdvancedBS with Fig 10's multi-threaded candidate processing."""

    def __init__(
        self,
        tree: SetRTree,
        n_threads: int,
        mode: str = "simulate",
        model: SimilarityModel = JACCARD,
        filtering: bool = True,
    ) -> None:
        if n_threads <= 0:
            raise InvalidParameterError(f"n_threads must be positive, got {n_threads}")
        if mode not in ("simulate", "threads"):
            raise InvalidParameterError(f"unknown mode {mode!r}")
        self.tree = tree
        self.n_threads = n_threads
        self.mode = mode
        self.model = model
        self.filtering = filtering

    @property
    def name(self) -> str:
        return f"AdvancedBS-P{self.n_threads}"

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Best refined query; elapsed time reflects the thread count."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()
        # Opt3 travels with the workers: dominators found by any worker
        # feed every other worker's filter, through the cache's
        # lock-guarded surface (the flow checker's sanctioned writer).
        cache: Optional[DominatorCache] = None
        if self.filtering:
            cache = DominatorCache(
                context.dataset, context.query, context.missing, self.model
            )
        setup_time = time.perf_counter() - started

        if self.mode == "simulate":
            best, work_times = self._run_measured(context, counters, cache)
            elapsed = setup_time + makespan(work_times, self.n_threads)
        else:
            best = self._run_threads(context, counters, cache)
            elapsed = time.perf_counter() - started

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=elapsed,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )

    # ------------------------------------------------------------------
    def _evaluate_candidate(
        self,
        context: QuestionContext,
        candidate: Candidate,
        incumbent_penalty: float,
        counters: SearchCounters,
        lock: Optional[threading.Lock] = None,
        cache: Optional[DominatorCache] = None,
    ) -> Optional[RefinedQuery]:
        """One candidate under the shared incumbent; None when beaten."""
        penalty_model = context.penalty_model
        stop_limit = penalty_model.max_useful_rank(
            incumbent_penalty, candidate.delta_doc
        )
        if stop_limit is None:
            if lock:
                with lock:
                    counters.pruned_by_keyword_penalty += 1
            else:
                counters.pruned_by_keyword_penalty += 1
            return None
        # Opt3: enough cached dominators already beat the missing
        # object under this keyword set — prune without index access
        # (Algorithm 1 lines 10-13, shared across workers).
        if cache is not None:
            survivors = cache.count_dominating(candidate.keywords, stop_limit)
            if survivors >= stop_limit:
                if lock:
                    with lock:
                        counters.pruned_by_cache += 1
                else:
                    counters.pruned_by_cache += 1
                return None
        result = context.searcher.rank_of_missing(
            context.query,
            context.missing,
            keywords=candidate.keywords,
            stop_limit=stop_limit,
        )
        if cache is not None:
            cache.record_dominators(result.dominators)
        if result.aborted or result.rank is None:
            if lock:
                with lock:
                    counters.aborted_early += 1
            else:
                counters.aborted_early += 1
            return None
        penalty = penalty_model.penalty(candidate.delta_doc, result.rank)
        if penalty >= incumbent_penalty:
            return None
        return RefinedQuery(
            keywords=candidate.keywords,
            k=penalty_model.refined_k(result.rank),
            delta_doc=candidate.delta_doc,
            rank=result.rank,
            penalty=penalty,
        )

    def _run_measured(
        self,
        context: QuestionContext,
        counters: SearchCounters,
        cache: Optional[DominatorCache] = None,
    ) -> Tuple[RefinedQuery, List[float]]:
        """Sequential shared-``p_c`` evaluation with per-unit timing."""
        best = context.basic_refined()
        work_times: List[float] = []
        for candidate in context.enumerator.iter_paper_order():
            counters.candidates_enumerated += 1
            if (
                context.penalty_model.keyword_penalty(candidate.delta_doc)
                >= best.penalty
            ):
                break
            unit_started = time.perf_counter()
            counters.candidates_evaluated += 1
            improved = self._evaluate_candidate(
                context, candidate, best.penalty, counters, cache=cache
            )
            work_times.append(time.perf_counter() - unit_started)
            if improved is not None:
                best = improved
        return best, work_times

    def _run_threads(
        self,
        context: QuestionContext,
        counters: SearchCounters,
        cache: Optional[DominatorCache] = None,
    ) -> RefinedQuery:
        """Real thread pool with a lock-protected shared incumbent."""
        best = context.basic_refined()
        lock = threading.Lock()
        state = {"best": best}

        def worker(candidate: Candidate) -> None:
            with lock:
                incumbent = state["best"].penalty
                counters.candidates_evaluated += 1
            improved = self._evaluate_candidate(
                context, candidate, incumbent, counters, lock=lock, cache=cache
            )
            if improved is not None:
                with lock:
                    if improved.penalty < state["best"].penalty:
                        state["best"] = improved

        candidates = list(context.enumerator.iter_paper_order())
        counters.candidates_enumerated += len(candidates)
        with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
            list(pool.map(worker, candidates))
        return state["best"]


class ParallelKcR:
    """KcRBased with Fig 10's partitioned candidate batches.

    Each edit-distance batch is split round-robin into ``n_threads``
    sub-batches; Algorithm 3 runs per sub-batch with the incumbent
    shared across them, and the batch's simulated elapsed time is the
    max over sub-batch times.
    """

    def __init__(
        self, tree: KcRTree, n_threads: int, model: SimilarityModel = JACCARD
    ) -> None:
        if n_threads <= 0:
            raise InvalidParameterError(f"n_threads must be positive, got {n_threads}")
        self.tree = tree
        self.n_threads = n_threads
        self.model = model

    @property
    def name(self) -> str:
        return f"KcRBased-P{self.n_threads}"

    def answer(self, question: WhyNotQuestion) -> WhyNotAnswer:
        """Best refined query; per-batch makespan over the sub-batches."""
        started = time.perf_counter()
        io_before = self.tree.stats.snapshot()
        context = QuestionContext.prepare(question, self.tree, self.model)
        counters = SearchCounters()
        algorithm = KcRAlgorithm(self.tree, self.model)
        elapsed = time.perf_counter() - started

        best = context.basic_refined()
        penalty_model = context.penalty_model
        for distance in range(1, context.enumerator.edit_universe + 1):
            if penalty_model.keyword_penalty(distance) >= best.penalty:
                break
            batch = context.enumerator.at_distance(distance)
            counters.candidates_enumerated += len(batch)
            if not batch:
                continue
            sub_batches = [
                batch[i :: self.n_threads] for i in range(self.n_threads)
            ]
            sub_times: List[float] = []
            for sub_batch in sub_batches:
                if not sub_batch:
                    continue
                sub_started = time.perf_counter()
                best = algorithm._bound_and_prune(
                    context, sub_batch, best, counters
                )
                sub_times.append(time.perf_counter() - sub_started)
            if sub_times:
                elapsed += max(sub_times)

        return WhyNotAnswer(
            refined=best,
            initial_rank=context.initial_rank,
            algorithm=self.name,
            elapsed_seconds=elapsed,
            io=self.tree.stats.snapshot() - io_before,
            counters=counters,
        )
